/**
 * @file
 * mmap-backed TLC1 reader: POSIX mapping plus the bounds-checked
 * skip-scan indexer. The full decode reuses parseCorpus() so the
 * eager and mmap paths can never diverge semantically.
 */

#include "src/trace/mmapreader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/trace/serialize.h"
#include "src/trace/tlcformat.h"
#include "src/util/logging.h"
#include "src/util/telemetry.h"

namespace tracelens
{

// ---------------------------------------------------------------- MappedFile

MappedFile::~MappedFile()
{
    if (addr_ != nullptr)
        ::munmap(addr_, size_);
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_))
{
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        if (addr_ != nullptr)
            ::munmap(addr_, size_);
        addr_ = std::exchange(other.addr_, nullptr);
        size_ = std::exchange(other.size_, 0);
        path_ = std::move(other.path_);
    }
    return *this;
}

Expected<MappedFile>
MappedFile::open(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        return SourceError{path, 0,
                           "cannot open '" + path +
                               "' for reading: " + std::strerror(errno)};
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        return SourceError{path, 0,
                           std::string("fstat failed: ") +
                               std::strerror(err)};
    }
    if (!S_ISREG(st.st_mode)) {
        ::close(fd);
        return SourceError{path, 0, "not a regular file"};
    }

    MappedFile map;
    map.path_ = path;
    map.size_ = static_cast<std::size_t>(st.st_size);
    if (map.size_ > 0) {
        void *addr =
            ::mmap(nullptr, map.size_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (addr == MAP_FAILED) {
            const int err = errno;
            ::close(fd);
            return SourceError{path, 0,
                               std::string("mmap failed: ") +
                                   std::strerror(err)};
        }
        map.addr_ = addr;
        // The skip-scan and any subsequent materialization walk the
        // file front to back; tell the kernel so readahead works for
        // cold page-cache ingestion.
        ::madvise(addr, map.size_, MADV_SEQUENTIAL);
    }
    ::close(fd); // the mapping keeps the file alive
    return map;
}

// ---------------------------------------------------------------- MmapReader

Expected<MmapReader>
MmapReader::open(const std::string &path)
{
    Expected<MappedFile> map = MappedFile::open(path);
    if (!map)
        return map.error();

    MmapReader reader;
    reader.map_ = std::move(map.value());
    const std::span<const std::byte> bytes = reader.map_.bytes();
    tlc::ByteCursor cur(bytes, path);
    TlcShardIndex &index = reader.index_;

    std::uint32_t magic = 0;
    if (!cur.u32(magic, "magic"))
        return cur.error();
    if (magic != tlc::kMagic) {
        cur.fail("not a TraceLens corpus (bad magic)");
        return cur.error();
    }
    if (!cur.u32(index.version, "version"))
        return cur.error();
    if (index.version != tlc::kVersion &&
        index.version != tlc::kVersionCompressed) {
        cur.fail(detail::concat("unsupported corpus version ",
                                index.version));
        return cur.error();
    }

    if (!cur.count(index.frameCount, sizeof(std::uint32_t), "frame"))
        return cur.error();
    for (std::uint32_t i = 0; i < index.frameCount; ++i) {
        if (!cur.skipString("frame name"))
            return cur.error();
    }

    if (!cur.count(index.stackCount, sizeof(std::uint32_t), "stack"))
        return cur.error();
    for (std::uint32_t i = 0; i < index.stackCount; ++i) {
        std::uint32_t len = 0;
        if (!cur.count(len, sizeof(FrameId), "stack frame") ||
            !cur.skip(len * sizeof(FrameId), "stack frames"))
            return cur.error();
    }

    index.scenariosOffset = cur.offset();
    if (!cur.count(index.scenarioCount, sizeof(std::uint32_t),
                   "scenario"))
        return cur.error();
    for (std::uint32_t i = 0; i < index.scenarioCount; ++i) {
        if (!cur.skipString("scenario name"))
            return cur.error();
    }

    if (!cur.count(index.streamCount, sizeof(std::uint32_t), "stream"))
        return cur.error();
    reader.streams_.reserve(index.streamCount);
    for (std::uint32_t i = 0; i < index.streamCount; ++i) {
        TlcStreamExtent extent;
        extent.nameOffset = cur.offset();
        if (!cur.skipString("stream name"))
            return cur.error();
        std::uint32_t tag_count = 0;
        if (!cur.count(tag_count, 2 * sizeof(std::uint32_t),
                       "stream tag"))
            return cur.error();
        for (std::uint32_t t = 0; t < tag_count; ++t) {
            if (!cur.skipString("tag key") ||
                !cur.skipString("tag value"))
                return cur.error();
        }
        if (!cur.count(extent.eventCount,
                       index.version == tlc::kVersion
                           ? tlc::kEventRecordBytes
                           : 1,
                       "event"))
            return cur.error();
        if (index.version == tlc::kVersionCompressed &&
            !cur.u32(extent.encoding, "event encoding"))
            return cur.error();
        if (extent.encoding == tlc::kEventEncodingRaw) {
            extent.encodedBytes =
                static_cast<std::uint64_t>(extent.eventCount) *
                tlc::kEventRecordBytes;
        } else if (extent.encoding == tlc::kEventEncodingDelta) {
            std::uint32_t encoded_bytes = 0;
            if (!cur.u32(encoded_bytes, "event block size"))
                return cur.error();
            if (extent.eventCount >
                encoded_bytes / tlc::kDeltaMinBytesPerEvent) {
                cur.fail(detail::concat(
                    "corrupt corpus file: ", extent.eventCount,
                    " events cannot fit in a ", encoded_bytes,
                    "-byte compressed block"));
                return cur.error();
            }
            extent.encodedBytes = encoded_bytes;
        } else {
            cur.fail(detail::concat("unknown event encoding ",
                                    extent.encoding));
            return cur.error();
        }
        extent.eventsOffset = cur.offset();
        if (!cur.skip(static_cast<std::size_t>(extent.encodedBytes),
                      "events"))
            return cur.error();
        index.eventCount += extent.eventCount;
        reader.streams_.push_back(extent);
    }

    if (!cur.count(index.instanceCount, tlc::kInstanceRecordBytes,
                   "instance"))
        return cur.error();
    index.instancesOffset = cur.offset();
    // Validate the instance records now (a tiny fixed-size section)
    // so the lazy instances() accessor is infallible.
    for (std::uint32_t i = 0; i < index.instanceCount; ++i) {
        ScenarioInstance inst;
        if (!cur.u32(inst.stream, "instance stream") ||
            !cur.u32(inst.scenario, "instance scenario") ||
            !cur.u32(inst.tid, "instance tid") ||
            !cur.i64(inst.t0, "instance t0") ||
            !cur.i64(inst.t1, "instance t1"))
            return cur.error();
        if (inst.scenario >= index.scenarioCount) {
            cur.fail("corpus instance references unknown scenario");
            return cur.error();
        }
        if (inst.stream >= index.streamCount) {
            cur.fail("corpus instance references unknown stream");
            return cur.error();
        }
        if (inst.t1 < inst.t0) {
            cur.fail("corpus instance window inverted");
            return cur.error();
        }
    }

    return reader;
}

std::vector<ScenarioInstance>
MmapReader::instances() const
{
    const std::span<const std::byte> bytes = map_.bytes();
    std::vector<ScenarioInstance> out;
    out.reserve(index_.instanceCount);
    std::size_t pos = static_cast<std::size_t>(index_.instancesOffset);
    for (std::uint32_t i = 0; i < index_.instanceCount; ++i) {
        ScenarioInstance inst;
        std::memcpy(&inst.stream, bytes.data() + pos, 4);
        std::memcpy(&inst.scenario, bytes.data() + pos + 4, 4);
        std::memcpy(&inst.tid, bytes.data() + pos + 8, 4);
        std::memcpy(&inst.t0, bytes.data() + pos + 12, 8);
        std::memcpy(&inst.t1, bytes.data() + pos + 20, 8);
        pos += tlc::kInstanceRecordBytes;
        out.push_back(inst);
    }
    return out;
}

std::vector<std::string>
MmapReader::scenarioNames() const
{
    tlc::ByteCursor cur(map_.bytes(), map_.path());
    TL_ASSERT(cur.skip(static_cast<std::size_t>(index_.scenariosOffset),
                       "scenario section"),
              "scenario section offset out of range");
    std::uint32_t count = 0;
    std::vector<std::string> names;
    TL_ASSERT(cur.u32(count, "scenario count"), "indexed file shrank");
    names.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        std::string_view sv;
        TL_ASSERT(cur.stringView(sv, "scenario name"),
                  "scenario section invalid after indexing");
        names.emplace_back(sv);
    }
    return names;
}

std::span<const std::byte>
MmapReader::eventRecords(std::uint32_t stream) const
{
    TL_ASSERT(stream < streams_.size(), "bad stream index ", stream);
    const TlcStreamExtent &extent = streams_[stream];
    TL_ASSERT(extent.encoding == tlc::kEventEncodingRaw,
              "eventRecords() on compressed stream ", stream);
    return map_.bytes().subspan(
        static_cast<std::size_t>(extent.eventsOffset),
        static_cast<std::size_t>(extent.eventCount) *
            tlc::kEventRecordBytes);
}

Event
MmapReader::decodeEvent(std::span<const std::byte> records,
                        std::uint32_t i)
{
    TL_ASSERT(static_cast<std::size_t>(i + 1) *
                      tlc::kEventRecordBytes <=
                  records.size(),
              "bad event record index ", i);
    const std::byte *p =
        records.data() +
        static_cast<std::size_t>(i) * tlc::kEventRecordBytes;
    Event e;
    std::uint32_t type = 0;
    std::memcpy(&e.timestamp, p, 8);
    std::memcpy(&e.cost, p + 8, 8);
    std::memcpy(&e.tid, p + 16, 4);
    std::memcpy(&e.wtid, p + 20, 4);
    std::memcpy(&e.stack, p + 24, 4);
    std::memcpy(&type, p + 28, 4);
    e.type = static_cast<EventType>(type);
    return e;
}

Expected<EventColumns>
MmapReader::decodeStreamColumns(std::uint32_t stream) const
{
    TL_ASSERT(stream < streams_.size(), "bad stream index ", stream);
    const TlcStreamExtent &extent = streams_[stream];
    if (extent.encoding == tlc::kEventEncodingDelta) {
        return decodeDeltaEventBlock(
            map_.bytes().subspan(
                static_cast<std::size_t>(extent.eventsOffset),
                static_cast<std::size_t>(extent.encodedBytes)),
            extent.eventCount, index_.stackCount, map_.path(),
            extent.eventsOffset);
    }
    EventColumns columns;
    columns.reserve(extent.eventCount);
    if (auto issue = columns.appendTlcRecords(eventRecords(stream),
                                              extent.eventCount,
                                              index_.stackCount)) {
        // Same offset convention as parseCorpus: the end of the
        // offending 32-byte record.
        return SourceError{map_.path(),
                           extent.eventsOffset +
                               (issue->index + 1) *
                                   tlc::kEventRecordBytes,
                           std::move(issue->reason)};
    }
    return columns;
}

Expected<TraceCorpus>
MmapReader::materialize() const
{
    Span span("source.materialize", "ingest");
    if (span.active()) {
        span.arg("path", map_.path());
        span.arg("bytes",
                 static_cast<std::uint64_t>(map_.bytes().size()));
    }
    return parseCorpus(map_.bytes(), map_.path());
}

} // namespace tracelens
