/**
 * @file
 * StreamBuilder implementation: interns string stacks, sorts events
 * into time order, and finalizes instances.
 */

#include "src/trace/builder.h"

#include <algorithm>

#include "src/util/logging.h"

namespace tracelens
{

StreamBuilder::StreamBuilder(TraceCorpus &corpus, std::string name)
    : corpus_(corpus), streamIndex_(corpus.addStream(std::move(name)))
{
}

CallstackId
StreamBuilder::stack(std::initializer_list<std::string_view> frames)
{
    std::vector<FrameId> ids;
    ids.reserve(frames.size());
    for (auto f : frames)
        ids.push_back(corpus_.symbols().internFrame(f));
    return corpus_.symbols().internStack(ids);
}

CallstackId
StreamBuilder::stack(const std::vector<std::string> &frames)
{
    std::vector<FrameId> ids;
    ids.reserve(frames.size());
    for (const auto &f : frames)
        ids.push_back(corpus_.symbols().internFrame(f));
    return corpus_.symbols().internStack(ids);
}

void
StreamBuilder::running(ThreadId tid, TimeNs t, DurationNs cost,
                       CallstackId stack_id)
{
    pending_.push_back({t, cost, tid, kNoThread, stack_id,
                        EventType::Running});
}

void
StreamBuilder::wait(ThreadId tid, TimeNs t, CallstackId stack_id)
{
    waitWithCost(tid, t, 0, stack_id);
}

void
StreamBuilder::waitWithCost(ThreadId tid, TimeNs t, DurationNs cost,
                            CallstackId stack_id)
{
    pending_.push_back({t, cost, tid, kNoThread, stack_id,
                        EventType::Wait});
}

void
StreamBuilder::unwait(ThreadId tid, TimeNs t, ThreadId wtid,
                      CallstackId stack_id)
{
    pending_.push_back({t, 0, tid, wtid, stack_id, EventType::Unwait});
}

void
StreamBuilder::hardware(ThreadId tid, TimeNs t, DurationNs cost,
                        CallstackId stack_id)
{
    pending_.push_back({t, cost, tid, kNoThread, stack_id,
                        EventType::HardwareService});
}

void
StreamBuilder::instance(std::string_view scenario, ThreadId tid,
                        TimeNs t0, TimeNs t1)
{
    ScenarioInstance inst;
    inst.stream = streamIndex_;
    inst.scenario = corpus_.internScenario(scenario);
    inst.tid = tid;
    inst.t0 = t0;
    inst.t1 = t1;
    pendingInstances_.push_back(inst);
}

std::uint32_t
StreamBuilder::finish()
{
    TL_ASSERT(!finished_, "StreamBuilder::finish called twice");
    finished_ = true;
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const Event &a, const Event &b) {
                         return a.timestamp < b.timestamp;
                     });
    auto &stream = corpus_.stream(streamIndex_);
    for (const auto &e : pending_)
        stream.append(e);
    for (const auto &inst : pendingInstances_)
        corpus_.addInstance(inst);
    return streamIndex_;
}

} // namespace tracelens
