/**
 * @file
 * Columnar (structure-of-arrays) event storage — the in-memory hot
 * core of a shard.
 *
 * The analyzer's inner loops (wait/unwait pairing, effective-end
 * restoration, per-thread window scans, threshold classification) are
 * branch-light linear sweeps that touch one or two event fields per
 * step. Stored as an array of 32-byte Event structs, every such sweep
 * drags the whole record through the cache: a timestamps-only scan
 * uses 8 of every 32 bytes fetched, and nothing autovectorizes across
 * the padded stride. EventColumns keeps each field in its own
 * contiguous array instead — a timestamp sweep then reads 8 cache
 * lines' worth of timestamps per 8 lines fetched, and the compiler is
 * free to vectorize the compare/accumulate (see docs/PERFORMANCE.md
 * for the cache-line arithmetic).
 *
 * The Event/EventRef API survives as a cheap *materializing view*:
 * EventColumns::operator[] (and the EventView iterator range) gathers
 * one Event by value from the columns, so layers that still think in
 * events — the miner, AWG aggregation, the baselines — migrate
 * incrementally without a copy of the corpus in both layouts. The
 * TLC1 on-disk format is unchanged: columns are a memory layout, not
 * a serialization change (docs/TRACE_FORMAT.md).
 */

#ifndef TRACELENS_TRACE_COLUMNS_H
#define TRACELENS_TRACE_COLUMNS_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/trace/event.h"
#include "src/util/types.h"

namespace tracelens
{

/** Sentinel event index ("no paired event", "no such slot"). */
inline constexpr std::uint32_t kNoEventIndex = UINT32_MAX;

class EventView;

/**
 * One shard's events, one contiguous array per field. Append-only,
 * time-ordered by construction (enforced by TraceStream::append and
 * the TLC1 decoder's monotonicity sweep, not re-checked here).
 */
class EventColumns
{
  public:
    std::size_t size() const { return timestamps_.size(); }
    bool empty() const { return timestamps_.empty(); }
    void reserve(std::size_t n);
    void clear();

    /** Append one event (scatter into the six columns). */
    void append(const Event &event);

    /** Materialize event @p i as a value (the AoS-compatible view). */
    Event
    operator[](std::size_t i) const
    {
        Event e;
        e.timestamp = timestamps_[i];
        e.cost = costs_[i];
        e.tid = tids_[i];
        e.wtid = wtids_[i];
        e.stack = stacks_[i];
        e.type = types_[i];
        return e;
    }

    /** @name Raw column access (the vectorizable sweep surface). */
    ///@{
    std::span<const TimeNs> timestamps() const { return timestamps_; }
    std::span<const DurationNs> costs() const { return costs_; }
    std::span<const ThreadId> tids() const { return tids_; }
    std::span<const ThreadId> wtids() const { return wtids_; }
    std::span<const CallstackId> stacks() const { return stacks_; }
    std::span<const EventType> types() const { return types_; }
    ///@}

    /** Iterator range of materialized Event values. */
    EventView view() const;

    /** Heap bytes currently held by the six columns (cache budgets). */
    std::size_t residentBytes() const;

    /**
     * Decode and append @p count packed TLC1 event records (32 bytes
     * each, unaligned) as per-field strided sweeps, then validate the
     * batch with branch-light column passes: event type range, stack
     * references against @p stack_count, non-negative costs whose
     * intervals do not overflow the time axis, and timestamp
     * monotonicity. On a violation the columns are rolled back to
     * their prior size and the first offending record is reported
     * (record index plus the parse-compatible reason string).
     */
    struct DecodeIssue
    {
        /** Index of the first invalid record within this batch. */
        std::uint64_t index = 0;
        /** Failure reason, byte-compatible with the scalar parser. */
        std::string reason;
    };
    std::optional<DecodeIssue>
    appendTlcRecords(std::span<const std::byte> records,
                     std::uint32_t count, std::uint32_t stack_count);

    /** Largest interval end, max(timestamp + cost), or 0 when empty. */
    TimeNs maxEnd() const;

  private:
    std::vector<TimeNs> timestamps_;
    std::vector<DurationNs> costs_;
    std::vector<ThreadId> tids_;
    std::vector<ThreadId> wtids_;
    std::vector<CallstackId> stacks_;
    std::vector<EventType> types_;
};

/**
 * Random-access range over an EventColumns that yields Event *values*
 * — the compatibility bridge that lets `for (const Event &e : ...)`
 * loops run unchanged over columnar storage. Dereferencing gathers
 * the six fields of one event; no AoS copy of the shard ever exists.
 */
class EventView
{
  public:
    EventView() = default;
    explicit EventView(const EventColumns &columns)
        : columns_(&columns)
    {
    }

    /** Materializing random-access iterator (yields Event by value). */
    class iterator
    {
      public:
        using iterator_category = std::random_access_iterator_tag;
        using value_type = Event;
        using difference_type = std::ptrdiff_t;
        using reference = Event;
        using pointer = void;

        iterator() = default;
        iterator(const EventColumns *columns, std::size_t index)
            : columns_(columns), index_(index)
        {
        }

        Event operator*() const { return (*columns_)[index_]; }
        Event
        operator[](difference_type n) const
        {
            return (*columns_)[index_ + static_cast<std::size_t>(n)];
        }

        iterator &
        operator++()
        {
            ++index_;
            return *this;
        }
        iterator
        operator++(int)
        {
            iterator prev = *this;
            ++index_;
            return prev;
        }
        iterator &
        operator--()
        {
            --index_;
            return *this;
        }
        iterator
        operator--(int)
        {
            iterator prev = *this;
            --index_;
            return prev;
        }
        iterator &
        operator+=(difference_type n)
        {
            index_ += static_cast<std::size_t>(n);
            return *this;
        }
        iterator &
        operator-=(difference_type n)
        {
            index_ -= static_cast<std::size_t>(n);
            return *this;
        }
        friend iterator
        operator+(iterator it, difference_type n)
        {
            it += n;
            return it;
        }
        friend iterator
        operator+(difference_type n, iterator it)
        {
            it += n;
            return it;
        }
        friend iterator
        operator-(iterator it, difference_type n)
        {
            it -= n;
            return it;
        }
        friend difference_type
        operator-(const iterator &a, const iterator &b)
        {
            return static_cast<difference_type>(a.index_) -
                   static_cast<difference_type>(b.index_);
        }
        friend bool
        operator==(const iterator &a, const iterator &b)
        {
            return a.index_ == b.index_;
        }
        friend auto
        operator<=>(const iterator &a, const iterator &b)
        {
            return a.index_ <=> b.index_;
        }

      private:
        const EventColumns *columns_ = nullptr;
        std::size_t index_ = 0;
    };

    iterator begin() const { return {columns_, 0}; }
    iterator end() const { return {columns_, size()}; }
    std::size_t size() const { return columns_ ? columns_->size() : 0; }
    bool empty() const { return size() == 0; }
    Event operator[](std::size_t i) const { return (*columns_)[i]; }
    Event front() const { return (*columns_)[0]; }
    Event back() const { return (*columns_)[size() - 1]; }

  private:
    const EventColumns *columns_ = nullptr;
};

inline EventView
EventColumns::view() const
{
    return EventView(*this);
}

/**
 * Dense slot ids for the sparse thread-id space of one stream.
 *
 * Thread ids are arbitrary 32-bit values (the generator hands out ids
 * around 10^6), but a stream only ever sees a few dozen distinct
 * threads. Sorting the whole tid column to densify it — the first cut
 * of the columnar index — cost more than the legacy hash-map index it
 * replaced: an O(n log n) sort plus an O(n log t) binary search per
 * event, all for t << n distinct values. This map does it in one O(n)
 * pass over the tid column through a small open-addressing table
 * (50% max load, linear probing, splitmix64-mixed keys), then
 * renumbers the slots into sorted-tid order so slot ids are
 * independent of first-appearance order.
 *
 * build() also emits each event's slot id, so downstream counting
 * sorts (pairWaitsFifo, the wait-graph per-thread CSR) never look a
 * tid up again; slotOf() serves the remaining by-value queries (e.g.
 * an unwait's WTID) with one O(1) probe.
 */
class ThreadSlotMap
{
  public:
    /**
     * Build the map from a tid column and fill @p slot_of_event with
     * each event's slot id (index-aligned with @p tids).
     */
    void build(std::span<const ThreadId> tids,
               std::vector<std::uint32_t> &slot_of_event);

    /** Distinct thread ids, sorted ascending; slot i holds ids()[i]. */
    std::span<const ThreadId> ids() const { return ids_; }

    /** Number of distinct threads. */
    std::size_t slots() const { return ids_.size(); }

    /** Slot of @p tid, or kNoEventIndex if the thread has no events. */
    std::uint32_t slotOf(ThreadId tid) const;

  private:
    std::vector<ThreadId> ids_;
    /** Open-addressing table: keys_[h] valid iff vals_[h] is set. */
    std::vector<ThreadId> keys_;
    std::vector<std::uint32_t> vals_;
    std::size_t mask_ = 0;
};

/**
 * FIFO wait/unwait pairing as a columnar sweep (paper Section 3.1
 * step 1): the oldest outstanding wait of a thread is ended by the
 * next unwait targeting that thread. Resizes @p paired_unwait to
 * events.size(); entry i holds the pairing unwait's event index for
 * wait events (kNoEventIndex when the trace truncates the wait) and
 * kNoEventIndex for all non-wait events.
 *
 * Instead of a hash-map of deques, the sweep builds a CSR grouping of
 * wait events by thread (counting sort over the precomputed slot ids)
 * and pairs with two flat cursors per thread — no per-event
 * allocation, and the hot loop touches only the types/tids/wtids
 * columns. @p slot_map / @p slot_of_event must come from a
 * ThreadSlotMap::build over this stream's tid column.
 */
void pairWaitsFifo(const EventColumns &events,
                   const ThreadSlotMap &slot_map,
                   std::span<const std::uint32_t> slot_of_event,
                   std::vector<std::uint32_t> &paired_unwait);

/** Convenience overload that builds the thread-slot map internally. */
void pairWaitsFifo(const EventColumns &events,
                   std::vector<std::uint32_t> &paired_unwait);

/**
 * Effective interval ends as one select-sweep: timestamp + cost for
 * non-wait events, the pairing unwait's timestamp for paired waits,
 * and @p stream_end for waits the trace truncated (paper step 2, the
 * wait-duration restoration).
 */
void computeEffectiveEnds(const EventColumns &events,
                          std::span<const std::uint32_t> paired_unwait,
                          TimeNs stream_end,
                          std::vector<TimeNs> &effective_end);

} // namespace tracelens

#endif // TRACELENS_TRACE_COLUMNS_H
