/**
 * @file
 * RQ3 reproduction: the real-case observations of Section 5.2.4.
 *
 *  1. MenuDisplay is dominated by network drivers (paper: 7 of its
 *     top-10 patterns contain network drivers).
 *  2. Hard faults create subtle cross-driver interactions: a
 *     graphics.sys routine faulting on pageable memory drags in
 *     fs.sys/se.sys and freezes the UI for ~4.7 s.
 *
 * Usage: bench_rq3_cases [machines] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "src/core/analyzer.h"
#include "src/workload/driverzoo.h"
#include "src/workload/generator.h"
#include "src/workload/motivating.h"

int
main(int argc, char **argv)
{
    using namespace tracelens;

    CorpusSpec spec;
    spec.machines = argc > 1 ? static_cast<std::uint32_t>(
                                   std::atoi(argv[1]))
                             : 150;
    if (argc > 2)
        spec.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "== RQ3 case 1: MenuDisplay is network-bound ==\n";
    {
        const TraceCorpus corpus = generateCorpus(spec);
        EagerSource analyzer_source(corpus);
        Analyzer analyzer(analyzer_source);
        const ScenarioSpec &scn = scenarioByName("MenuDisplay");
        const ScenarioAnalysis analysis = analyzer.analyzeScenario(
            scn.name, scn.tFast, scn.tSlow);

        const SymbolTable &sym = corpus.symbols();
        int with_network = 0;
        const std::size_t top_n =
            std::min<std::size_t>(10, analysis.mining.patterns.size());
        for (std::size_t i = 0; i < top_n; ++i) {
            const auto &tuple = analysis.mining.patterns[i].tuple;
            bool network = false;
            auto scan = [&](const std::vector<FrameId> &frames) {
                for (FrameId f : frames) {
                    if (f == kNoFrame)
                        continue;
                    const auto type =
                        classifySignature(sym.frameName(f));
                    network = network ||
                              (type && *type == DriverType::Network);
                }
            };
            scan(tuple.waits);
            scan(tuple.unwaits);
            scan(tuple.runnings);
            with_network += network;
        }
        std::cout << "top-" << top_n << " patterns containing network "
                  << "drivers: " << with_network << " (paper: 7/10)\n";
        if (top_n > 0) {
            std::cout << "\ntop pattern:\n"
                      << analysis.mining.patterns[0].tuple.render(sym);
        }
        std::cout << "advice reproduced: menu items fetched from remote "
                     "servers should be asynchronous/prefetched so "
                     "network instability does not propagate to the "
                     "UI.\n\n";
    }

    std::cout << "== RQ3 case 2: graphics.sys hard fault ==\n";
    {
        TraceCorpus corpus;
        const CaseHandles handles = buildGraphicsHardFaultCase(corpus);
        const ScenarioInstance &instance =
            corpus.instances()[handles.instance];
        std::cout << "AppNonResponsive instance took "
                  << toMs(instance.duration())
                  << "ms (paper: ~4730ms)\n";

        // The wait graph connects graphics.sys -> se.sys -> disk.
        WaitGraphBuilder builder(corpus);
        const WaitGraph graph = builder.build(instance);
        const SymbolTable &sym = corpus.symbols();
        NameFilter drivers({"*.sys"});
        bool saw_graphics = false, saw_se = false, saw_disk = false;
        for (const auto &node : graph.nodes()) {
            const Event &e = node.event;
            if (e.type == EventType::HardwareService) {
                saw_disk = true;
                continue;
            }
            if (e.stack == kNoCallstack)
                continue;
            const FrameId top = sym.topMatchingFrame(e.stack, drivers);
            if (top == kNoFrame)
                continue;
            const std::string &component = sym.componentName(top);
            saw_graphics = saw_graphics || component == "graphics.sys";
            saw_se = saw_se || component == "se.sys";
        }
        std::cout << "chain visible in the wait graph: graphics.sys="
                  << saw_graphics << " se.sys=" << saw_se
                  << " disk=" << saw_disk << " (expect all 1)\n";
        std::cout << "advice reproduced: drivers should minimize "
                     "pageable memory to avoid hard-fault-induced cost "
                     "propagation.\n";
    }
    return 0;
}
