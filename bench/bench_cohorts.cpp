/**
 * @file
 * Environmental cohort study: quantify the paper's qualitative
 * observations about machine environments —
 *
 *  - storage encryption worsens driver waiting ("if the system also
 *    enables storage encryption, the situation could become worse",
 *    Section 5.2.4 observation 1);
 *  - HDDs amplify the storage-stack propagation relative to SSDs;
 *  - loaded ("stressed") machines show higher propagated waiting.
 *
 * Usage: bench_cohorts [machines] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "src/core/analyzer.h"
#include "src/impact/cohorts.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

int
main(int argc, char **argv)
{
    using namespace tracelens;

    CorpusSpec spec;
    spec.machines = argc > 1 ? static_cast<std::uint32_t>(
                                   std::atoi(argv[1]))
                             : 300;
    if (argc > 2)
        spec.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "== Environmental cohorts (impact split by machine "
                 "tags) ==\n";
    const TraceCorpus corpus = generateCorpus(spec);
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);

    for (const std::string tag :
         {"encrypted", "disk", "stressed", "diskProtection"}) {
        TextTable table({"cohort(" + tag + ")", "Instances",
                         "IA_wait", "IA_opt", "Dw/Dwd",
                         "mean duration"});
        for (const CohortImpact &cohort :
             impactByCohort(corpus, analyzer.graphs(),
                            analyzer.components(), tag)) {
            table.addRow(
                {cohort.value,
                 std::to_string(cohort.impact.instances),
                 TextTable::pct(cohort.impact.iaWait()),
                 TextTable::pct(cohort.impact.iaOpt()),
                 TextTable::num(cohort.impact.waitAmplification(), 2),
                 TextTable::ms(cohort.meanDurationMs, 0)});
        }
        std::cout << table.render() << "\n";
    }

    std::cout << "(expect: encrypted=1, disk=hdd, and stressed=1 "
                 "cohorts show higher IA_wait / durations than their "
                 "counterparts)\n";
    return 0;
}
