/**
 * @file
 * Table 2 reproduction: per-scenario driver cost and the impactful-
 * time (ITC) / total-time (TTC) coverages of the mined contrast
 * patterns, plus the Section-5.2.2 non-optimizable share.
 *
 * Paper averages: driver cost 54.2 %, ITC 24.9 %, TTC 36.0 %; ITC <
 * TTC everywhere; BrowserTabSwitch has ~66.6 % of driver time in
 * direct (non-propagated) hardware service.
 *
 * Usage: bench_table2_coverage [machines] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "src/core/analyzer.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

int
main(int argc, char **argv)
{
    using namespace tracelens;

    CorpusSpec spec;
    spec.machines = argc > 1 ? static_cast<std::uint32_t>(
                                   std::atoi(argv[1]))
                             : 250;
    if (argc > 2)
        spec.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "== Table 2: impactful-time and total-time coverages "
                 "==\n";
    const TraceCorpus corpus = generateCorpus(spec);
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);

    TextTable table({"Scenario", "DriverCost", "ITC", "TTC",
                     "NonOpt", "#Slow"});
    double sum_cost = 0, sum_itc = 0, sum_ttc = 0;
    int rows = 0;
    for (const ScenarioSpec &scn : scenarioCatalog()) {
        if (!scn.selected)
            continue;
        const ScenarioAnalysis analysis = analyzer.analyzeScenario(
            scn.name, scn.tFast, scn.tSlow);
        table.addRow({scn.name,
                      TextTable::pct(analysis.driverCostShare()),
                      TextTable::pct(analysis.coverage.itc()),
                      TextTable::pct(analysis.coverage.ttc()),
                      TextTable::pct(analysis.nonOptimizableShare()),
                      std::to_string(analysis.classes.slow.size())});
        sum_cost += analysis.driverCostShare();
        sum_itc += analysis.coverage.itc();
        sum_ttc += analysis.coverage.ttc();
        ++rows;
    }
    if (rows > 0) {
        table.addRow({"Average", TextTable::pct(sum_cost / rows),
                      TextTable::pct(sum_itc / rows),
                      TextTable::pct(sum_ttc / rows), "", ""});
    }
    std::cout << table.render();
    std::cout << "\n(paper averages: DriverCost 54.2%, ITC 24.9%, TTC "
                 "36.0%; expect ITC <= TTC on every row)\n";
    return 0;
}
