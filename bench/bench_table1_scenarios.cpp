/**
 * @file
 * Table 1 reproduction: selected scenarios with instance counts and
 * fast/slow contrast-class sizes.
 *
 * Paper (17,612 instances over 8 scenarios): every scenario has a
 * substantial number of instances in both classes, with WebPageNavigation
 * the largest scenario and its slow share the smallest.
 *
 * Usage: bench_table1_scenarios [machines] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "src/core/analyzer.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

int
main(int argc, char **argv)
{
    using namespace tracelens;

    CorpusSpec spec;
    spec.machines = argc > 1 ? static_cast<std::uint32_t>(
                                   std::atoi(argv[1]))
                             : 400;
    if (argc > 2)
        spec.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "== Table 1: selected scenarios ==\n";
    const TraceCorpus corpus = generateCorpus(spec);
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);

    TextTable table({"Scenario", "#Instances", "in {I}fast",
                     "in {I}slow", "T_fast", "T_slow"});
    std::size_t total = 0, total_fast = 0, total_slow = 0;
    for (const ScenarioSpec &scn : scenarioCatalog()) {
        if (!scn.selected)
            continue;
        const auto id = corpus.findScenario(scn.name);
        if (id == UINT32_MAX)
            continue;
        const ContrastClasses classes =
            analyzer.classify(id, scn.tFast, scn.tSlow);
        const std::size_t count = classes.fast.size() +
                                  classes.middle.size() +
                                  classes.slow.size();
        table.addRow({scn.name, std::to_string(count),
                      std::to_string(classes.fast.size()),
                      std::to_string(classes.slow.size()),
                      TextTable::ms(toMs(scn.tFast), 0),
                      TextTable::ms(toMs(scn.tSlow), 0)});
        total += count;
        total_fast += classes.fast.size();
        total_slow += classes.slow.size();
    }
    table.addRow({"Total", std::to_string(total),
                  std::to_string(total_fast),
                  std::to_string(total_slow), "", ""});
    std::cout << table.render();
    std::cout << "\n(paper totals: 17612 instances, 7426 fast, 6738 "
                 "slow; both classes populated everywhere)\n";
    return 0;
}
