/**
 * @file
 * Figure 2 reproduction: the Aggregated Wait Graph of the slow
 * BrowserTabCreate class, showing the aggregated propagation path from
 * the disk hardware service through se.sys and fs.sys up to fv.sys.
 *
 * Prints both the indented text form and Graphviz DOT (pipe to `dot
 * -Tsvg` to render).
 *
 * Usage: bench_fig2_awg [machines] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "src/core/analyzer.h"
#include "src/workload/generator.h"
#include "src/workload/motivating.h"

int
main(int argc, char **argv)
{
    using namespace tracelens;

    CorpusSpec spec;
    spec.machines = argc > 1 ? static_cast<std::uint32_t>(
                                   std::atoi(argv[1]))
                             : 60;
    if (argc > 2)
        spec.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    spec.onlyScenarios = {"BrowserTabCreate"};

    std::cout << "== Figure 2: Aggregated Wait Graph for device "
                 "drivers (BrowserTabCreate, slow class) ==\n\n";

    TraceCorpus corpus = generateCorpus(spec);
    // Include the deterministic Figure-1 incident so the canonical
    // aggregated path is present.
    buildMotivatingExample(corpus);

    EagerSource analyzer_source(corpus);

    Analyzer analyzer(analyzer_source);
    const ScenarioAnalysis analysis = analyzer.analyzeScenario(
        "BrowserTabCreate", fromMs(300), fromMs(500));

    std::cout << "slow instances aggregated: "
              << analysis.awgSlow.sourceGraphs() << "\n";
    std::cout << "non-optimizable (reduced) time: "
              << toMs(analysis.awgSlow.reducedCost()) << "ms; kept: "
              << toMs(analysis.awgSlow.totalRootCost()) << "ms\n\n";

    std::cout << "--- text form (heaviest subtrees first) ---\n"
              << analysis.awgSlow.renderText(corpus.symbols(), 80)
              << "\n";

    std::cout << "--- DOT form ---\n"
              << analysis.awgSlow.renderDot(corpus.symbols(), 120);

    std::cout << "\n(paper figure: an aggregated path DiskService / "
                 "se.sys -> fs.sys!AcquireMDU -> fv.sys!QueryFileTable "
                 "with aggregated waits of the same wait->unwait "
                 "signature pairs)\n";
    return 0;
}
