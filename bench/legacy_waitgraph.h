/**
 * @file
 * Faithful pre-refactor wait-graph builder, kept as the baseline side
 * of the bench_micro regression contract (docs/PERFORMANCE.md).
 *
 * This is the construction algorithm exactly as it shipped before the
 * columnar/arena refactor of the hot core, transplanted verbatim from
 * the repository history and retargeted at a pre-materialized
 * array-of-structs event vector (which is what TraceStream stored back
 * then):
 *
 *  - FIFO wait/unwait pairing through a
 *    std::unordered_map<ThreadId, std::deque<...>> of outstanding
 *    waits,
 *  - a per-thread index held in an
 *    std::unordered_map<ThreadId, ThreadIndex> of per-thread vectors,
 *  - one std::vector<std::uint32_t> of children allocated per node,
 *  - one std::vector<char> visited allocation per build, and
 *  - a freshly allocated child_events vector per expanded wait.
 *
 * bench_micro builds every graph of a shared corpus through both this
 * builder and the production WaitGraphBuilder, asserts node-for-node
 * parity (roots, refs, costs, children, truncation), and gates on the
 * columnar builder being at least 2x faster per shard. Do not
 * "optimize" this file: its point is to preserve the old cost profile.
 */

#ifndef TRACELENS_BENCH_LEGACY_WAITGRAPH_H
#define TRACELENS_BENCH_LEGACY_WAITGRAPH_H

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <unordered_map>
#include <vector>

#include "src/trace/stream.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens::legacy
{

/** AoS snapshot of one stream, as TraceStream stored it pre-refactor. */
struct LegacyStream
{
    std::vector<Event> events;
    TimeNs endTime = 0;

    const Event &event(std::uint32_t index) const
    {
        return events[index];
    }
    std::size_t size() const { return events.size(); }
};

/** Materialize the AoS snapshots once, outside the timed region. */
inline std::vector<LegacyStream>
materializeStreams(const TraceCorpus &corpus)
{
    std::vector<LegacyStream> streams(corpus.streamCount());
    for (std::uint32_t s = 0; s < corpus.streamCount(); ++s) {
        const TraceStream &stream = corpus.stream(s);
        streams[s].events.reserve(stream.size());
        for (const Event &e : stream.events())
            streams[s].events.push_back(e);
        streams[s].endTime = stream.endTime();
    }
    return streams;
}

/** Pre-refactor node: per-node child vector instead of a CSR arena. */
struct LegacyGraph
{
    struct Node
    {
        Event event;
        EventRef ref;
        std::vector<std::uint32_t> children;
        CallstackId unwaitStack = kNoCallstack;
        bool truncated = false;
    };

    std::vector<Node> nodes;
    std::vector<std::uint32_t> roots;
    ScenarioInstance instance;
};

/**
 * The pre-refactor WaitGraphBuilder, line for line: hash-map pairing,
 * hash-map-of-vectors thread index, per-build visited allocation,
 * per-wait candidate allocation, per-node child vectors.
 */
class LegacyBuilder
{
  public:
    LegacyBuilder(const TraceCorpus &corpus,
                  const std::vector<LegacyStream> &streams,
                  WaitGraphOptions options = {})
        : corpus_(corpus), streams_(streams), options_(options)
    {
    }

    LegacyGraph build(const ScenarioInstance &instance) const
    {
        const StreamIndex &sindex = streamIndex(instance.stream);
        const LegacyStream &stream = streams_[instance.stream];

        LegacyGraph graph;
        graph.instance = instance;

        auto te = sindex.threads.find(instance.tid);
        if (te == sindex.threads.end())
            return graph; // initiating thread recorded no events

        std::vector<char> visited(stream.size(), 0);
        const auto &thread_events = te->second.events;
        const auto begin = std::lower_bound(
            thread_events.begin(), thread_events.end(), instance.t0,
            [&](std::uint32_t ei, TimeNs t) {
                return stream.event(ei).timestamp < t;
            });
        for (auto it = begin; it != thread_events.end(); ++it) {
            if (stream.event(*it).timestamp >= instance.t1)
                break;
            if (stream.event(*it).type == EventType::Unwait)
                continue; // signals carry no cost of their own
            if (visited[*it])
                continue;
            const std::uint32_t root = expand(
                graph, sindex, instance.stream, stream, *it, 0,
                std::numeric_limits<TimeNs>::min(),
                std::numeric_limits<TimeNs>::max(), visited);
            if (root != kInvalidIndex)
                graph.roots.push_back(root);
        }
        return graph;
    }

    std::vector<LegacyGraph> buildAll() const
    {
        std::vector<LegacyGraph> graphs;
        graphs.reserve(corpus_.instances().size());
        for (const ScenarioInstance &instance : corpus_.instances())
            graphs.push_back(build(instance));
        return graphs;
    }

    /** Drop the cached per-stream indices (for cold-build timing). */
    void clearCache() const { cache_.clear(); }

  private:
    struct ThreadIndex
    {
        std::vector<std::uint32_t> events;
        std::vector<TimeNs> prefixMaxEnd;
    };

    struct StreamIndex
    {
        std::vector<std::uint32_t> pairedUnwait;
        std::vector<TimeNs> effectiveEnd;
        std::unordered_map<ThreadId, ThreadIndex> threads;
    };

    const StreamIndex &streamIndex(std::uint32_t stream_id) const
    {
        auto it = cache_.find(stream_id);
        if (it != cache_.end())
            return it->second;

        const LegacyStream &stream = streams_[stream_id];
        StreamIndex sindex;
        sindex.pairedUnwait.assign(stream.size(), kInvalidIndex);
        sindex.effectiveEnd.assign(stream.size(), 0);

        // FIFO pairing: the oldest outstanding wait of a thread is
        // ended by the next unwait targeting that thread.
        std::unordered_map<ThreadId, std::deque<std::uint32_t>>
            outstanding;
        const auto &events = stream.events;
        for (std::uint32_t i = 0; i < events.size(); ++i) {
            const Event &e = events[i];
            if (e.type == EventType::Wait) {
                outstanding[e.tid].push_back(i);
            } else if (e.type == EventType::Unwait && e.wtid != e.tid) {
                auto oit = outstanding.find(e.wtid);
                if (oit != outstanding.end() && !oit->second.empty()) {
                    sindex.pairedUnwait[oit->second.front()] = i;
                    oit->second.pop_front();
                }
            }
        }

        // Effective end times (waits restored from their pairing) and
        // the per-thread indices with prefix maxima for overlap scans.
        for (std::uint32_t i = 0; i < events.size(); ++i) {
            const Event &e = events[i];
            if (e.type == EventType::Wait) {
                const std::uint32_t u = sindex.pairedUnwait[i];
                sindex.effectiveEnd[i] =
                    u == kInvalidIndex ? stream.endTime
                                       : stream.event(u).timestamp;
            } else {
                sindex.effectiveEnd[i] = e.end();
            }
            ThreadIndex &tindex = sindex.threads[e.tid];
            const TimeNs prev_max =
                tindex.prefixMaxEnd.empty()
                    ? std::numeric_limits<TimeNs>::min()
                    : tindex.prefixMaxEnd.back();
            tindex.events.push_back(i);
            tindex.prefixMaxEnd.push_back(
                std::max(prev_max, sindex.effectiveEnd[i]));
        }

        return cache_.emplace(stream_id, std::move(sindex))
            .first->second;
    }

    std::uint32_t expand(LegacyGraph &graph, const StreamIndex &sindex,
                         std::uint32_t stream_id,
                         const LegacyStream &stream,
                         std::uint32_t index, std::uint32_t depth,
                         TimeNs win_lo, TimeNs win_hi,
                         std::vector<char> &visited) const
    {
        if (graph.nodes.size() >= options_.maxNodes)
            return kInvalidIndex;
        if (visited[index])
            return kInvalidIndex; // first-reaching window owns it
        visited[index] = 1;

        const Event &source = stream.event(index);
        const auto node_id =
            static_cast<std::uint32_t>(graph.nodes.size());
        graph.nodes.emplace_back();
        {
            LegacyGraph::Node &node = graph.nodes.back();
            node.event = source;
            node.ref = {stream_id, index};
        }

        const TimeNs eff_end = sindex.effectiveEnd[index];
        const TimeNs clip_lo = options_.clipToWindows
                                   ? std::max(source.timestamp, win_lo)
                                   : source.timestamp;
        const TimeNs clip_hi = options_.clipToWindows
                                   ? std::min(eff_end, win_hi)
                                   : eff_end;
        const DurationNs clipped =
            std::max<DurationNs>(0, clip_hi - clip_lo);

        graph.nodes[node_id].event.cost = clipped;

        if (source.type != EventType::Wait)
            return node_id;

        const std::uint32_t unwait_index = sindex.pairedUnwait[index];
        if (unwait_index == kInvalidIndex) {
            graph.nodes[node_id].truncated = true;
            return node_id;
        }

        const Event &unwait = stream.event(unwait_index);
        graph.nodes[node_id].unwaitStack = unwait.stack;

        if (depth >= options_.maxDepth) {
            graph.nodes[node_id].truncated = true;
            return node_id;
        }

        if (clip_hi <= clip_lo)
            return node_id;
        auto te = sindex.threads.find(unwait.tid);
        const ThreadIndex &tindex = te->second;
        const auto &thread_events = tindex.events;

        const auto begin = std::lower_bound(
            thread_events.begin(), thread_events.end(), clip_lo,
            [&](std::uint32_t ei, TimeNs t) {
                return stream.event(ei).timestamp < t;
            });
        const auto lb =
            static_cast<std::size_t>(begin - thread_events.begin());

        std::vector<std::uint32_t> child_events;
        if (!options_.containmentOnly) {
            for (std::size_t i = lb; i-- > 0;) {
                if (tindex.prefixMaxEnd[i] < clip_lo)
                    break;
                if (sindex.effectiveEnd[thread_events[i]] > clip_lo)
                    child_events.push_back(thread_events[i]);
            }
            std::reverse(child_events.begin(), child_events.end());
        }

        for (std::size_t i = lb; i < thread_events.size(); ++i) {
            if (stream.event(thread_events[i]).timestamp > clip_hi)
                break;
            child_events.push_back(thread_events[i]);
        }

        for (std::uint32_t child_index : child_events) {
            if (stream.event(child_index).type == EventType::Unwait)
                continue;
            if (visited[child_index])
                continue;
            const std::uint32_t child_id =
                expand(graph, sindex, stream_id, stream, child_index,
                       depth + 1, clip_lo, clip_hi, visited);
            if (child_id == kInvalidIndex) {
                graph.nodes[node_id].truncated = true;
                continue;
            }
            graph.nodes[node_id].children.push_back(child_id);
        }

        return node_id;
    }

    const TraceCorpus &corpus_;
    const std::vector<LegacyStream> &streams_;
    WaitGraphOptions options_;
    mutable std::unordered_map<std::uint32_t, StreamIndex> cache_;
};

/**
 * Node-for-node equality between a legacy graph and a production
 * graph: same roots, same refs/costs/types, same children, same
 * truncation and unwait stacks. Returns false at the first mismatch.
 */
inline bool
graphsEqual(const LegacyGraph &legacy, const WaitGraph &graph)
{
    if (legacy.nodes.size() != graph.nodes().size() ||
        legacy.roots != graph.roots())
        return false;
    for (std::size_t n = 0; n < legacy.nodes.size(); ++n) {
        const LegacyGraph::Node &a = legacy.nodes[n];
        const WaitGraph::Node &b =
            graph.node(static_cast<std::uint32_t>(n));
        if (a.ref.stream != b.ref.stream || a.ref.index != b.ref.index)
            return false;
        if (a.event.timestamp != b.event.timestamp ||
            a.event.cost != b.event.cost ||
            a.event.tid != b.event.tid ||
            a.event.stack != b.event.stack ||
            a.event.type != b.event.type)
            return false;
        if (a.unwaitStack != b.unwaitStack ||
            a.truncated != b.truncated)
            return false;
        const auto kids = graph.children(b);
        if (!std::equal(a.children.begin(), a.children.end(),
                        kids.begin(), kids.end()))
            return false;
    }
    return true;
}

} // namespace tracelens::legacy

#endif // TRACELENS_BENCH_LEGACY_WAITGRAPH_H
