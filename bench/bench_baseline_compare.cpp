/**
 * @file
 * Baseline comparison on the Figure-1 incident: what each analysis
 * family reveals about an 800 ms propagated stall.
 *
 *  - gprof-style call-graph CPU profiling sees a few milliseconds of
 *    CPU and nothing else (drivers are ~1.6 % CPU);
 *  - single-lock contention analysis sees each lock hop in isolation
 *    but cannot connect the cross-lock chain to the root cause;
 *  - TraceLens's impact + causality analysis surfaces the full
 *    propagation pattern with the se.sys+disk root cause.
 */

#include <iostream>

#include "src/baseline/callgraph.h"
#include "src/baseline/lockcontention.h"
#include "src/baseline/stackmine.h"
#include "src/core/analyzer.h"
#include "src/simkernel/kernel.h"
#include "src/workload/motivating.h"

int
main()
{
    using namespace tracelens;

    TraceCorpus corpus;
    const CaseHandles handles = buildMotivatingExample(corpus);
    const ScenarioInstance &instance =
        corpus.instances()[handles.instance];

    std::cout << "incident: BrowserTabCreate took "
              << toMs(instance.duration()) << "ms\n\n";

    std::cout << "== Baseline 1: call-graph CPU profile (gprof-style) "
                 "==\n";
    CallGraphProfiler profiler(corpus);
    std::cout << "total sampled CPU: " << toMs(profiler.totalCpu())
              << "ms (vs " << toMs(instance.duration())
              << "ms wall) — the stall is invisible to a CPU "
                 "profiler\n";
    std::cout << profiler.renderTop(6) << "\n";

    std::cout << "== Baseline 2: per-callsite lock contention "
                 "(Tallent-style) ==\n";
    LockContentionAnalyzer contention(corpus);
    std::cout << contention.renderTop(6);
    std::cout << "each row is one hop; the fv->fs->se chain is not "
                 "connected\n\n";

    std::cout << "== Baseline 3: costly stack patterns "
                 "(StackMine-style) ==\n";
    StackMineAnalyzer stackmine(corpus);
    std::cout << stackmine.renderTop(5);
    std::cout << "within-thread hotspots only; the cross-thread chain "
                 "is still invisible\n\n";

    std::cout << "== TraceLens: impact + causality ==\n";
    {
        // Add a fast instance to enable contrast mining.
        SimKernel sim(corpus, "fast-machine");
        const auto scn = sim.scenario("BrowserTabCreate");
        sim.spawnThread({actPush(sim.frame("browser.exe!TabCreate")),
                         actBeginInstance(scn), actCompute(fromMs(40)),
                         actEndInstance(), actPop()});
        sim.run();
    }
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);
    const ImpactResult impact = analyzer.impactAll();
    std::cout << "impact: " << impact.render() << "\n";

    const ScenarioAnalysis analysis = analyzer.analyzeScenario(
        "BrowserTabCreate", fromMs(300), fromMs(500));
    if (!analysis.mining.patterns.empty()) {
        std::cout << "top contrast pattern (connects the whole chain):\n"
                  << analysis.mining.patterns[0].tuple.render(
                         corpus.symbols());
    }
    return 0;
}
