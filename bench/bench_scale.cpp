/**
 * @file
 * Methodological supplement: stability of the Section-5.1 impact
 * metrics as the corpus grows, and serial-vs-parallel throughput of
 * the analysis pipeline. The paper argues large-scale trace
 * collections are needed to expose amortized problems; this bench
 * shows how quickly the fleet-level metrics converge with corpus size
 * and how much corpus-parallel sharding buys on multicore hardware.
 *
 * Usage: bench_scale [max_machines] [seed] [threads]
 *   threads defaults to the hardware thread count; pass an explicit
 *   value to measure a specific worker count.
 *
 * Emits machine-parseable BENCH_* lines for the trajectory:
 *   BENCH_scale_waitgraph_speedup, BENCH_scale_impact_speedup,
 *   BENCH_scale_scenario_speedup, BENCH_scale_pipeline_speedup,
 *   BENCH_scale_ingest_speedup
 * and writes the eager-vs-mmap ingestion comparison to
 * BENCH_ingest.json, the cold-vs-warm artifact-cache pipeline
 * comparison to BENCH_pipeline.json, the self-telemetry
 * (span-recording) overhead measurement to BENCH_telemetry.json, and
 * the analysis-service load test (multithreaded clients against a
 * live daemon, cold vs warm query latency) to BENCH_server.json, and
 * the protocol-v2 transport comparison (wire bytes with the symbol
 * dictionary, interactive-probe latency under a saturated worker
 * pool) to BENCH_proto.json in the working directory. The telemetry
 * run gates the overhead contract of src/util/telemetry.h: spans on
 * must stay within a few percent of spans off
 * (BENCH_scale_telemetry_overhead_pct); the server run gates the
 * warm-query contract of src/server/: warm p50 must be >= 100x
 * better than cold (BENCH_scale_server_warm_speedup_p50); the proto
 * run gates the v2 transport contracts: session wire bytes <= 1/3 of
 * v1 (BENCH_scale_proto_wire_ratio) and interactive probe p95 >= 5x
 * better than v1 under load
 * (BENCH_scale_proto_multiplex_speedup_p95). The tracing run
 * (warm analyze load with span-context propagation off vs on,
 * BENCH_obs.json) gates the observability contract of
 * docs/TELEMETRY.md: distributed tracing must cost < 3% of warm
 * throughput, enforced on >= 2 hardware threads
 * (BENCH_scale_obs_tracing_overhead_pct). The cluster run
 * (coordinator + 2 local workers vs a single-node daemon over the
 * same sharded corpus, BENCH_cluster.json) gates the scale-out
 * contract of src/server/coordinator.h: >= 1.6x single-node
 * throughput with byte-identical merged reports, enforced on >= 2
 * hardware threads (BENCH_scale_cluster_speedup).
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "src/core/analyzer.h"
#include "src/fleet/service.h"
#include "src/impact/impact.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/trace/serialize.h"
#include "src/trace/source.h"
#include "src/util/json.h"
#include "src/util/parallel.h"
#include "src/util/table.h"
#include "src/util/telemetry.h"
#include "src/waitgraph/waitgraph.h"
#include "src/workload/generator.h"
#include "src/workload/scenarios.h"

namespace
{

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

double
speedup(double serial_ms, double parallel_ms)
{
    return parallel_ms <= 0.0 ? 0.0 : serial_ms / parallel_ms;
}

double
usSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Nearest-rank percentile of @p samples (q in [0,1]); 0 when empty. */
double
percentileUs(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    const std::size_t rank = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(samples.size())));
    std::nth_element(samples.begin(),
                     samples.begin() + static_cast<std::ptrdiff_t>(rank),
                     samples.end());
    return samples[rank];
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tracelens;

    const std::uint32_t max_machines =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 400;
    std::uint64_t seed = 20140301;
    if (argc > 2)
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    const unsigned threads =
        argc > 3 ? static_cast<unsigned>(std::atoi(argv[3]))
                 : resolveThreads(0);

    std::cout << "== Scaling study: impact metrics vs corpus size ==\n";
    TextTable table({"Machines", "Instances", "Events", "IA_wait",
                     "IA_run", "IA_opt", "Dw/Dwd", "gen-ms",
                     "analyze-ms"});

    for (std::uint32_t machines = 25; machines <= max_machines;
         machines *= 2) {
        CorpusSpec spec;
        spec.machines = machines;
        spec.seed = seed;

        const auto gen_start = std::chrono::steady_clock::now();
        const TraceCorpus corpus = generateCorpus(spec);
        const double gen_ms = msSince(gen_start);

        const auto analyze_start = std::chrono::steady_clock::now();
        EagerSource source(corpus);
        Analyzer analyzer(source);
        const ImpactResult impact = analyzer.impactAll();
        const double analyze_ms = msSince(analyze_start);

        table.addRow({std::to_string(machines),
                      std::to_string(impact.instances),
                      std::to_string(corpus.totalEvents()),
                      TextTable::pct(impact.iaWait()),
                      TextTable::pct(impact.iaRun()),
                      TextTable::pct(impact.iaOpt()),
                      TextTable::num(impact.waitAmplification(), 2),
                      TextTable::num(gen_ms, 0),
                      TextTable::num(analyze_ms, 0)});
    }
    std::cout << table.render();
    std::cout << "\n(expect the ratios to stabilize once a few hundred "
                 "instances are aggregated, while cost scales roughly "
                 "linearly)\n\n";

    // ---- serial vs parallel pipeline throughput --------------------
    // A >= 1,000-instance corpus, the whole pipeline timed twice:
    // threads=1 (the exact serial path) and threads=N. Every stage
    // merges deterministically, so both runs produce identical
    // analysis results — only the wall time differs.
    CorpusSpec spec;
    spec.machines = std::max<std::uint32_t>(150, max_machines / 2);
    spec.seed = seed;
    const TraceCorpus corpus = generateCorpus(spec);

    std::vector<ScenarioThresholds> scenarios;
    for (const ScenarioSpec &sspec : scenarioCatalog()) {
        if (sspec.selected &&
            corpus.findScenario(sspec.name) != UINT32_MAX)
            scenarios.push_back({sspec.name, sspec.tFast, sspec.tSlow});
    }

    std::cout << "== Serial vs parallel pipeline (" << threads
              << " threads, " << corpus.instances().size()
              << " instances, " << corpus.totalEvents()
              << " events) ==\n";

    // Wait-graph construction (index caches rebuilt per run).
    double graphs_serial_ms = 0, graphs_parallel_ms = 0;
    std::vector<WaitGraph> graphs;
    {
        WaitGraphBuilder builder(corpus);
        const auto start = std::chrono::steady_clock::now();
        graphs = builder.buildAll();
        graphs_serial_ms = msSince(start);
    }
    {
        WaitGraphBuilder builder(corpus);
        const auto start = std::chrono::steady_clock::now();
        const auto parallel_graphs = builder.buildAllParallel(threads);
        graphs_parallel_ms = msSince(start);
        if (parallel_graphs.size() != graphs.size()) {
            std::cerr << "parallel graph count mismatch\n";
            return 1;
        }
    }

    // Corpus-wide impact over the prebuilt graphs.
    ImpactAnalysis impact_analysis(corpus, NameFilter({"*.sys"}));
    const auto impact_serial_start = std::chrono::steady_clock::now();
    const ImpactResult impact_serial =
        impact_analysis.analyze(graphs, 1);
    const double impact_serial_ms = msSince(impact_serial_start);

    const auto impact_parallel_start = std::chrono::steady_clock::now();
    const ImpactResult impact_parallel =
        impact_analysis.analyze(graphs, threads);
    const double impact_parallel_ms = msSince(impact_parallel_start);
    if (impact_serial.dWaitDist != impact_parallel.dWaitDist ||
        impact_serial.dWait != impact_parallel.dWait) {
        std::cerr << "parallel impact mismatch\n";
        return 1;
    }

    // Full per-scenario causality analysis (graphs cached up front in
    // both analyzers so the timing isolates the scenario stages).
    AnalyzerConfig serial_config;
    serial_config.threads = 1;
    EagerSource serial_source(corpus);
    Analyzer serial_analyzer(serial_source, serial_config);
    serial_analyzer.graphs();
    const auto scn_serial_start = std::chrono::steady_clock::now();
    const auto serial_analyses =
        serial_analyzer.analyzeScenarios(scenarios);
    const double scn_serial_ms = msSince(scn_serial_start);

    AnalyzerConfig parallel_config;
    parallel_config.threads = threads;
    EagerSource parallel_source(corpus);
    Analyzer parallel_analyzer(parallel_source, parallel_config);
    parallel_analyzer.graphs();
    const auto scn_parallel_start = std::chrono::steady_clock::now();
    const auto parallel_analyses =
        parallel_analyzer.analyzeScenarios(scenarios);
    const double scn_parallel_ms = msSince(scn_parallel_start);

    for (std::size_t i = 0; i < serial_analyses.size(); ++i) {
        if (serial_analyses[i].mining.patterns.size() !=
            parallel_analyses[i].mining.patterns.size()) {
            std::cerr << "parallel mining mismatch in "
                      << serial_analyses[i].name << "\n";
            return 1;
        }
    }

    TextTable perf({"Stage", "serial-ms", "parallel-ms", "speedup"});
    perf.addRow({"wait-graph build", TextTable::num(graphs_serial_ms, 0),
                 TextTable::num(graphs_parallel_ms, 0),
                 TextTable::num(
                     speedup(graphs_serial_ms, graphs_parallel_ms), 2)});
    perf.addRow({"impact (corpus)", TextTable::num(impact_serial_ms, 0),
                 TextTable::num(impact_parallel_ms, 0),
                 TextTable::num(
                     speedup(impact_serial_ms, impact_parallel_ms), 2)});
    perf.addRow({"scenario analyses", TextTable::num(scn_serial_ms, 0),
                 TextTable::num(scn_parallel_ms, 0),
                 TextTable::num(speedup(scn_serial_ms, scn_parallel_ms),
                                2)});
    const double pipeline_serial = graphs_serial_ms + scn_serial_ms;
    const double pipeline_parallel =
        graphs_parallel_ms + scn_parallel_ms;
    perf.addRow({"pipeline (build+scenarios)",
                 TextTable::num(pipeline_serial, 0),
                 TextTable::num(pipeline_parallel, 0),
                 TextTable::num(
                     speedup(pipeline_serial, pipeline_parallel), 2)});
    std::cout << perf.render();

    // ---- artifact cache: cold vs warm full pipeline ----------------
    // The same corpus and scenario set analyzed twice through a disk
    // artifact cache: the cold run computes and persists every
    // wait-graph bundle and AWG, the warm run (a fresh Analyzer, as a
    // new process would be) restores them and only recomputes the
    // cheap memory-only stages.
    const std::filesystem::path cache_dir =
        std::filesystem::temp_directory_path() /
        "tracelens_bench_artifact_cache";
    std::filesystem::remove_all(cache_dir);

    AnalyzerConfig cached_config;
    cached_config.threads = threads;
    cached_config.artifactCacheDir = cache_dir.string();

    auto stageTotals = [](const PipelineStats &stats) {
        StageStats total;
        for (const StageStats &s : stats.stages) {
            total.hits += s.hits;
            total.misses += s.misses;
            total.diskHits += s.diskHits;
            total.diskWrites += s.diskWrites;
            total.diskBytes += s.diskBytes;
        }
        return total;
    };

    double cold_ms = 0, warm_ms = 0;
    StageStats cold_totals, warm_totals;
    std::size_t cold_patterns = 0, warm_patterns = 0;
    {
        EagerSource source(corpus);
        const auto start = std::chrono::steady_clock::now();
        Analyzer analyzer(source, cached_config);
        const auto analyses = analyzer.analyzeScenarios(scenarios);
        cold_ms = msSince(start);
        cold_totals = stageTotals(analyzer.pipelineStats());
        for (const auto &analysis : analyses)
            cold_patterns += analysis.mining.patterns.size();
    }
    {
        EagerSource source(corpus);
        const auto start = std::chrono::steady_clock::now();
        Analyzer analyzer(source, cached_config);
        const auto analyses = analyzer.analyzeScenarios(scenarios);
        warm_ms = msSince(start);
        warm_totals = stageTotals(analyzer.pipelineStats());
        for (const auto &analysis : analyses)
            warm_patterns += analysis.mining.patterns.size();
    }
    std::uint64_t cache_bytes = 0;
    std::size_t cache_files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(cache_dir)) {
        cache_bytes += std::filesystem::file_size(entry.path());
        ++cache_files;
    }
    std::filesystem::remove_all(cache_dir);
    if (cold_patterns != warm_patterns) {
        std::cerr << "warm-cache mining mismatch\n";
        return 1;
    }

    std::cout << "\n== Artifact cache (" << cache_files << " files, "
              << TextTable::num(
                     static_cast<double>(cache_bytes) / (1024.0 * 1024.0),
                     1)
              << " MiB) ==\n";
    TextTable cache({"Run", "ms", "misses", "disk hits", "disk writes"});
    cache.addRow({"cold", TextTable::num(cold_ms, 0),
                  std::to_string(cold_totals.misses),
                  std::to_string(cold_totals.diskHits),
                  std::to_string(cold_totals.diskWrites)});
    cache.addRow({"warm", TextTable::num(warm_ms, 0),
                  std::to_string(warm_totals.misses),
                  std::to_string(warm_totals.diskHits),
                  std::to_string(warm_totals.diskWrites)});
    std::cout << cache.render();

    {
        std::ofstream json("BENCH_pipeline.json");
        json << "{\n"
             << "  \"scenarios\": " << scenarios.size() << ",\n"
             << "  \"threads\": " << threads << ",\n"
             << "  \"cache_files\": " << cache_files << ",\n"
             << "  \"cache_bytes\": " << cache_bytes << ",\n"
             << "  \"cold_ms\": " << cold_ms << ",\n"
             << "  \"cold_misses\": " << cold_totals.misses << ",\n"
             << "  \"cold_disk_writes\": " << cold_totals.diskWrites
             << ",\n"
             << "  \"warm_ms\": " << warm_ms << ",\n"
             << "  \"warm_misses\": " << warm_totals.misses << ",\n"
             << "  \"warm_disk_hits\": " << warm_totals.diskHits << ",\n"
             << "  \"warm_speedup\": " << speedup(cold_ms, warm_ms)
             << "\n}\n";
        std::cout << "wrote BENCH_pipeline.json\n";
    }

    // ---- self-telemetry overhead: span recording off vs on ---------
    // The full scenario pipeline (fresh Analyzer, memory-only cache)
    // timed best-of-3 with span recording disabled and enabled. Spans
    // sit at shard/stage granularity, so the delta bounds what
    // --trace-out costs a real analysis run; the overhead contract in
    // src/util/telemetry.h calls for < 3%.
    auto telemetryRun = [&](std::size_t &patterns) {
        EagerSource tel_source(corpus);
        AnalyzerConfig tel_config;
        tel_config.threads = threads;
        Analyzer tel_analyzer(tel_source, tel_config);
        const auto analyses = tel_analyzer.analyzeScenarios(scenarios);
        patterns = 0;
        for (const auto &analysis : analyses)
            patterns += analysis.mining.patterns.size();
    };

    constexpr int kTelemetryReps = 3;
    double telemetry_off_ms = 0, telemetry_on_ms = 0;
    std::size_t telemetry_off_patterns = 0, telemetry_on_patterns = 0;
    Telemetry::setEnabled(false);
    for (int rep = 0; rep < kTelemetryReps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        telemetryRun(telemetry_off_patterns);
        const double ms = msSince(start);
        if (rep == 0 || ms < telemetry_off_ms)
            telemetry_off_ms = ms;
    }
    Telemetry::setEnabled(true);
    for (int rep = 0; rep < kTelemetryReps; ++rep) {
        Telemetry::reset();
        const auto start = std::chrono::steady_clock::now();
        telemetryRun(telemetry_on_patterns);
        const double ms = msSince(start);
        if (rep == 0 || ms < telemetry_on_ms)
            telemetry_on_ms = ms;
    }
    const std::size_t telemetry_spans = Telemetry::spanCount();
    const std::size_t telemetry_trace_bytes =
        Telemetry::renderChromeTrace().size();
    Telemetry::setEnabled(false);
    Telemetry::reset();
    if (telemetry_off_patterns != telemetry_on_patterns) {
        std::cerr << "telemetry on/off mining mismatch\n";
        return 1;
    }
    const double telemetry_overhead_pct =
        telemetry_off_ms <= 0.0
            ? 0.0
            : (telemetry_on_ms - telemetry_off_ms) / telemetry_off_ms *
                  100.0;

    std::cout << "\n== Self-telemetry overhead (best of "
              << kTelemetryReps << ", " << telemetry_spans
              << " spans/run) ==\n";
    TextTable telemetry({"Spans", "ms", "overhead"});
    telemetry.addRow({"off", TextTable::num(telemetry_off_ms, 1), "-"});
    telemetry.addRow({"on", TextTable::num(telemetry_on_ms, 1),
                      TextTable::num(telemetry_overhead_pct, 2) + "%"});
    std::cout << telemetry.render();

    {
        std::ofstream json("BENCH_telemetry.json");
        json << "{\n"
             << "  \"threads\": " << threads << ",\n"
             << "  \"scenarios\": " << scenarios.size() << ",\n"
             << "  \"reps\": " << kTelemetryReps << ",\n"
             << "  \"off_ms\": " << telemetry_off_ms << ",\n"
             << "  \"on_ms\": " << telemetry_on_ms << ",\n"
             << "  \"overhead_pct\": " << telemetry_overhead_pct
             << ",\n"
             << "  \"spans\": " << telemetry_spans << ",\n"
             << "  \"trace_bytes\": " << telemetry_trace_bytes
             << "\n}\n";
        std::cout << "wrote BENCH_telemetry.json\n";
    }

    // ---- ingestion throughput: eager full-read vs mmap streaming ---
    // The corpus from above (>= 100 instances), sharded on disk the
    // way fleet collections arrive. Three ingestion modes:
    //   eager       — read every shard fully and merge (the classic
    //                 path behind EagerSource).
    //   mmap-scan   — map the shards and take per-shard summaries
    //                 (instance windows, scenario names, event
    //                 counts); symbol tables and events stay
    //                 unmaterialized. This is what threshold selection
    //                 and corpus triage actually need.
    //   mmap-full   — map, then materialize the merged corpus through
    //                 the shard cache (upper bound for mmap cost).
    const std::filesystem::path shard_dir =
        std::filesystem::temp_directory_path() /
        "tracelens_bench_ingest_shards";
    std::filesystem::remove_all(shard_dir);
    const std::size_t shard_count = 16;
    writeShardedCorpusDir(corpus, shard_dir.string(), shard_count);

    std::uint64_t shard_bytes = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(shard_dir))
        shard_bytes += std::filesystem::file_size(entry.path());
    const double shard_mb =
        static_cast<double>(shard_bytes) / (1024.0 * 1024.0);

    auto mbps = [shard_mb](double ms) {
        return ms <= 0.0 ? 0.0 : shard_mb / (ms / 1000.0);
    };

    double eager_ms = 0, scan_ms = 0, full_ms = 0;
    std::uint64_t eager_events = 0, scan_events = 0, full_events = 0;
    {
        const auto start = std::chrono::steady_clock::now();
        auto source = openSource(shard_dir.string());
        eager_events = source.value()->corpus().totalEvents();
        eager_ms = msSince(start);
    }
    {
        SourceOptions options;
        options.useMmap = true;
        const auto start = std::chrono::steady_clock::now();
        auto source = openSource(shard_dir.string(), options);
        for (std::size_t i = 0; i < source.value()->shardCount(); ++i)
            scan_events += source.value()->summarize(i).value().events;
        scan_ms = msSince(start);
    }
    {
        SourceOptions options;
        options.useMmap = true;
        const auto start = std::chrono::steady_clock::now();
        auto source = openSource(shard_dir.string(), options);
        full_events = source.value()->corpus().totalEvents();
        full_ms = msSince(start);
    }
    std::filesystem::remove_all(shard_dir);
    if (eager_events != scan_events || eager_events != full_events) {
        std::cerr << "ingestion event-count mismatch\n";
        return 1;
    }

    std::cout << "\n== Ingestion throughput (" << shard_count
              << " shards, " << TextTable::num(shard_mb, 1)
              << " MiB on disk) ==\n";
    TextTable ingest({"Mode", "ms", "MiB/s", "vs eager"});
    ingest.addRow({"eager full read", TextTable::num(eager_ms, 1),
                   TextTable::num(mbps(eager_ms), 1), "1.00"});
    ingest.addRow({"mmap skip-scan", TextTable::num(scan_ms, 1),
                   TextTable::num(mbps(scan_ms), 1),
                   TextTable::num(speedup(eager_ms, scan_ms), 2)});
    ingest.addRow({"mmap materialize", TextTable::num(full_ms, 1),
                   TextTable::num(mbps(full_ms), 1),
                   TextTable::num(speedup(eager_ms, full_ms), 2)});
    std::cout << ingest.render();

    {
        std::ofstream json("BENCH_ingest.json");
        json << "{\n"
             << "  \"shards\": " << shard_count << ",\n"
             << "  \"bytes\": " << shard_bytes << ",\n"
             << "  \"events\": " << eager_events << ",\n"
             << "  \"eager_ms\": " << eager_ms << ",\n"
             << "  \"eager_mbps\": " << mbps(eager_ms) << ",\n"
             << "  \"mmap_scan_ms\": " << scan_ms << ",\n"
             << "  \"mmap_scan_mbps\": " << mbps(scan_ms) << ",\n"
             << "  \"mmap_full_ms\": " << full_ms << ",\n"
             << "  \"mmap_full_mbps\": " << mbps(full_ms) << ",\n"
             << "  \"ingest_speedup\": " << speedup(eager_ms, scan_ms)
             << "\n}\n";
        std::cout << "wrote BENCH_ingest.json\n";
    }

    // ---- analysis service: cold vs warm query latency under load ---
    // A live daemon on an ephemeral loopback port, the corpus from
    // above on disk, and real clients over TCP. Cold phase: each
    // scenario is queried against a freshly started daemon with an
    // empty artifact cache — what the first query after a deployment
    // pays (session open, wait-graph and AWG construction, mining).
    // Warm phase: client threads hammer a long-lived daemon with the
    // same queries; every one is answered from the shared
    // ArtifactStore / response cache. The contract (docs/SERVER.md):
    // warm p50 must beat cold p50 by >= 100x.
    const std::filesystem::path server_dir =
        std::filesystem::temp_directory_path() /
        "tracelens_bench_server";
    std::filesystem::remove_all(server_dir);
    std::filesystem::create_directories(server_dir);
    const std::string server_corpus =
        (server_dir / "corpus.tlc").string();
    writeCorpusFile(corpus, server_corpus);

    server::ServerConfig server_config;
    server_config.host = "127.0.0.1";
    server_config.port = 0;
    server_config.workers = threads;
    server_config.maxInflight = 256;
    server_config.registry.artifactCacheDir =
        (server_dir / "artifacts").string();
    // The multiplexing bench below saturates the workers with the
    // test-only sleep method.
    server_config.enableTestMethods = true;

    auto analyzeParams = [&](const ScenarioThresholds &scenario) {
        JsonValue params = JsonValue::makeObject();
        params.set("corpus", JsonValue(server_corpus));
        params.set("scenario", JsonValue(scenario.name));
        return params;
    };
    auto connectClient =
        [](std::uint16_t port,
           server::ProtocolPreference prefer =
               server::ProtocolPreference::Auto) {
            server::SessionOptions options;
            options.prefer = prefer;
            options.ioTimeout = std::chrono::milliseconds(60000);
            auto session = server::Session::connect("127.0.0.1", port,
                                                    options);
            if (!session.ok()) {
                std::cerr << "client connect failed: "
                          << session.error().render() << "\n";
                std::exit(1);
            }
            return std::move(session.value());
        };
    auto startDaemon = [&](server::Server &daemon) {
        const auto started = daemon.start();
        if (!started.ok()) {
            std::cerr << "server start failed: "
                      << started.error().render() << "\n";
            std::exit(1);
        }
    };

    std::vector<double> cold_us;
    for (const ScenarioThresholds &scenario : scenarios) {
        std::filesystem::remove_all(
            server_config.registry.artifactCacheDir);
        server::Server daemon(server_config);
        startDaemon(daemon);
        server::Session client = connectClient(daemon.port());
        const auto start = std::chrono::steady_clock::now();
        const auto reply = client.call(server::Method::Analyze,
                                       analyzeParams(scenario));
        if (!reply.ok() || !reply.value().ok) {
            std::cerr << "cold analyze failed for " << scenario.name
                      << "\n";
            return 1;
        }
        cold_us.push_back(usSince(start));
        daemon.requestStop();
        daemon.wait();
    }

    std::filesystem::remove_all(server_config.registry.artifactCacheDir);
    server::Server daemon(server_config);
    startDaemon(daemon);
    const std::uint16_t server_port = daemon.port();
    {
        // Untimed warm-up: build the artifacts once and populate the
        // response cache, so the timed phase measures steady state.
        server::Session client = connectClient(server_port);
        for (const ScenarioThresholds &scenario : scenarios) {
            const auto reply = client.call(server::Method::Analyze,
                                           analyzeParams(scenario));
            if (!reply.ok() || !reply.value().ok) {
                std::cerr << "warm-up analyze failed for "
                          << scenario.name << "\n";
                return 1;
            }
        }
    }

    const unsigned client_threads = std::max(2u, std::min(threads, 8u));
    const std::size_t requests_per_client = 200;
    std::vector<std::vector<double>> warm_per_client(client_threads);
    const auto load_start = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> clients;
        clients.reserve(client_threads);
        for (unsigned t = 0; t < client_threads; ++t) {
            clients.emplace_back([&, t] {
                server::Session client = connectClient(server_port);
                auto &samples = warm_per_client[t];
                samples.reserve(requests_per_client);
                for (std::size_t i = 0; i < requests_per_client; ++i) {
                    const ScenarioThresholds &scenario =
                        scenarios[(t + i) % scenarios.size()];
                    const auto start = std::chrono::steady_clock::now();
                    const auto reply =
                        client.call(server::Method::Analyze,
                                    analyzeParams(scenario));
                    if (!reply.ok() || !reply.value().ok) {
                        std::cerr << "warm analyze failed for "
                                  << scenario.name << "\n";
                        std::exit(1);
                    }
                    samples.push_back(usSince(start));
                }
            });
        }
        for (std::thread &thread : clients)
            thread.join();
    }
    const double load_ms = msSince(load_start);

    // ---- protocol v2: wire bytes and multiplexed scheduling --------
    // Same daemon, same warm response cache, so both measurements
    // compare transports, not analysis cost.
    //
    // (a) Wire bytes. One symbol-heavy session — eight reps of
    // analyze(top=50) over every scenario plus impact — through a v1
    // session and a v2 session. The symbol dictionary sends each
    // module!Function string once per connection, so v2 must land at
    // <= 1/3 of v1's total wire bytes.
    const int wire_reps = 8;
    auto analyzeTopParams = [&](const ScenarioThresholds &scenario) {
        JsonValue params = analyzeParams(scenario);
        params.set("top", JsonValue(50));
        return params;
    };
    JsonValue impact_params = JsonValue::makeObject();
    impact_params.set("corpus", JsonValue(server_corpus));

    auto sessionWireBytes = [&](server::ProtocolPreference prefer) {
        server::Session session = connectClient(server_port, prefer);
        for (int rep = 0; rep < wire_reps; ++rep) {
            for (const ScenarioThresholds &scenario : scenarios) {
                const auto reply =
                    session.call(server::Method::Analyze,
                                 analyzeTopParams(scenario));
                if (!reply.ok() || !reply.value().ok) {
                    std::cerr << "wire-bytes analyze failed\n";
                    std::exit(1);
                }
            }
            const auto reply =
                session.call(server::Method::Impact, impact_params);
            if (!reply.ok() || !reply.value().ok) {
                std::cerr << "wire-bytes impact failed\n";
                std::exit(1);
            }
        }
        const server::WireStats wire = session.wireStats();
        return wire.bytesSent + wire.bytesReceived;
    };
    const std::uint64_t v1_wire_bytes =
        sessionWireBytes(server::ProtocolPreference::V1);
    const std::uint64_t v2_wire_bytes =
        sessionWireBytes(server::ProtocolPreference::V2);
    const double wire_ratio =
        v2_wire_bytes == 0
            ? 0.0
            : static_cast<double>(v1_wire_bytes) /
                  static_cast<double>(v2_wire_bytes);

    // (b) Multiplexed scheduling. Saturate the workers with bulk
    // sleeps, then measure a near-zero-cost interactive probe (a 1ms
    // sleep, so the sample is pure queueing delay rather than the
    // probe's own service time). Over v2 the probe rides an
    // interactive-priority stream and overtakes the queue; over v1
    // every request is normal priority and the probe drains FIFO
    // behind the whole backlog. Contract: probe p95 improves >= 5x.
    const unsigned pool_workers = std::max(1u, threads);
    const std::size_t blockers_per_round = 8 * pool_workers;
    const std::size_t probe_rounds = 8;
    JsonValue sleep_params = JsonValue::makeObject();
    sleep_params.set("ms", JsonValue(50));
    JsonValue probe_params = JsonValue::makeObject();
    probe_params.set("ms", JsonValue(1));

    auto probeLatencies = [&](server::ProtocolPreference prefer) {
        server::Session session = connectClient(server_port, prefer);
        const bool v2 = session.protocolVersion() ==
                        server::kProtocolVersionV2;
        std::vector<double> samples;
        samples.reserve(probe_rounds);
        for (std::size_t round = 0; round < probe_rounds; ++round) {
            server::CallOptions bulk;
            bulk.priority = server::kPriorityBulk; // v1: ignored
            std::vector<std::uint64_t> handles;
            handles.reserve(blockers_per_round);
            for (std::size_t i = 0; i < blockers_per_round; ++i) {
                auto handle = session.send(server::Method::Sleep,
                                           sleep_params, bulk);
                if (!handle.ok()) {
                    std::cerr << "blocker send failed\n";
                    std::exit(1);
                }
                handles.push_back(handle.value());
            }
            server::CallOptions interactive;
            interactive.priority = server::kPriorityInteractive;
            const auto start = std::chrono::steady_clock::now();
            const auto probe = session.call(server::Method::Sleep,
                                            probe_params, interactive);
            if (!probe.ok() || !probe.value().ok) {
                std::cerr << "probe failed ("
                          << (v2 ? "v2" : "v1") << ")\n";
                std::exit(1);
            }
            samples.push_back(usSince(start));
            for (std::uint64_t handle : handles) {
                const auto drained = session.wait(handle);
                if (!drained.ok() || !drained.value().ok) {
                    std::cerr << "blocker drain failed\n";
                    std::exit(1);
                }
            }
        }
        return samples;
    };
    const std::vector<double> v1_probe_us =
        probeLatencies(server::ProtocolPreference::V1);
    const std::vector<double> v2_probe_us =
        probeLatencies(server::ProtocolPreference::V2);
    const double v1_probe_p95 = percentileUs(v1_probe_us, 0.95);
    const double v2_probe_p95 = percentileUs(v2_probe_us, 0.95);
    const double multiplex_speedup =
        speedup(v1_probe_p95, v2_probe_p95);

    // ---- distributed tracing overhead: warm load, off vs on --------
    // Same warm daemon, same cache-hit analyze load as the warm phase
    // above, twice. "Off" sessions clear the tracing SETTINGS bit, so
    // every request is byte-identical to a pre-tracing client; "on"
    // sessions negotiate span-context propagation and root a fresh
    // trace id per request (what `tracelens query` does by default)
    // while the server records request spans. The contract
    // (docs/TELEMETRY.md): tracing costs < 3% of warm throughput.
    // Enforced on multicore hosts; recorded on a single core, where
    // client and server threads fight for the one core and the
    // measurement is all scheduler noise.
    const std::size_t obs_requests_per_client = 150;
    constexpr int kObsReps = 3;
    auto tracedLoadRps = [&](bool tracing) {
        std::vector<std::thread> clients;
        clients.reserve(client_threads);
        const auto start = std::chrono::steady_clock::now();
        for (unsigned t = 0; t < client_threads; ++t) {
            clients.emplace_back([&, t] {
                server::SessionOptions options;
                options.ioTimeout = std::chrono::milliseconds(60000);
                options.tracing = tracing;
                auto session = server::Session::connect(
                    "127.0.0.1", server_port, options);
                if (!session.ok()) {
                    std::cerr << "tracing-load connect failed\n";
                    std::exit(1);
                }
                for (std::size_t i = 0; i < obs_requests_per_client;
                     ++i) {
                    const ScenarioThresholds &scenario =
                        scenarios[(t + i) % scenarios.size()];
                    server::CallOptions call;
                    if (tracing) {
                        call.traceContext.traceId =
                            Telemetry::newTraceId();
                        call.traceContext.sampled = true;
                    }
                    const auto reply = session.value().call(
                        server::Method::Analyze,
                        analyzeParams(scenario), call);
                    if (!reply.ok() || !reply.value().ok) {
                        std::cerr << "tracing-load analyze failed\n";
                        std::exit(1);
                    }
                }
            });
        }
        for (std::thread &thread : clients)
            thread.join();
        const double ms = msSince(start);
        return ms <= 0.0 ? 0.0
                         : static_cast<double>(client_threads *
                                               obs_requests_per_client) /
                               (ms / 1000.0);
    };
    double obs_off_rps = 0, obs_on_rps = 0;
    for (int rep = 0; rep < kObsReps; ++rep) {
        // Interleaved best-of-N, so drift (page cache, turbo, other
        // tenants) hits both modes alike.
        Telemetry::setEnabled(false);
        Telemetry::reset();
        obs_off_rps = std::max(obs_off_rps, tracedLoadRps(false));
        Telemetry::setEnabled(true);
        Telemetry::reset();
        obs_on_rps = std::max(obs_on_rps, tracedLoadRps(true));
    }
    const std::size_t obs_spans = Telemetry::spanCount();
    Telemetry::setEnabled(false);
    Telemetry::reset();
    const double obs_overhead_pct =
        obs_off_rps <= 0.0
            ? 0.0
            : (obs_off_rps - obs_on_rps) / obs_off_rps * 100.0;
    const bool obs_gate_enforced =
        std::max(1u, std::thread::hardware_concurrency()) >= 2;

    daemon.requestStop();
    daemon.wait();
    std::filesystem::remove_all(server_dir);

    std::vector<double> warm_us;
    for (const auto &samples : warm_per_client)
        warm_us.insert(warm_us.end(), samples.begin(), samples.end());
    const double warm_rps =
        load_ms <= 0.0
            ? 0.0
            : static_cast<double>(warm_us.size()) / (load_ms / 1000.0);

    const double cold_p50 = percentileUs(cold_us, 0.50);
    const double cold_p99 = percentileUs(cold_us, 0.99);
    const double warm_p50 = percentileUs(warm_us, 0.50);
    const double warm_p99 = percentileUs(warm_us, 0.99);
    const double warm_speedup_p50 = speedup(cold_p50, warm_p50);

    std::cout << "\n== Analysis service (" << client_threads
              << " clients x " << requests_per_client << " requests, "
              << scenarios.size() << " scenarios, " << threads
              << " workers) ==\n";
    TextTable server_table({"Phase", "requests", "p50-us", "p99-us"});
    server_table.addRow({"cold", std::to_string(cold_us.size()),
                         TextTable::num(cold_p50, 0),
                         TextTable::num(cold_p99, 0)});
    server_table.addRow({"warm", std::to_string(warm_us.size()),
                         TextTable::num(warm_p50, 0),
                         TextTable::num(warm_p99, 0)});
    std::cout << server_table.render();
    std::cout << "warm throughput: " << TextTable::num(warm_rps, 0)
              << " requests/s, warm p50 speedup over cold: "
              << TextTable::num(warm_speedup_p50, 0) << "x\n";
    if (warm_speedup_p50 < 100.0) {
        std::cerr << "warm p50 speedup " << warm_speedup_p50
                  << "x below the 100x contract\n";
        return 1;
    }

    {
        std::ofstream json("BENCH_server.json");
        json << "{\n"
             << "  \"client_threads\": " << client_threads << ",\n"
             << "  \"server_workers\": " << threads << ",\n"
             << "  \"scenarios\": " << scenarios.size() << ",\n"
             << "  \"cold_requests\": " << cold_us.size() << ",\n"
             << "  \"cold_p50_us\": " << cold_p50 << ",\n"
             << "  \"cold_p99_us\": " << cold_p99 << ",\n"
             << "  \"warm_requests\": " << warm_us.size() << ",\n"
             << "  \"warm_p50_us\": " << warm_p50 << ",\n"
             << "  \"warm_p99_us\": " << warm_p99 << ",\n"
             << "  \"warm_rps\": " << warm_rps << ",\n"
             << "  \"warm_speedup_p50\": " << warm_speedup_p50
             << "\n}\n";
        std::cout << "wrote BENCH_server.json\n";
    }

    std::cout << "\n== Protocol v2 vs v1 (same daemon, warm cache) ==\n";
    TextTable proto_table({"Metric", "v1", "v2", "ratio"});
    proto_table.addRow({"session wire bytes",
                        std::to_string(v1_wire_bytes),
                        std::to_string(v2_wire_bytes),
                        TextTable::num(wire_ratio, 2) + "x"});
    proto_table.addRow({"probe p95 us under load",
                        TextTable::num(v1_probe_p95, 0),
                        TextTable::num(v2_probe_p95, 0),
                        TextTable::num(multiplex_speedup, 1) + "x"});
    std::cout << proto_table.render();
    if (wire_ratio < 3.0) {
        std::cerr << "v2 wire bytes only " << TextTable::num(wire_ratio, 2)
                  << "x smaller than v1; the contract is >= 3x\n";
        return 1;
    }
    if (multiplex_speedup < 5.0) {
        std::cerr << "interactive probe p95 only "
                  << TextTable::num(multiplex_speedup, 1)
                  << "x better over v2; the contract is >= 5x\n";
        return 1;
    }

    {
        std::ofstream json("BENCH_proto.json");
        json << "{\n"
             << "  \"wire_reps\": " << wire_reps << ",\n"
             << "  \"v1_wire_bytes\": " << v1_wire_bytes << ",\n"
             << "  \"v2_wire_bytes\": " << v2_wire_bytes << ",\n"
             << "  \"wire_ratio\": " << wire_ratio << ",\n"
             << "  \"wire_ratio_floor\": 3.0,\n"
             << "  \"probe_rounds\": " << probe_rounds << ",\n"
             << "  \"blockers_per_round\": " << blockers_per_round
             << ",\n"
             << "  \"v1_probe_p95_us\": " << v1_probe_p95 << ",\n"
             << "  \"v2_probe_p95_us\": " << v2_probe_p95 << ",\n"
             << "  \"multiplex_speedup_p95\": " << multiplex_speedup
             << ",\n"
             << "  \"multiplex_speedup_floor\": 5.0\n"
             << "}\n";
        std::cout << "wrote BENCH_proto.json\n";
    }

    std::cout << "\n== Distributed tracing overhead (warm load, best "
                 "of "
              << kObsReps << ", " << obs_spans
              << " spans recorded/run) ==\n";
    TextTable obs_table({"Tracing", "rps", "overhead"});
    obs_table.addRow({"off", TextTable::num(obs_off_rps, 0), "-"});
    obs_table.addRow({"on", TextTable::num(obs_on_rps, 0),
                      TextTable::num(obs_overhead_pct, 2) + "%"});
    std::cout << obs_table.render();
    if (obs_gate_enforced && obs_overhead_pct >= 3.0) {
        std::cerr << "tracing overhead "
                  << TextTable::num(obs_overhead_pct, 2)
                  << "% breaches the < 3% contract\n";
        return 1;
    }
    if (!obs_gate_enforced) {
        std::cout << "(single hardware thread: tracing-overhead gate "
                     "recorded, not enforced)\n";
    }

    {
        std::ofstream json("BENCH_obs.json");
        json << "{\n"
             << "  \"client_threads\": " << client_threads << ",\n"
             << "  \"requests_per_client\": "
             << obs_requests_per_client << ",\n"
             << "  \"reps\": " << kObsReps << ",\n"
             << "  \"tracing_off_rps\": " << obs_off_rps << ",\n"
             << "  \"tracing_on_rps\": " << obs_on_rps << ",\n"
             << "  \"overhead_pct\": " << obs_overhead_pct << ",\n"
             << "  \"overhead_ceiling_pct\": 3.0,\n"
             << "  \"spans_per_run\": " << obs_spans << ",\n"
             << "  \"gate_enforced\": "
             << (obs_gate_enforced ? "true" : "false") << ",\n"
             << "  \"gate_pass\": "
             << (!obs_gate_enforced || obs_overhead_pct < 3.0
                     ? "true"
                     : "false")
             << "\n}\n";
        std::cout << "wrote BENCH_obs.json\n";
    }

    // ---- cluster mode: coordinator + 2 workers vs single-node ------
    // The corpus from above sharded on disk, three plain daemons (two
    // cluster workers and a single-node reference) plus a coordinator,
    // all with one analysis thread per request so the comparison
    // isolates *shard-level scatter* as the only parallelism. Every
    // timed query varies the thresholds, which defeats the per-worker
    // partial caches and the single-node response cache alike — each
    // request pays the real classification/impact/AWG cost. The gate
    // (docs/SERVER.md): with 2 local workers the coordinator must
    // reach >= 1.6x single-node throughput. Scale-out needs hardware
    // to scale onto, so the gate is enforced on >= 2 hardware
    // threads and recorded (not enforced) on a single-core host,
    // like every other parallel speedup in this bench.
    const std::filesystem::path cluster_dir =
        std::filesystem::temp_directory_path() /
        "tracelens_bench_cluster";
    std::filesystem::remove_all(cluster_dir);
    std::filesystem::create_directories(cluster_dir);
    const std::string cluster_corpus = (cluster_dir / "corpus").string();
    const std::size_t cluster_shards = 8;
    writeShardedCorpusDir(corpus, cluster_corpus, cluster_shards);

    server::ServerConfig node_config;
    node_config.host = "127.0.0.1";
    node_config.port = 0;
    node_config.workers = std::max(4u, threads);
    node_config.maxInflight = 256;
    node_config.registry.analysisThreads = 1;

    server::Server worker_a(node_config);
    server::Server worker_b(node_config);
    server::Server single_node(node_config);
    startDaemon(worker_a);
    startDaemon(worker_b);
    startDaemon(single_node);

    server::ServerConfig coord_config = node_config;
    coord_config.coordinator = true;
    coord_config.workerAddrs = {
        "127.0.0.1:" + std::to_string(worker_a.port()),
        "127.0.0.1:" + std::to_string(worker_b.port())};
    server::Server coordinator(coord_config);
    startDaemon(coordinator);

    // Thresholds scaled by @p k (kept ordered: both scale together).
    auto clusterParams = [&](const ScenarioThresholds &scenario,
                             double k) {
        JsonValue params = JsonValue::makeObject();
        params.set("corpus", JsonValue(cluster_corpus));
        params.set("scenario", JsonValue(scenario.name));
        params.set("tfast_ms", JsonValue(scenario.tFast * k));
        params.set("tslow_ms", JsonValue(scenario.tSlow * k));
        return params;
    };

    // Byte-identity first (this also warms the threshold-independent
    // wait-graph artifacts on every daemon, so the timed phase below
    // measures the per-query scenario stages on both sides).
    bool cluster_identical = true;
    {
        server::Session coord_client =
            connectClient(coordinator.port());
        server::Session single_client =
            connectClient(single_node.port());
        for (const ScenarioThresholds &scenario : scenarios) {
            const JsonValue params = clusterParams(scenario, 1.0);
            const auto via_coord = coord_client.call(
                server::Method::Analyze, params);
            const auto via_single = single_client.call(
                server::Method::Analyze, params);
            if (!via_coord.ok() || !via_coord.value().ok ||
                !via_single.ok() || !via_single.value().ok) {
                std::cerr << "cluster identity query failed for "
                          << scenario.name << "\n";
                return 1;
            }
            if (via_coord.value().result.render() !=
                via_single.value().result.render()) {
                std::cerr << "cluster report differs from single-node "
                             "for " << scenario.name << "\n";
                cluster_identical = false;
            }
        }
    }
    if (!cluster_identical)
        return 1;

    // Timed phase: the same threshold-varied query sequence against
    // each target; every (scenario, k) pair is unique, so no response
    // or partial cache can answer for the pipeline.
    const std::size_t cluster_rounds = 3;
    auto timedQueries = [&](std::uint16_t port) {
        server::Session client = connectClient(port);
        std::size_t index = 0;
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t round = 0; round < cluster_rounds; ++round) {
            for (const ScenarioThresholds &scenario : scenarios) {
                const double k =
                    1.0 + 0.003 * static_cast<double>(++index);
                const auto reply = client.call(
                    server::Method::Analyze,
                    clusterParams(scenario, k));
                if (!reply.ok() || !reply.value().ok) {
                    std::cerr << "cluster timed query failed for "
                              << scenario.name << "\n";
                    std::exit(1);
                }
            }
        }
        return msSince(start);
    };
    const std::size_t cluster_queries =
        cluster_rounds * scenarios.size();
    const double single_node_ms = timedQueries(single_node.port());
    const double cluster_ms = timedQueries(coordinator.port());
    const double cluster_speedup = speedup(single_node_ms, cluster_ms);
    auto qps = [cluster_queries](double ms) {
        return ms <= 0.0 ? 0.0
                         : static_cast<double>(cluster_queries) /
                               (ms / 1000.0);
    };

    coordinator.requestStop();
    coordinator.wait();
    worker_a.requestStop();
    worker_a.wait();
    worker_b.requestStop();
    worker_b.wait();
    single_node.requestStop();
    single_node.wait();
    std::filesystem::remove_all(cluster_dir);

    const unsigned hardware_threads =
        std::max(1u, std::thread::hardware_concurrency());
    const bool cluster_gate_enforced = hardware_threads >= 2;

    std::cout << "\n== Cluster scale-out (" << cluster_shards
              << " shards, 2 workers, " << cluster_queries
              << " threshold-varied queries) ==\n";
    TextTable cluster_table({"Target", "ms", "queries/s", "speedup"});
    cluster_table.addRow({"single node",
                          TextTable::num(single_node_ms, 0),
                          TextTable::num(qps(single_node_ms), 2),
                          "1.00"});
    cluster_table.addRow({"coordinator + 2 workers",
                          TextTable::num(cluster_ms, 0),
                          TextTable::num(qps(cluster_ms), 2),
                          TextTable::num(cluster_speedup, 2)});
    std::cout << cluster_table.render();
    std::cout << "merged reports byte-identical to single-node: yes\n";
    if (cluster_gate_enforced && cluster_speedup < 1.6) {
        std::cerr << "cluster speedup "
                  << TextTable::num(cluster_speedup, 2)
                  << "x below the 1.6x scale-out contract\n";
        return 1;
    }
    if (!cluster_gate_enforced) {
        std::cout << "(single hardware thread: scale-out gate "
                     "recorded, not enforced)\n";
    }

    {
        std::ofstream json("BENCH_cluster.json");
        json << "{\n"
             << "  \"shards\": " << cluster_shards << ",\n"
             << "  \"workers\": 2,\n"
             << "  \"analysis_threads_per_request\": 1,\n"
             << "  \"hardware_threads\": " << hardware_threads << ",\n"
             << "  \"queries\": " << cluster_queries << ",\n"
             << "  \"byte_identical\": true,\n"
             << "  \"single_node_ms\": " << single_node_ms << ",\n"
             << "  \"single_node_qps\": " << qps(single_node_ms)
             << ",\n"
             << "  \"cluster_ms\": " << cluster_ms << ",\n"
             << "  \"cluster_qps\": " << qps(cluster_ms) << ",\n"
             << "  \"cluster_speedup\": " << cluster_speedup << ",\n"
             << "  \"speedup_floor\": 1.6,\n"
             << "  \"gate_enforced\": "
             << (cluster_gate_enforced ? "true" : "false") << ",\n"
             << "  \"gate_pass\": "
             << (!cluster_gate_enforced || cluster_speedup >= 1.6
                     ? "true"
                     : "false")
             << "\n}\n";
        std::cout << "wrote BENCH_cluster.json\n";
    }

    // ---- continuous fleet mode: ingest rate, alert latency ---------
    // Push-mode FleetService (no spool): three calm windows feed the
    // rolling ring, then a regressed cohort (encryption everywhere,
    // slower disks) lands in a fourth window and the sentinel must
    // catch it. Timed per ingest: each call covers windowing, the
    // per-shard partial, sentinel evaluation, and alert emission —
    // the same work a live daemon does per `ingest_push`.
    {
        constexpr std::uint64_t fleet_window_ms = 60000;
        FleetConfig fleet_config;
        fleet_config.windowMs = fleet_window_ms;
        fleet_config.sentinel.scenarios = scenarios;
        fleet_config.sentinel.baselineWindows = 2;
        FleetService fleet(fleet_config);

        struct FleetShard
        {
            std::string name;
            TraceCorpus corpus;
            std::uint64_t stampMs;
        };
        std::vector<FleetShard> fleet_shards;
        const std::size_t shards_per_window = 4;
        auto addCohort = [&](std::uint64_t window, double encrypted,
                             double hdd) {
            CorpusSpec fleet_spec;
            fleet_spec.machines = 32;
            fleet_spec.seed = seed + 100 + window;
            fleet_spec.encryptedFraction = encrypted;
            fleet_spec.hddFraction = hdd;
            std::vector<TraceCorpus> cohort =
                generateShardedCorpus(fleet_spec, shards_per_window);
            for (std::size_t i = 0; i < cohort.size(); ++i)
                fleet_shards.push_back(
                    {"shard-" + std::to_string(window) + "-" +
                         std::to_string(i) + ".tlc",
                     std::move(cohort[i]),
                     window * fleet_window_ms + i});
        };
        addCohort(0, 0.0, 0.1);
        addCohort(1, 0.0, 0.1);
        addCohort(2, 0.0, 0.1);
        addCohort(3, 1.0, 0.5); // the injected regression

        std::size_t fleet_alerts = 0;
        double alert_latency_ms = 0.0;
        const auto fleet_start = std::chrono::steady_clock::now();
        for (FleetShard &shard : fleet_shards) {
            const auto arrival = std::chrono::steady_clock::now();
            const IngestOutcome outcome = fleet.ingest(
                std::move(shard.name), std::move(shard.corpus),
                shard.stampMs);
            if (outcome.alerts != 0 && fleet_alerts == 0)
                alert_latency_ms = msSince(arrival);
            fleet_alerts += outcome.alerts;
        }
        const double fleet_ingest_ms = msSince(fleet_start);
        const double fleet_shards_per_s =
            fleet_ingest_ms <= 0.0
                ? 0.0
                : static_cast<double>(fleet_shards.size()) /
                      (fleet_ingest_ms / 1000.0);

        const bool fleet_gate_enforced = hardware_threads >= 2;
        std::cout << "\n== Continuous fleet mode ("
                  << fleet_shards.size() << " shards, 4 windows, "
                  << "regression injected in window 3) ==\n";
        TextTable fleet_table({"Metric", "Value"});
        fleet_table.addRow({"ingest shards/s",
                            TextTable::num(fleet_shards_per_s, 1)});
        fleet_table.addRow(
            {"alert latency ms (arrival -> emission)",
             TextTable::num(alert_latency_ms, 1)});
        fleet_table.addRow(
            {"alerts fired", std::to_string(fleet_alerts)});
        std::cout << fleet_table.render();
        if (fleet_gate_enforced && fleet_alerts == 0) {
            std::cerr << "sentinel missed the injected regression\n";
            return 1;
        }
        if (!fleet_gate_enforced) {
            std::cout << "(single hardware thread: fleet gate "
                         "recorded, not enforced)\n";
        }

        std::ofstream json("BENCH_fleet.json");
        json << "{\n"
             << "  \"shards\": " << fleet_shards.size() << ",\n"
             << "  \"windows\": 4,\n"
             << "  \"window_ms\": " << fleet_window_ms << ",\n"
             << "  \"shards_per_window\": " << shards_per_window
             << ",\n"
             << "  \"hardware_threads\": " << hardware_threads
             << ",\n"
             << "  \"ingest_ms\": " << fleet_ingest_ms << ",\n"
             << "  \"ingest_shards_per_s\": " << fleet_shards_per_s
             << ",\n"
             << "  \"alert_latency_ms\": " << alert_latency_ms
             << ",\n"
             << "  \"alerts_fired\": " << fleet_alerts << ",\n"
             << "  \"gate_enforced\": "
             << (fleet_gate_enforced ? "true" : "false") << ",\n"
             << "  \"gate_pass\": "
             << (!fleet_gate_enforced || fleet_alerts > 0 ? "true"
                                                          : "false")
             << "\n}\n";
        std::cout << "wrote BENCH_fleet.json\n";

        std::cout << "\nBENCH_scale_fleet_ingest_shards_per_s="
                  << fleet_shards_per_s << "\n"
                  << "BENCH_scale_fleet_alert_latency_ms="
                  << alert_latency_ms << "\n"
                  << "BENCH_scale_fleet_alerts=" << fleet_alerts
                  << "\n";
    }

    std::cout << "\nBENCH_scale_threads=" << threads << "\n"
              << "BENCH_scale_instances=" << corpus.instances().size()
              << "\n"
              << "BENCH_scale_waitgraph_speedup="
              << speedup(graphs_serial_ms, graphs_parallel_ms) << "\n"
              << "BENCH_scale_impact_speedup="
              << speedup(impact_serial_ms, impact_parallel_ms) << "\n"
              << "BENCH_scale_scenario_speedup="
              << speedup(scn_serial_ms, scn_parallel_ms) << "\n"
              << "BENCH_scale_pipeline_speedup="
              << speedup(pipeline_serial, pipeline_parallel) << "\n"
              << "BENCH_scale_ingest_mbps_eager=" << mbps(eager_ms)
              << "\n"
              << "BENCH_scale_ingest_mbps_mmap=" << mbps(scan_ms)
              << "\n"
              << "BENCH_scale_ingest_speedup="
              << speedup(eager_ms, scan_ms) << "\n"
              << "BENCH_scale_artifact_warm_speedup="
              << speedup(cold_ms, warm_ms) << "\n"
              << "BENCH_scale_telemetry_overhead_pct="
              << telemetry_overhead_pct << "\n"
              << "BENCH_scale_server_warm_rps=" << warm_rps << "\n"
              << "BENCH_scale_server_warm_speedup_p50="
              << warm_speedup_p50 << "\n"
              << "BENCH_scale_proto_wire_ratio=" << wire_ratio << "\n"
              << "BENCH_scale_proto_multiplex_speedup_p95="
              << multiplex_speedup << "\n"
              << "BENCH_scale_obs_tracing_overhead_pct="
              << obs_overhead_pct << "\n"
              << "BENCH_scale_cluster_speedup=" << cluster_speedup
              << "\n";
    std::cout << "(speedups track the worker count on multicore "
                 "hardware; on a single hardware thread they stay "
                 "near 1.0)\n";
    return 0;
}
