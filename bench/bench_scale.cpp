/**
 * @file
 * Methodological supplement: stability of the Section-5.1 impact
 * metrics as the corpus grows. The paper argues large-scale trace
 * collections are needed to expose amortized problems; this bench
 * shows how quickly the fleet-level metrics converge with corpus size
 * and how analysis time scales.
 *
 * Usage: bench_scale [max_machines] [seed]
 */

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "src/core/analyzer.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

int
main(int argc, char **argv)
{
    using namespace tracelens;

    const std::uint32_t max_machines =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 400;
    std::uint64_t seed = 20140301;
    if (argc > 2)
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "== Scaling study: impact metrics vs corpus size ==\n";
    TextTable table({"Machines", "Instances", "Events", "IA_wait",
                     "IA_run", "IA_opt", "Dw/Dwd", "gen-ms",
                     "analyze-ms"});

    for (std::uint32_t machines = 25; machines <= max_machines;
         machines *= 2) {
        CorpusSpec spec;
        spec.machines = machines;
        spec.seed = seed;

        const auto gen_start = std::chrono::steady_clock::now();
        const TraceCorpus corpus = generateCorpus(spec);
        const double gen_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - gen_start)
                .count();

        const auto analyze_start = std::chrono::steady_clock::now();
        Analyzer analyzer(corpus);
        const ImpactResult impact = analyzer.impactAll();
        const double analyze_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - analyze_start)
                .count();

        table.addRow({std::to_string(machines),
                      std::to_string(impact.instances),
                      std::to_string(corpus.totalEvents()),
                      TextTable::pct(impact.iaWait()),
                      TextTable::pct(impact.iaRun()),
                      TextTable::pct(impact.iaOpt()),
                      TextTable::num(impact.waitAmplification(), 2),
                      TextTable::num(gen_ms, 0),
                      TextTable::num(analyze_ms, 0)});
    }
    std::cout << table.render();
    std::cout << "\n(expect the ratios to stabilize once a few hundred "
                 "instances are aggregated, while cost scales roughly "
                 "linearly)\n";
    return 0;
}
