/**
 * @file
 * Microbenchmarks (google-benchmark) of the TraceLens pipeline stages:
 * simulation/trace generation, wait-graph construction, impact
 * analysis, AWG aggregation, meta-pattern enumeration, full mining,
 * and corpus serialization.
 */

#include <sstream>

#include <benchmark/benchmark.h>

#include "src/awg/awg.h"
#include "src/core/analyzer.h"
#include "src/impact/impact.h"
#include "src/mining/miner.h"
#include "src/trace/serialize.h"
#include "src/waitgraph/waitgraph.h"
#include "src/workload/generator.h"

namespace
{

using namespace tracelens;

const TraceCorpus &
sharedCorpus()
{
    static const TraceCorpus corpus = [] {
        CorpusSpec spec;
        spec.machines = 30;
        spec.seed = 42;
        return generateCorpus(spec);
    }();
    return corpus;
}

void
BM_GenerateMachine(benchmark::State &state)
{
    CorpusSpec spec;
    spec.machines = 1;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        spec.seed = seed++;
        TraceCorpus corpus = generateCorpus(spec);
        benchmark::DoNotOptimize(corpus.totalEvents());
    }
}
BENCHMARK(BM_GenerateMachine)->Unit(benchmark::kMillisecond);

void
BM_WaitGraphBuildAll(benchmark::State &state)
{
    const TraceCorpus &corpus = sharedCorpus();
    for (auto _ : state) {
        WaitGraphBuilder builder(corpus);
        auto graphs = builder.buildAll();
        benchmark::DoNotOptimize(graphs.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(corpus.instances().size()));
}
BENCHMARK(BM_WaitGraphBuildAll)->Unit(benchmark::kMillisecond);

void
BM_ImpactAnalysis(benchmark::State &state)
{
    const TraceCorpus &corpus = sharedCorpus();
    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    ImpactAnalysis impact(corpus, NameFilter({"*.sys"}));
    for (auto _ : state) {
        const ImpactResult result = impact.analyze(graphs);
        benchmark::DoNotOptimize(result.dWait);
    }
}
BENCHMARK(BM_ImpactAnalysis)->Unit(benchmark::kMillisecond);

void
BM_AwgAggregate(benchmark::State &state)
{
    const TraceCorpus &corpus = sharedCorpus();
    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    AwgBuilder awg_builder(corpus, NameFilter({"*.sys"}));
    for (auto _ : state) {
        const AggregatedWaitGraph awg = awg_builder.aggregate(graphs);
        benchmark::DoNotOptimize(awg.nodes().size());
    }
}
BENCHMARK(BM_AwgAggregate)->Unit(benchmark::kMillisecond);

void
BM_MetaPatternEnumeration(benchmark::State &state)
{
    const TraceCorpus &corpus = sharedCorpus();
    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    AwgBuilder awg_builder(corpus, NameFilter({"*.sys"}));
    const AggregatedWaitGraph awg = awg_builder.aggregate(graphs);
    MiningOptions options;
    options.maxSegmentLength =
        static_cast<std::uint32_t>(state.range(0));
    ContrastMiner miner(corpus, options);
    for (auto _ : state) {
        const auto metas = miner.enumerateMetaPatterns(awg);
        benchmark::DoNotOptimize(metas.size());
    }
}
BENCHMARK(BM_MetaPatternEnumeration)
    ->Arg(1)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Unit(benchmark::kMillisecond);

void
BM_FullScenarioAnalysis(benchmark::State &state)
{
    const TraceCorpus &corpus = sharedCorpus();
    for (auto _ : state) {
        EagerSource analyzer_source(corpus);
        Analyzer analyzer(analyzer_source);
        const ScenarioAnalysis analysis = analyzer.analyzeScenario(
            "WebPageNavigation", fromMs(500), fromMs(1000));
        benchmark::DoNotOptimize(analysis.mining.patterns.size());
    }
}
BENCHMARK(BM_FullScenarioAnalysis)->Unit(benchmark::kMillisecond);

void
BM_SerializeCorpus(benchmark::State &state)
{
    const TraceCorpus &corpus = sharedCorpus();
    for (auto _ : state) {
        std::ostringstream buffer;
        writeCorpus(corpus, buffer);
        benchmark::DoNotOptimize(buffer.str().size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sharedCorpus().totalEvents()));
}
BENCHMARK(BM_SerializeCorpus)->Unit(benchmark::kMillisecond);

void
BM_DeserializeCorpus(benchmark::State &state)
{
    std::ostringstream buffer;
    writeCorpus(sharedCorpus(), buffer);
    const std::string bytes = buffer.str();
    for (auto _ : state) {
        std::istringstream in(bytes);
        TraceCorpus corpus = readCorpus(in);
        benchmark::DoNotOptimize(corpus.totalEvents());
    }
}
BENCHMARK(BM_DeserializeCorpus)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
