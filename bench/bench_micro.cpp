/**
 * @file
 * Microbenchmarks (google-benchmark) of the TraceLens pipeline stages:
 * simulation/trace generation, wait-graph construction, impact
 * analysis, AWG aggregation, meta-pattern enumeration, full mining,
 * and corpus serialization.
 *
 * Before the registered benchmarks run, main() executes the columnar
 * regression contract of docs/PERFORMANCE.md: the production
 * WaitGraphBuilder is raced against the faithful pre-refactor builder
 * (bench/legacy_waitgraph.h) over the shared corpus, node-for-node
 * parity is asserted, rendered reports must be byte-identical across
 * 1/4/8 build threads, and the per-shard build must be at least
 * kMinSpeedup times faster than the legacy path. Results land in
 * BENCH_micro.json in the working directory; any violation exits
 * non-zero. Pass --contract-only to skip the google-benchmark suite.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/legacy_waitgraph.h"

#include "src/awg/awg.h"
#include "src/core/analyzer.h"
#include "src/impact/impact.h"
#include "src/mining/miner.h"
#include "src/trace/serialize.h"
#include "src/waitgraph/waitgraph.h"
#include "src/workload/generator.h"

namespace
{

using namespace tracelens;

const TraceCorpus &
sharedCorpus()
{
    static const TraceCorpus corpus = [] {
        CorpusSpec spec;
        spec.machines = 30;
        spec.seed = 42;
        return generateCorpus(spec);
    }();
    return corpus;
}

void
BM_GenerateMachine(benchmark::State &state)
{
    CorpusSpec spec;
    spec.machines = 1;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        spec.seed = seed++;
        TraceCorpus corpus = generateCorpus(spec);
        benchmark::DoNotOptimize(corpus.totalEvents());
    }
}
BENCHMARK(BM_GenerateMachine)->Unit(benchmark::kMillisecond);

void
BM_WaitGraphBuildAll(benchmark::State &state)
{
    const TraceCorpus &corpus = sharedCorpus();
    for (auto _ : state) {
        WaitGraphBuilder builder(corpus);
        auto graphs = builder.buildAll();
        benchmark::DoNotOptimize(graphs.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(corpus.instances().size()));
}
BENCHMARK(BM_WaitGraphBuildAll)->Unit(benchmark::kMillisecond);

void
BM_ImpactAnalysis(benchmark::State &state)
{
    const TraceCorpus &corpus = sharedCorpus();
    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    ImpactAnalysis impact(corpus, NameFilter({"*.sys"}));
    for (auto _ : state) {
        const ImpactResult result = impact.analyze(graphs);
        benchmark::DoNotOptimize(result.dWait);
    }
}
BENCHMARK(BM_ImpactAnalysis)->Unit(benchmark::kMillisecond);

void
BM_AwgAggregate(benchmark::State &state)
{
    const TraceCorpus &corpus = sharedCorpus();
    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    AwgBuilder awg_builder(corpus, NameFilter({"*.sys"}));
    for (auto _ : state) {
        const AggregatedWaitGraph awg = awg_builder.aggregate(graphs);
        benchmark::DoNotOptimize(awg.nodes().size());
    }
}
BENCHMARK(BM_AwgAggregate)->Unit(benchmark::kMillisecond);

void
BM_MetaPatternEnumeration(benchmark::State &state)
{
    const TraceCorpus &corpus = sharedCorpus();
    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    AwgBuilder awg_builder(corpus, NameFilter({"*.sys"}));
    const AggregatedWaitGraph awg = awg_builder.aggregate(graphs);
    MiningOptions options;
    options.maxSegmentLength =
        static_cast<std::uint32_t>(state.range(0));
    ContrastMiner miner(corpus, options);
    for (auto _ : state) {
        const auto metas = miner.enumerateMetaPatterns(awg);
        benchmark::DoNotOptimize(metas.size());
    }
}
BENCHMARK(BM_MetaPatternEnumeration)
    ->Arg(1)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Unit(benchmark::kMillisecond);

void
BM_FullScenarioAnalysis(benchmark::State &state)
{
    const TraceCorpus &corpus = sharedCorpus();
    for (auto _ : state) {
        EagerSource analyzer_source(corpus);
        Analyzer analyzer(analyzer_source);
        const ScenarioAnalysis analysis = analyzer.analyzeScenario(
            "WebPageNavigation", fromMs(500), fromMs(1000));
        benchmark::DoNotOptimize(analysis.mining.patterns.size());
    }
}
BENCHMARK(BM_FullScenarioAnalysis)->Unit(benchmark::kMillisecond);

void
BM_SerializeCorpus(benchmark::State &state)
{
    const TraceCorpus &corpus = sharedCorpus();
    for (auto _ : state) {
        std::ostringstream buffer;
        writeCorpus(corpus, buffer);
        benchmark::DoNotOptimize(buffer.str().size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sharedCorpus().totalEvents()));
}
BENCHMARK(BM_SerializeCorpus)->Unit(benchmark::kMillisecond);

void
BM_DeserializeCorpus(benchmark::State &state)
{
    std::ostringstream buffer;
    writeCorpus(sharedCorpus(), buffer);
    const std::string bytes = buffer.str();
    for (auto _ : state) {
        std::istringstream in(bytes);
        TraceCorpus corpus = readCorpus(in);
        benchmark::DoNotOptimize(corpus.totalEvents());
    }
}
BENCHMARK(BM_DeserializeCorpus)->Unit(benchmark::kMillisecond);

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Best-of-@p reps cold build time: each repetition constructs the
 * builder afresh so the per-stream index work (pairing, per-thread
 * CSR/hash index) is inside the timed region, exactly what a new
 * analysis process pays per shard.
 */
template <typename BuildFn>
double
bestOfMs(int reps, BuildFn &&build)
{
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        build();
        const double ms = msSince(start);
        if (rep == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** Concatenated renderText of every graph: the byte-parity probe. */
std::string
renderAll(const std::vector<WaitGraph> &graphs,
          const TraceCorpus &corpus)
{
    const NameFilter components({"*.sys"});
    std::string out;
    for (const WaitGraph &graph : graphs)
        out += graph.renderText(corpus.symbols(), components);
    return out;
}

/**
 * The columnar-hot-core regression contract (docs/PERFORMANCE.md):
 * parity, thread-count byte-stability, and the >= kMinSpeedup per-shard
 * build speedup over the pre-refactor builder. Returns 0 on success.
 */
int
runWaitGraphContract()
{
    constexpr double kMinSpeedup = 2.0;
    constexpr int kReps = 5;

    // Dense shards: many concurrent instances per machine, so the
    // per-thread event lists reach the lengths real fleet shards have.
    CorpusSpec spec;
    spec.machines = 6;
    spec.minInstancesPerMachine = 80;
    spec.maxInstancesPerMachine = 120;
    spec.seed = 42;
    const TraceCorpus corpus = generateCorpus(spec);
    const auto legacy_streams = legacy::materializeStreams(corpus);

    std::cout << "== Wait-graph build contract (" << corpus.streamCount()
              << " shards, " << corpus.instances().size()
              << " instances, " << corpus.totalEvents()
              << " events, best of " << kReps << ") ==\n";

    // Parity first: every graph node-for-node identical to the legacy
    // construction.
    const std::vector<legacy::LegacyGraph> legacy_graphs =
        legacy::LegacyBuilder(corpus, legacy_streams).buildAll();
    const std::vector<WaitGraph> graphs =
        WaitGraphBuilder(corpus).buildAll();
    if (legacy_graphs.size() != graphs.size()) {
        std::cerr << "contract FAILED: graph count mismatch\n";
        return 1;
    }
    for (std::size_t i = 0; i < graphs.size(); ++i) {
        if (!legacy::graphsEqual(legacy_graphs[i], graphs[i])) {
            std::cerr << "contract FAILED: graph " << i
                      << " diverges from the legacy construction\n";
            return 1;
        }
    }

    // Byte-identical reports regardless of build thread count.
    const std::string report1 =
        renderAll(WaitGraphBuilder(corpus).buildAllParallel(1), corpus);
    const std::string report4 =
        renderAll(WaitGraphBuilder(corpus).buildAllParallel(4), corpus);
    const std::string report8 =
        renderAll(WaitGraphBuilder(corpus).buildAllParallel(8), corpus);
    if (report1 != report4 || report1 != report8) {
        std::cerr << "contract FAILED: rendered reports differ "
                     "across 1/4/8 build threads\n";
        return 1;
    }

    // Timed region: cold corpus-wide build (index construction
    // included), serial on both sides so the ratio isolates the data
    // layout, not the thread pool.
    const double legacy_ms = bestOfMs(kReps, [&] {
        legacy::LegacyBuilder builder(corpus, legacy_streams);
        const auto built = builder.buildAll();
        if (built.size() != graphs.size())
            std::abort();
    });
    const double columnar_ms = bestOfMs(kReps, [&] {
        WaitGraphBuilder builder(corpus);
        const auto built = builder.buildAll();
        if (built.size() != graphs.size())
            std::abort();
    });

    const double shards = static_cast<double>(corpus.streamCount());
    const double legacy_shard_ms = legacy_ms / shards;
    const double columnar_shard_ms = columnar_ms / shards;
    const double ratio =
        columnar_ms <= 0.0 ? 0.0 : legacy_ms / columnar_ms;

    std::cout << "legacy (pre-refactor):  " << legacy_ms << " ms total, "
              << legacy_shard_ms << " ms/shard\n"
              << "columnar (production):  " << columnar_ms
              << " ms total, " << columnar_shard_ms << " ms/shard\n"
              << "speedup: " << ratio << "x (contract: >= "
              << kMinSpeedup << "x)\n"
              << "BENCH_micro_waitgraph_speedup=" << ratio << "\n";

    {
        std::ofstream json("BENCH_micro.json");
        json << "{\n"
             << "  \"shards\": " << corpus.streamCount() << ",\n"
             << "  \"instances\": " << corpus.instances().size()
             << ",\n"
             << "  \"events\": " << corpus.totalEvents() << ",\n"
             << "  \"reps\": " << kReps << ",\n"
             << "  \"parity\": true,\n"
             << "  \"reports_byte_identical_1_4_8_threads\": true,\n"
             << "  \"legacy_build_ms\": " << legacy_ms << ",\n"
             << "  \"legacy_build_ms_per_shard\": " << legacy_shard_ms
             << ",\n"
             << "  \"columnar_build_ms\": " << columnar_ms << ",\n"
             << "  \"columnar_build_ms_per_shard\": "
             << columnar_shard_ms << ",\n"
             << "  \"waitgraph_build_speedup\": " << ratio << ",\n"
             << "  \"min_speedup_contract\": " << kMinSpeedup << "\n"
             << "}\n";
        std::cout << "wrote BENCH_micro.json\n";
    }

    if (ratio < kMinSpeedup) {
        std::cerr << "contract FAILED: speedup " << ratio
                  << "x below the " << kMinSpeedup << "x floor\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const int contract = runWaitGraphContract();
    if (contract != 0)
        return contract;

    bool contract_only = false;
    std::vector<char *> bench_args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--contract-only") == 0)
            contract_only = true;
        else
            bench_args.push_back(argv[i]);
    }
    if (contract_only)
        return 0;

    int bench_argc = static_cast<int>(bench_args.size());
    benchmark::Initialize(&bench_argc, bench_args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
