/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. Segment bound k (paper uses 5): sweep k = 1..7 and report
 *     meta-pattern counts, discovered patterns, coverage, and time.
 *  2. ReduceAWG on/off: graph size and pattern-count effect of
 *     removing non-optimizable hardware structures.
 *  3. Meta-pattern gate on/off: how much the contrast gate narrows the
 *     full-path pattern set versus emitting every slow path.
 *
 * Usage: bench_ablation [machines] [seed]
 */

#include <chrono>
#include <set>
#include <cstdlib>
#include <iostream>

#include "src/core/analyzer.h"
#include "src/workload/motivating.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

namespace
{

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tracelens;

    CorpusSpec spec;
    spec.machines = argc > 1 ? static_cast<std::uint32_t>(
                                   std::atoi(argv[1]))
                             : 120;
    if (argc > 2)
        spec.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    spec.onlyScenarios = {"BrowserTabCreate"};

    const TraceCorpus corpus = generateCorpus(spec);
    const ScenarioSpec &scn = scenarioByName("BrowserTabCreate");

    std::cout << "== Ablation 1: segment bound k ==\n";
    {
        TextTable table({"k", "metas(slow)", "contrasts", "#patterns",
                         "TTC", "mine-ms"});
        for (std::uint32_t k = 1; k <= 7; ++k) {
            AnalyzerConfig config;
            config.maxSegmentLength = k;
            EagerSource analyzer_source(corpus);
            Analyzer analyzer(analyzer_source, config);
            const auto start = std::chrono::steady_clock::now();
            const ScenarioAnalysis analysis = analyzer.analyzeScenario(
                scn.name, scn.tFast, scn.tSlow);
            const double elapsed = millisSince(start);
            table.addRow(
                {std::to_string(k),
                 std::to_string(analysis.mining.stats.slowMetaPatterns),
                 std::to_string(
                     analysis.mining.stats.slowOnlyContrasts +
                     analysis.mining.stats.ratioContrasts),
                 std::to_string(analysis.mining.patterns.size()),
                 TextTable::pct(analysis.coverage.ttc()),
                 TextTable::num(elapsed, 1)});
        }
        std::cout << table.render()
                  << "(expect pattern discovery to saturate at small k "
                     "while cost grows)\n\n";
    }

    std::cout << "== Ablation 2: non-optimizable reduction ==\n";
    {
        TextTable table({"ReduceAWG", "reduced-ms", "roots", "#patterns",
                         "TTC"});
        for (bool reduce : {true, false}) {
            AnalyzerConfig config;
            config.awg.reduceNonOptimizable = reduce;
            EagerSource analyzer_source(corpus);
            Analyzer analyzer(analyzer_source, config);
            const ScenarioAnalysis analysis = analyzer.analyzeScenario(
                scn.name, scn.tFast, scn.tSlow);
            table.addRow(
                {reduce ? "on" : "off",
                 TextTable::num(toMs(analysis.awgSlow.reducedCost()), 1),
                 std::to_string(analysis.awgSlow.roots().size()),
                 std::to_string(analysis.mining.patterns.size()),
                 TextTable::pct(analysis.coverage.ttc())});
        }
        std::cout << table.render()
                  << "(off keeps pure-hardware structures that "
                     "developers cannot optimize)\n\n";
    }

    std::cout << "== Ablation 3: meta-pattern contrast gate ==\n";
    {
        TextTable table({"gate", "#patterns", "selected/full paths"});
        for (bool gate : {true, false}) {
            AnalyzerConfig config;
            config.useMetaPatternGate = gate;
            EagerSource analyzer_source(corpus);
            Analyzer analyzer(analyzer_source, config);
            const ScenarioAnalysis analysis = analyzer.analyzeScenario(
                scn.name, scn.tFast, scn.tSlow);
            table.addRow(
                {gate ? "on" : "off",
                 std::to_string(analysis.mining.patterns.size()),
                 std::to_string(analysis.mining.stats.selectedPaths) +
                     "/" +
                     std::to_string(analysis.mining.stats.fullPaths)});
        }
        std::cout << table.render()
                  << "(the gate excludes non-contrast paths, the "
                     "paper's third enumeration rationale)\n";
    }

    std::cout << "\n== Ablation 5: wait-graph child semantics "
                 "(overlap vs containment) ==\n";
    {
        // On the deterministic Figure-1 incident: containment-only
        // semantics sever the lock-queue chain entirely.
        TraceCorpus fig1;
        buildMotivatingExample(fig1);
        TextTable table({"semantics", "graph nodes", "drivers on "
                                                     "chain"});
        for (bool containment : {false, true}) {
            WaitGraphOptions options;
            options.containmentOnly = containment;
            WaitGraphBuilder builder(fig1, options);
            const WaitGraph graph =
                builder.build(fig1.instances()[0]);
            std::set<std::string> modules;
            NameFilter drivers({"*.sys"});
            for (const auto &node : graph.nodes()) {
                if (node.event.stack == kNoCallstack)
                    continue;
                const FrameId top = fig1.symbols().topMatchingFrame(
                    node.event.stack, drivers);
                if (top != kNoFrame)
                    modules.insert(
                        fig1.symbols().componentName(top));
            }
            table.addRow({containment ? "containment" : "overlap",
                          std::to_string(graph.size()),
                          std::to_string(modules.size())});
        }
        std::cout << table.render()
                  << "(containment loses the fv->fs->se chain: lock-"
                     "queue waits start before their parent's wait)\n";
    }

    std::cout << "\n== Ablation 6: window-clipped cost attribution "
                 "==\n";
    {
        TextTable table({"clipping", "sum of graph costs",
                         "sum of instance durations"});
        for (bool clip : {true, false}) {
            WaitGraphOptions options;
            options.clipToWindows = clip;
            WaitGraphBuilder builder(corpus, options);
            const auto graphs = builder.buildAll();
            DurationNs graph_cost = 0, durations = 0;
            for (const WaitGraph &g : graphs) {
                for (const auto &node : g.nodes())
                    graph_cost += node.event.cost;
                durations += g.instance().duration();
            }
            table.addRow({clip ? "on" : "off",
                          TextTable::num(toMs(graph_cost), 0) + "ms",
                          TextTable::num(toMs(durations), 0) + "ms"});
        }
        std::cout << table.render()
                  << "(unclipped, lock-queue tails attribute seconds "
                     "of unrelated history to short waits)\n";
    }

    std::cout << "\n== Ablation 4: inner irrelevant-node elimination "
                 "==\n";
    {
        TextTable table({"inner-elim", "AWG nodes", "#patterns"});
        for (bool inner : {true, false}) {
            AnalyzerConfig config;
            config.awg.eliminateInnerIrrelevant = inner;
            EagerSource analyzer_source(corpus);
            Analyzer analyzer(analyzer_source, config);
            const ScenarioAnalysis analysis = analyzer.analyzeScenario(
                scn.name, scn.tFast, scn.tSlow);
            table.addRow(
                {inner ? "on" : "off",
                 std::to_string(analysis.awgSlow.nodes().size()),
                 std::to_string(analysis.mining.patterns.size())});
        }
        std::cout << table.render()
                  << "(keeping kernel-only hops inflates the graph "
                     "with <other> signatures)\n";
    }
    return 0;
}
