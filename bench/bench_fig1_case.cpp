/**
 * @file
 * Figure 1 reproduction: the motivating BrowserTabCreate incident —
 * six threads, three drivers, two lock-contention regions connected by
 * hierarchical dependencies, propagating a disk+decrypt delay to the
 * browser UI thread.
 *
 * The bench rebuilds the incident deterministically, prints the
 * thread-level event snapshot, walks the UI instance's Wait Graph
 * along the propagation chain (the paper's arrows (1)-(6)), and mines
 * the Signature Set Tuple the paper quotes in Section 2.3.
 */

#include <iostream>

#include "src/core/analyzer.h"
#include "src/simkernel/kernel.h"
#include "src/trace/serialize.h"
#include "src/workload/motivating.h"

int
main()
{
    using namespace tracelens;

    std::cout << "== Figure 1: cost propagation across fv.sys / fs.sys "
                 "/ se.sys ==\n\n";

    TraceCorpus corpus;
    const CaseHandles handles = buildMotivatingExample(corpus);
    const ScenarioInstance &instance =
        corpus.instances()[handles.instance];

    std::cout << "scenario " << corpus.scenarioName(instance.scenario)
              << " instance on thread " << instance.tid << " took "
              << toMs(instance.duration())
              << "ms (paper: over 800ms)\n\n";

    std::cout << "--- trace snapshot ---\n"
              << dumpStream(corpus, handles.stream, 60) << "\n";

    // Walk the propagation chain in the UI instance's wait graph.
    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(instance);
    const SymbolTable &sym = corpus.symbols();
    NameFilter drivers({"*.sys"});

    std::cout << "--- propagation chain (from the UI thread's wait) "
                 "---\n";
    std::uint32_t current = kInvalidIndex;
    for (std::uint32_t root : graph.roots()) {
        if (graph.node(root).event.type == EventType::Wait) {
            current = root;
            break;
        }
    }
    int hop = 0;
    while (current != kInvalidIndex) {
        const WaitGraph::Node &node = graph.node(current);
        const Event &e = node.event;
        std::cout << "  hop " << hop++ << ": "
                  << eventTypeName(e.type) << " tid=" << e.tid
                  << " cost=" << toMs(e.cost) << "ms";
        if (e.stack != kNoCallstack) {
            const FrameId top = sym.topMatchingFrame(e.stack, drivers);
            if (top != kNoFrame)
                std::cout << " sig=" << sym.frameName(top);
        }
        std::cout << "\n";
        // Follow the heaviest child (the dominant propagation edge).
        std::uint32_t next = kInvalidIndex;
        DurationNs best = -1;
        for (std::uint32_t child : graph.children(node)) {
            if (graph.node(child).event.cost > best) {
                best = graph.node(child).event.cost;
                next = child;
            }
        }
        current = next;
    }

    // Mine the pattern against a trivially fast instance.
    {
        SimKernel sim(corpus, "fast-machine");
        const auto scn = sim.scenario("BrowserTabCreate");
        sim.spawnThread({actPush(sim.frame("browser.exe!TabCreate")),
                         actBeginInstance(scn), actCompute(fromMs(40)),
                         actEndInstance(), actPop()});
        sim.run();
    }
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);
    const ScenarioAnalysis analysis = analyzer.analyzeScenario(
        "BrowserTabCreate", fromMs(300), fromMs(500));

    std::cout << "\n--- top mined contrast pattern (paper Section 2.3) "
                 "---\n";
    if (analysis.mining.patterns.empty()) {
        std::cout << "no patterns (unexpected)\n";
        return 1;
    }
    const ContrastPattern &top = analysis.mining.patterns[0];
    std::cout << top.tuple.render(sym);
    std::cout << "impact (P.C/P.N) = "
              << toMs(static_cast<DurationNs>(top.impact()))
              << "ms, high-impact (one execution > T_slow): "
              << (top.highImpact(fromMs(500)) ? "yes" : "no") << "\n";
    std::cout << "\n(paper pattern: waits {fv.sys!QueryFileTable, "
                 "fs.sys!AcquireMDU}, unwaits {fv.sys!QueryFileTable, "
                 "fs.sys!AcquireMDU}, runnings {se.sys!ReadDecrypt, "
                 "DiskService})\n";
    return 0;
}
