/**
 * @file
 * Section 5.1 reproduction: corpus-wide impact analysis of device
 * drivers.
 *
 * Paper (19,500 real traces): IA_wait = 36.4 %, IA_run = 1.6 %,
 * IA_opt = 26 %, D_wait/D_waitdist = 3.5.
 *
 * Usage: bench_impact_headline [machines] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "src/core/analyzer.h"
#include "src/trace/validate.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

int
main(int argc, char **argv)
{
    using namespace tracelens;

    CorpusSpec spec;
    spec.machines = argc > 1 ? static_cast<std::uint32_t>(
                                   std::atoi(argv[1]))
                             : 400;
    if (argc > 2)
        spec.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "== Section 5.1: impact analysis of device drivers ==\n";
    std::cout << "generating corpus: " << spec.machines
              << " machines (seed " << spec.seed << ")...\n";
    const TraceCorpus corpus = generateCorpus(spec);

    const ValidationReport validation = validateCorpus(corpus);
    std::cout << "corpus: " << corpus.streamCount() << " streams, "
              << corpus.instances().size() << " scenario instances, "
              << corpus.totalEvents() << " events\n";
    std::cout << "validation: " << validation.render() << "\n\n";

    EagerSource analyzer_source(corpus);

    Analyzer analyzer(analyzer_source);
    const ImpactResult impact = analyzer.impactAll();

    TextTable table({"Metric", "Paper", "Measured"});
    table.addRow({"IA_wait", "36.4%", TextTable::pct(impact.iaWait())});
    table.addRow({"IA_run", "1.6%", TextTable::pct(impact.iaRun())});
    table.addRow({"IA_opt", "26.0%", TextTable::pct(impact.iaOpt())});
    table.addRow({"Dwait/Dwaitdist", "3.5",
                  TextTable::num(impact.waitAmplification(), 2)});
    std::cout << table.render() << "\n";

    std::cout << "raw: D_scn=" << toMs(impact.dScn)
              << "ms D_wait=" << toMs(impact.dWait)
              << "ms D_run=" << toMs(impact.dRun)
              << "ms D_waitdist=" << toMs(impact.dWaitDist) << "ms\n";
    return 0;
}
