/**
 * @file
 * Table 3 reproduction: number of discovered contrast patterns per
 * scenario and the execution-time coverage of the top 10 % / 20 % /
 * 30 % patterns under the impact ranking.
 *
 * Paper averages: 2,822 patterns; top 10 % covers 47.9 %, top 20 %
 * covers 80.1 %, top 30 % covers 95.9 % — i.e. inspecting a small
 * ranked prefix covers most of the pattern time.
 *
 * Usage: bench_table3_ranking [machines] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "src/core/analyzer.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

int
main(int argc, char **argv)
{
    using namespace tracelens;

    CorpusSpec spec;
    spec.machines = argc > 1 ? static_cast<std::uint32_t>(
                                   std::atoi(argv[1]))
                             : 250;
    if (argc > 2)
        spec.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "== Table 3: coverages by ranking ==\n";
    const TraceCorpus corpus = generateCorpus(spec);
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);

    TextTable table({"Scenario", "#Patterns", "10%", "20%", "30%"});
    double c10 = 0, c20 = 0, c30 = 0;
    std::size_t patterns = 0;
    int rows = 0;
    for (const ScenarioSpec &scn : scenarioCatalog()) {
        if (!scn.selected)
            continue;
        const ScenarioAnalysis analysis = analyzer.analyzeScenario(
            scn.name, scn.tFast, scn.tSlow);
        const double p10 = topPatternCoverage(analysis.mining, 0.10);
        const double p20 = topPatternCoverage(analysis.mining, 0.20);
        const double p30 = topPatternCoverage(analysis.mining, 0.30);
        table.addRow({scn.name,
                      std::to_string(analysis.mining.patterns.size()),
                      TextTable::pct(p10), TextTable::pct(p20),
                      TextTable::pct(p30)});
        c10 += p10;
        c20 += p20;
        c30 += p30;
        patterns += analysis.mining.patterns.size();
        ++rows;
    }
    if (rows > 0) {
        table.addRow({"Average",
                      std::to_string(patterns / static_cast<std::size_t>(
                                         rows)),
                      TextTable::pct(c10 / rows),
                      TextTable::pct(c20 / rows),
                      TextTable::pct(c30 / rows)});
    }
    std::cout << table.render();
    std::cout << "\n(paper averages: 2822 patterns; 47.9% / 80.1% / "
                 "95.9%; expect steeply concentrated coverage)\n";
    return 0;
}
