/**
 * @file
 * Table 4 reproduction: driver types involved in the top-10 contrast
 * patterns of each scenario.
 *
 * Paper shape: file-system + filter drivers appear in most patterns
 * everywhere; network drivers dominate MenuDisplay (7/10); storage
 * encryption shows up with filter drivers; graphics appears in
 * AppNonResponsive (hard-fault case).
 *
 * Usage: bench_table4_drivertypes [machines] [seed]
 */

#include <array>
#include <cstdlib>
#include <iostream>

#include "src/core/analyzer.h"
#include "src/util/table.h"
#include "src/workload/driverzoo.h"
#include "src/workload/generator.h"

namespace
{

/** Count of top-N patterns per driver type for one scenario. */
std::array<int, tracelens::kDriverTypeCount>
countDriverTypes(const tracelens::TraceCorpus &corpus,
                 const tracelens::MiningResult &mining, std::size_t top_n)
{
    using namespace tracelens;
    std::array<int, kDriverTypeCount> counts{};
    const SymbolTable &sym = corpus.symbols();
    const std::size_t n = std::min(top_n, mining.patterns.size());
    for (std::size_t i = 0; i < n; ++i) {
        const SignatureSetTuple &tuple = mining.patterns[i].tuple;
        std::array<bool, kDriverTypeCount> seen{};
        auto scan = [&](const std::vector<FrameId> &frames) {
            for (FrameId f : frames) {
                if (f == kNoFrame)
                    continue;
                const auto type = classifySignature(sym.frameName(f));
                if (type)
                    seen[static_cast<std::size_t>(*type)] = true;
            }
        };
        scan(tuple.waits);
        scan(tuple.unwaits);
        scan(tuple.runnings);
        for (std::size_t t = 0; t < kDriverTypeCount; ++t)
            counts[t] += seen[t];
    }
    return counts;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tracelens;

    CorpusSpec spec;
    spec.machines = argc > 1 ? static_cast<std::uint32_t>(
                                   std::atoi(argv[1]))
                             : 250;
    if (argc > 2)
        spec.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "== Table 4: top-10 patterns categorized by driver "
                 "types ==\n";
    const TraceCorpus corpus = generateCorpus(spec);
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);

    std::vector<std::string> headers = {"Scenario"};
    for (DriverType type : allDriverTypes())
        headers.emplace_back(driverTypeName(type));
    TextTable table(std::move(headers));

    for (const ScenarioSpec &scn : scenarioCatalog()) {
        if (!scn.selected)
            continue;
        const ScenarioAnalysis analysis = analyzer.analyzeScenario(
            scn.name, scn.tFast, scn.tSlow);
        const auto counts =
            countDriverTypes(corpus, analysis.mining, 10);
        std::vector<std::string> row = {scn.name};
        for (int c : counts)
            row.push_back(c == 0 ? "-" : std::to_string(c));
        table.addRow(std::move(row));
    }
    std::cout << table.render();
    std::cout << "\n(paper shape: FS+filter drivers near-ubiquitous; "
                 "network dominates MenuDisplay; graphics appears in "
                 "AppNonResponsive via the hard-fault chain)\n";
    return 0;
}
