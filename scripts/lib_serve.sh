# Shared helper for the end-to-end smoke scripts: start `tracelens
# serve` daemons on ephemeral ports (--listen 127.0.0.1:0) and discover
# each port through --port-file, so smoke scripts running under
# `ctest -j` can never collide on a fixed port.
#
# Usage (after setting CLI and WORK, with `set -euo pipefail`):
#
#   . "$(dirname "${BASH_SOURCE[0]}")/lib_serve.sh"
#   tl_start_daemon w1 --workers 2        # extra `serve` flags verbatim
#   "$CLI" query health --connect "$w1_ADDR"
#   tl_stop_daemon w1
#
# tl_start_daemon NAME [serve flags...] exports NAME_PID, NAME_PORT,
# NAME_ADDR and NAME_LOG, and registers the daemon so
# tl_stop_all_daemons (call it from your EXIT trap) reaps strays.

TL_DAEMON_PIDS=()

tl_start_daemon() {
    local name="$1"
    shift
    local log="$WORK/$name.log" portfile="$WORK/$name.port"
    rm -f "$portfile"
    "$CLI" serve --listen 127.0.0.1:0 --port-file "$portfile" "$@" \
        >"$log" 2>&1 &
    local pid=$!
    local _tick
    for _tick in $(seq 1 100); do
        [[ -s "$portfile" ]] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "lib_serve: daemon '$name' died on startup:" >&2
            cat "$log" >&2
            return 1
        fi
        sleep 0.1
    done
    if [[ ! -s "$portfile" ]]; then
        echo "lib_serve: daemon '$name' never wrote its port file" >&2
        return 1
    fi
    local port
    port="$(cat "$portfile")"
    printf -v "${name}_PID" '%s' "$pid"
    printf -v "${name}_PORT" '%s' "$port"
    printf -v "${name}_ADDR" '%s' "127.0.0.1:$port"
    printf -v "${name}_LOG" '%s' "$log"
    TL_DAEMON_PIDS+=("$pid")
}

# Stop one daemon by name (SIGTERM + reap); tolerates already-dead.
tl_stop_daemon() {
    local pidvar="${1}_PID" pid
    pid="${!pidvar:-}"
    [[ -n "$pid" ]] || return 0
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    printf -v "$pidvar" '%s' ""
}

# Reap every daemon this script started (for the EXIT trap).
tl_stop_all_daemons() {
    local pid
    for pid in ${TL_DAEMON_PIDS[@]+"${TL_DAEMON_PIDS[@]}"}; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    TL_DAEMON_PIDS=()
}
