#!/usr/bin/env bash
# Formatting guardrail: clang-format --dry-run --Werror over every C++
# file under src/, tests/, bench/ and tools/, against the committed
# .clang-format. Skips with exit 0 where clang-format is not installed
# (minimal build containers), so the check is enforced exactly where
# the tool exists.
#
# Usage: check_format.sh /path/to/repo
set -euo pipefail

ROOT="${1:?usage: check_format.sh /path/to/repo}"
cd "$ROOT"

if ! command -v clang-format >/dev/null 2>&1; then
    echo "check_format: clang-format not installed; skipping"
    exit 0
fi

mapfile -t files < <(find src tests bench tools \
    \( -name '*.cpp' -o -name '*.h' \) -type f | sort)
[[ ${#files[@]} -gt 0 ]] || { echo "check_format: no files"; exit 1; }

clang-format --dry-run --Werror "${files[@]}"
echo "check_format: OK (${#files[@]} files)"
