#!/usr/bin/env bash
# Multi-process smoke test of cluster mode (docs/SERVER.md): two
# worker daemons, one coordinator, and one single-node daemon over a
# real sharded corpus, all as separate OS processes talking TCP.
# Verifies
#   - coordinator analyze/mine/impact are byte-identical to the
#     single-node answers over the same corpus,
#   - `tracelens cluster-status` reports a healthy fleet (exit 0),
#   - a server error response makes `tracelens query` exit nonzero,
#   - killing one worker mid-session degrades to a replica retry with
#     a still byte-identical answer,
#   - killing the whole fleet degrades to a structured
#     "partial_results" response instead of a hang, and
#     cluster-status then exits nonzero.
#
# Usage: smoke_cluster.sh /path/to/tracelens
set -euo pipefail

CLI="${1:?usage: smoke_cluster.sh /path/to/tracelens}"

# Ephemeral-port daemon management (shared with smoke_server.sh).
. "$(dirname "${BASH_SOURCE[0]}")/lib_serve.sh"

WORK="$(mktemp -d "${TMPDIR:-/tmp}/tracelens_cluster.XXXXXX")"
cleanup() {
    tl_stop_all_daemons
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "smoke_cluster: FAIL: $*" >&2; exit 1; }

"$CLI" generate --out "$WORK/corpus" --machines 12 --seed 7171 \
    --shards 4 >/dev/null 2>&1 || fail "corpus generation"

tl_start_daemon w1 --log-level warn || fail "worker 1 startup"
tl_start_daemon w2 --log-level warn || fail "worker 2 startup"
tl_start_daemon coord --coordinator \
    --cluster-workers "$w1_ADDR,$w2_ADDR" --shard-deadline-ms 5000 \
    --log-level warn || fail "coordinator startup"
tl_start_daemon single --log-level warn || fail "single-node startup"

ANALYZE="{\"corpus\":\"$WORK/corpus\",\"scenario\":\"BrowserTabCreate\"}"
MINE="$ANALYZE"
IMPACT="{\"corpus\":\"$WORK/corpus\"}"

# The healthy fleet answers cluster-status with exit 0.
"$CLI" cluster-status --connect "$coord_ADDR" >/dev/null \
    || fail "cluster-status on a healthy fleet"

# Scatter/gather must be invisible in the payload: every report the
# coordinator merges from per-shard partials is byte-identical to the
# single-node answer over the same corpus.
for method in analyze mine impact; do
    params="$ANALYZE"
    [[ "$method" == impact ]] && params="$IMPACT"
    COORD_OUT="$("$CLI" query "$method" --connect "$coord_ADDR" \
        --params "$params")" || fail "$method via coordinator"
    SINGLE_OUT="$("$CLI" query "$method" --connect "$single_ADDR" \
        --params "$params")" || fail "$method via single node"
    [[ "$COORD_OUT" == "$SINGLE_OUT" ]] \
        || fail "$method: coordinator differs from single-node"
    echo "$COORD_OUT" | grep -q '"partial_results"' \
        && fail "$method: full gather must not carry partial_results"
done

# A server error response (scenario absent everywhere) must exit
# nonzero from both roles.
if "$CLI" query analyze --connect "$coord_ADDR" \
    --params "{\"corpus\":\"$WORK/corpus\",\"scenario\":\"NoSuchScenario\",\"tfast_ms\":100,\"tslow_ms\":500}" \
    >/dev/null 2>&1; then
    fail "coordinator error response should exit nonzero"
fi
if "$CLI" query analyze --connect "$single_ADDR" \
    --params "{\"corpus\":\"$WORK/corpus\",\"scenario\":\"NoSuchScenario\",\"tfast_ms\":100,\"tslow_ms\":500}" \
    >/dev/null 2>&1; then
    fail "single-node error response should exit nonzero"
fi

BASELINE="$("$CLI" query analyze --connect "$coord_ADDR" \
    --params "$ANALYZE")" || fail "baseline analyze"

# Kill one worker: its shards must be retried on the replica and the
# answer must not change by a byte.
tl_stop_daemon w1
RETRIED="$("$CLI" query analyze --connect "$coord_ADDR" \
    --params "$ANALYZE")" || fail "analyze after killing worker 1"
[[ "$RETRIED" == "$BASELINE" ]] \
    || fail "retried answer differs from baseline"

# Kill the other worker too: no owner, no replica. The query must
# come back inside the deadline as a structured degraded response,
# never a hang or a corrupt merge.
tl_stop_daemon w2
DEGRADED="$("$CLI" query analyze --connect "$coord_ADDR" \
    --deadline-ms 30000 --params "$ANALYZE")" \
    || fail "degraded analyze should still answer ok"
echo "$DEGRADED" | grep -q '"partial_results":true' \
    || fail "degraded answer must carry partial_results:true"
echo "$DEGRADED" | grep -q '"missing_shards"' \
    || fail "degraded answer must list missing shards"

# And cluster-status now reports the outage with a nonzero exit.
if "$CLI" cluster-status --connect "$coord_ADDR" >/dev/null 2>&1; then
    fail "cluster-status should exit nonzero with workers down"
fi

echo "smoke_cluster: OK (coordinator port $coord_PORT)"
