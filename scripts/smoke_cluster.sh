#!/usr/bin/env bash
# Multi-process smoke test of cluster mode (docs/SERVER.md): two
# worker daemons, one coordinator, and one single-node daemon over a
# real sharded corpus, all as separate OS processes talking TCP.
# Verifies
#   - coordinator analyze/mine/impact are byte-identical to the
#     single-node answers over the same corpus,
#   - `tracelens cluster-status` reports a healthy fleet (exit 0),
#   - the coordinator's --metrics-listen endpoint serves Prometheus
#     text exposition format over plain HTTP,
#   - `tracelens cluster-trace` stitches one request's spans across
#     the coordinator and both workers under a single trace id
#     (docs/TELEMETRY.md), with resolvable cross-node parent edges,
#   - a server error response makes `tracelens query` exit nonzero,
#   - killing one worker mid-session degrades to a replica retry with
#     a still byte-identical answer,
#   - killing the whole fleet degrades to a structured
#     "partial_results" response instead of a hang, and
#     cluster-status then exits nonzero,
#   - the coordinator's --self-trace-corpus drain output is a valid
#     TLC1 corpus that `tracelens analyze` accepts (the self-analysis
#     loop: tracelens analyzing tracelens).
#
# Usage: smoke_cluster.sh /path/to/tracelens
set -euo pipefail

CLI="${1:?usage: smoke_cluster.sh /path/to/tracelens}"

# Ephemeral-port daemon management (shared with smoke_server.sh).
. "$(dirname "${BASH_SOURCE[0]}")/lib_serve.sh"

WORK="$(mktemp -d "${TMPDIR:-/tmp}/tracelens_cluster.XXXXXX")"
cleanup() {
    tl_stop_all_daemons
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "smoke_cluster: FAIL: $*" >&2; exit 1; }

# 16 shards, not 4: consistent hashing owes no fairness, and with 4
# shards one worker ends up owning all of them often enough to make
# the stitched-trace check below (spans on BOTH workers) flaky.
"$CLI" generate --out "$WORK/corpus" --machines 12 --seed 7171 \
    --shards 16 >/dev/null 2>&1 || fail "corpus generation"

# --self-trace-corpus turns span recording on in every fleet member,
# so the stitched cluster-trace below actually has spans to stitch and
# the coordinator leaves a TLC1 corpus behind for the self-analysis
# check at the end.
tl_start_daemon w1 --log-level warn \
    --self-trace-corpus "$WORK/st_w1" || fail "worker 1 startup"
tl_start_daemon w2 --log-level warn \
    --self-trace-corpus "$WORK/st_w2" || fail "worker 2 startup"
tl_start_daemon coord --coordinator \
    --cluster-workers "$w1_ADDR,$w2_ADDR" --shard-deadline-ms 5000 \
    --metrics-listen 127.0.0.1:0 \
    --metrics-port-file "$WORK/coord.metricsport" \
    --self-trace-corpus "$WORK/st_coord" \
    --log-level warn || fail "coordinator startup"
tl_start_daemon single --log-level warn || fail "single-node startup"

ANALYZE="{\"corpus\":\"$WORK/corpus\",\"scenario\":\"BrowserTabCreate\"}"
MINE="$ANALYZE"
IMPACT="{\"corpus\":\"$WORK/corpus\"}"

# The healthy fleet answers cluster-status with exit 0.
"$CLI" cluster-status --connect "$coord_ADDR" >/dev/null \
    || fail "cluster-status on a healthy fleet"

# Scatter/gather must be invisible in the payload: every report the
# coordinator merges from per-shard partials is byte-identical to the
# single-node answer over the same corpus.
for method in analyze mine impact; do
    params="$ANALYZE"
    [[ "$method" == impact ]] && params="$IMPACT"
    COORD_OUT="$("$CLI" query "$method" --connect "$coord_ADDR" \
        --params "$params")" || fail "$method via coordinator"
    SINGLE_OUT="$("$CLI" query "$method" --connect "$single_ADDR" \
        --params "$params")" || fail "$method via single node"
    [[ "$COORD_OUT" == "$SINGLE_OUT" ]] \
        || fail "$method: coordinator differs from single-node"
    echo "$COORD_OUT" | grep -q '"partial_results"' \
        && fail "$method: full gather must not carry partial_results"
done

# The metrics endpoint speaks Prometheus text exposition format over
# plain HTTP: TYPE headers for the request counter and summary
# quantiles for the latency histogram.
METRICS_PORT="$(cat "$WORK/coord.metricsport")"
[[ -n "$METRICS_PORT" ]] || fail "coordinator never wrote its metrics port"
EXPO="$(curl -sf --max-time 10 "http://127.0.0.1:$METRICS_PORT/metrics")" \
    || fail "curl of the metrics endpoint"
echo "$EXPO" | grep -q '^# TYPE tracelens_server_requests counter$' \
    || fail "exposition lacks the requests counter TYPE header"
echo "$EXPO" | grep -q 'quantile="0.99"' \
    || fail "exposition lacks summary quantiles"

# cluster-status --metrics merges worker registries into one snapshot.
"$CLI" cluster-status --connect "$coord_ADDR" --metrics >/dev/null \
    || fail "cluster-status --metrics"

# The flight recorder answers over the wire with its bounded ring.
"$CLI" query flight_recorder --connect "$coord_ADDR" \
    | grep -q '"total"' || fail "flight_recorder query"

# One request, one trace: the analyze queries above all rooted fresh
# trace ids at the CLI. The stitched cluster-trace must be valid
# Chrome JSON in which at least one trace id crosses the coordinator
# and both workers (three distinct pids) with cross-node parent edges
# that resolve to a span on another node.
"$CLI" cluster-trace --connect "$coord_ADDR" \
    --out "$WORK/stitched.json" >/dev/null \
    || fail "cluster-trace while the fleet is healthy"
python3 - "$WORK/stitched.json" <<'PYEOF' || fail "stitched trace validation"
import json, sys, collections

doc = json.load(open(sys.argv[1]))
events = doc if isinstance(doc, list) else doc.get("traceEvents", [])
meta = [e for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"]
assert len(meta) >= 3, "want process_name metadata for all 3 nodes"
spans = [e for e in events if e.get("ph") == "X"]
assert len({e["pid"] for e in spans}) >= 3, "want spans from 3 nodes"

by_trace = collections.defaultdict(list)
for e in spans:
    args = e.get("args", {})
    if args.get("trace_id"):
        by_trace[args["trace_id"]].append(e)
wide = [t for t, es in by_trace.items()
        if len({e["pid"] for e in es}) >= 3]
assert wide, "no single trace id crosses coordinator and both workers"

# Cross-node parent edges resolve: some span's parent_span_id names a
# span that lives on a different pid in the same trace.
for trace_id in wide:
    owner = {e["args"]["span_id"]: e["pid"] for e in by_trace[trace_id]}
    if any(e["args"].get("parent_span_id") in owner
           and owner[e["args"]["parent_span_id"]] != e["pid"]
           for e in by_trace[trace_id]):
        break
else:
    raise AssertionError("no resolvable cross-node parent edge")
PYEOF

# A server error response (scenario absent everywhere) must exit
# nonzero from both roles.
if "$CLI" query analyze --connect "$coord_ADDR" \
    --params "{\"corpus\":\"$WORK/corpus\",\"scenario\":\"NoSuchScenario\",\"tfast_ms\":100,\"tslow_ms\":500}" \
    >/dev/null 2>&1; then
    fail "coordinator error response should exit nonzero"
fi
if "$CLI" query analyze --connect "$single_ADDR" \
    --params "{\"corpus\":\"$WORK/corpus\",\"scenario\":\"NoSuchScenario\",\"tfast_ms\":100,\"tslow_ms\":500}" \
    >/dev/null 2>&1; then
    fail "single-node error response should exit nonzero"
fi

BASELINE="$("$CLI" query analyze --connect "$coord_ADDR" \
    --params "$ANALYZE")" || fail "baseline analyze"

# Kill one worker: its shards must be retried on the replica and the
# answer must not change by a byte.
tl_stop_daemon w1
RETRIED="$("$CLI" query analyze --connect "$coord_ADDR" \
    --params "$ANALYZE")" || fail "analyze after killing worker 1"
[[ "$RETRIED" == "$BASELINE" ]] \
    || fail "retried answer differs from baseline"

# Kill the other worker too: no owner, no replica. The query must
# come back inside the deadline as a structured degraded response,
# never a hang or a corrupt merge.
tl_stop_daemon w2
DEGRADED="$("$CLI" query analyze --connect "$coord_ADDR" \
    --deadline-ms 30000 --params "$ANALYZE")" \
    || fail "degraded analyze should still answer ok"
echo "$DEGRADED" | grep -q '"partial_results":true' \
    || fail "degraded answer must carry partial_results:true"
echo "$DEGRADED" | grep -q '"missing_shards"' \
    || fail "degraded answer must list missing shards"

# And cluster-status now reports the outage with a nonzero exit.
if "$CLI" cluster-status --connect "$coord_ADDR" >/dev/null 2>&1; then
    fail "cluster-status should exit nonzero with workers down"
fi

# Self-analysis loop: a graceful coordinator stop drains its span
# buffer into a TLC1 corpus, and that corpus is a first-class input to
# the analyzer — every "server.request" span became a
# "request:<method>" scenario instance.
tl_stop_daemon coord
[[ -s "$WORK/st_coord/self-trace.tlc" ]] \
    || fail "coordinator left no self-trace corpus behind"
"$CLI" analyze "$WORK/st_coord/self-trace.tlc" \
    --scenario "request:analyze" --tfast 0.01 --tslow 60000 \
    >/dev/null || fail "analyze over the self-trace corpus"

echo "smoke_cluster: OK (coordinator port $coord_PORT)"
