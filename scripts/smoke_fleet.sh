#!/usr/bin/env bash
# End-to-end smoke test of continuous fleet mode: start the real
# daemon in --watch mode, drip-feed shards into its spool with the
# real generator, and assert the three contracts that matter:
#
#  1. The rolling window summary is byte-identical to a cold batch
#     `analyze` over the same shard files.
#  2. `ingest_push` lands shards in the spool via rename-into-place
#     and the warm session absorbs them (still byte-identical after).
#  3. An injected regression cohort produces a sentinel alert end to
#     end: on the `alerts` method and in the --alerts-out JSONL sink.
#
# Usage: smoke_fleet.sh /path/to/tracelens
set -euo pipefail

CLI="${1:?usage: smoke_fleet.sh /path/to/tracelens}"

# Ephemeral-port daemon management (shared with smoke_server.sh).
. "$(dirname "${BASH_SOURCE[0]}")/lib_serve.sh"

WORK="$(mktemp -d "${TMPDIR:-/tmp}/tracelens_fleet_smoke.XXXXXX")"
SPOOL="$WORK/spool"
mkdir -p "$SPOOL"
cleanup() {
    tl_stop_all_daemons
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "smoke_fleet: FAIL: $*" >&2; exit 1; }

# --max-line-bytes: ingest_push carries whole shards as base64, which
# outgrows the default 1 MiB request frame.
tl_start_daemon srv --workers 2 --watch "$SPOOL" --poll-ms 50 \
    --alerts-out "$WORK/alerts.jsonl" \
    --max-line-bytes $((64 * 1024 * 1024)) || fail "daemon startup"
ADDR="$srv_ADDR"

# health advertises continuous mode and the fleet revision.
HEALTH="$("$CLI" query health --connect "$ADDR")"
echo "$HEALTH" | grep -q '"fleet_revision"' \
    || fail "health lacks fleet_revision"
echo "$HEALTH" | grep -q '"fleet_watch"' || fail "health lacks fleet_watch"
REV="$("$CLI" query health --connect "$ADDR" --field fleet_revision)"

# ---- 1. drip-feed while the daemon watches --------------------------
"$CLI" generate --drip "$SPOOL" --interval-ms 60 --shards 4 \
    --machines 16 --seed 7 >/dev/null 2>&1 || fail "drip generation"

# Wait until all four spool shards are ingested.
for _tick in $(seq 1 100); do
    SHARDS="$("$CLI" query window_summary --connect "$ADDR" \
        --params '{"scenario":"FileOpen","windows":"all"}' \
        --field shards 2>/dev/null || echo 0)"
    [[ "$SHARDS" == "4" ]] && break
    sleep 0.1
done
[[ "$SHARDS" == "4" ]] || fail "daemon ingested $SHARDS of 4 shards"

# The rolling summary and a cold batch analyze over the very same
# shard files must agree byte for byte.
ROLLING="$("$CLI" query window_summary --connect "$ADDR" \
    --params '{"scenario":"FileOpen","windows":"all"}' --field summary)"
BATCH="$("$CLI" query analyze --connect "$ADDR" \
    --params "{\"corpus\":\"$SPOOL\",\"scenario\":\"FileOpen\"}")"
[[ "$ROLLING" == "$BATCH" ]] \
    || fail "rolling summary differs from batch analyze"

# ---- 2. ingest_push over the wire -----------------------------------
push_shard() { # push_shard NAME FILE TIMESTAMP_MS
    local name="$1" file="$2" stamp="$3" params="$WORK/push.json"
    {
        printf '{"name":"%s","fleet_revision":%s,' "$name" "$REV"
        printf '"timestamp_ms":%s,"payload":"' "$stamp"
        base64 -w0 "$file"
        printf '"}'
    } >"$params"
    "$CLI" query ingest_push --connect "$ADDR" --params-file "$params"
}

"$CLI" generate --out "$WORK/pushed.tlc" --machines 16 --seed 8 \
    >/dev/null 2>&1 || fail "push-shard generation"
NOW_MS="$(date +%s%3N)"
push_shard "shard-0100.tlc" "$WORK/pushed.tlc" "$NOW_MS" \
    | grep -q '"shard":"shard-0100.tlc"' || fail "ingest_push"
[[ -f "$SPOOL/shard-0100.tlc" ]] || fail "pushed shard not in spool"
if ls "$SPOOL"/.*.tmp >/dev/null 2>&1; then
    fail "staging temp files left in spool"
fi

# A revision-mismatched pusher is refused up front.
if "$CLI" query ingest_push --connect "$ADDR" --params \
    "{\"name\":\"shard-0101.tlc\",\"fleet_revision\":999,\"payload\":\"AAAA\"}" \
    >/dev/null 2>&1; then
    fail "mismatched fleet_revision should be rejected"
fi

# The warm session absorbed the pushed shard: batch and rolling views
# both include it, and they still agree byte for byte.
ROLLING2="$("$CLI" query window_summary --connect "$ADDR" \
    --params '{"scenario":"FileOpen","windows":"all"}' --field summary)"
BATCH2="$("$CLI" query analyze --connect "$ADDR" \
    --params "{\"corpus\":\"$SPOOL\",\"scenario\":\"FileOpen\"}")"
[[ "$ROLLING2" == "$BATCH2" ]] \
    || fail "rolling summary differs from batch after ingest_push"
[[ "$ROLLING2" != "$ROLLING" ]] \
    || fail "pushed shard changed neither view"

# ---- 3. injected regression produces an alert -----------------------
# Calm cohort in synthetic window W, regressed cohort (encryption
# everywhere, slower disks) in window W+1 — the sentinel compares the
# newest window against its trailing baseline after every ingest.
"$CLI" generate --out "$WORK/calm.tlc" --machines 24 --seed 2024 \
    --encrypted-fraction 0 --hdd-fraction 0.1 >/dev/null 2>&1 \
    || fail "calm cohort generation"
"$CLI" generate --out "$WORK/hot.tlc" --machines 24 --seed 2025 \
    --encrypted-fraction 1 --hdd-fraction 0.5 >/dev/null 2>&1 \
    || fail "regressed cohort generation"

CALM_MS=$((NOW_MS + 600000))
HOT_MS=$((NOW_MS + 660000))
push_shard "shard-0200.tlc" "$WORK/calm.tlc" "$CALM_MS" >/dev/null \
    || fail "calm push"
PUSH_OUT="$(push_shard "shard-0201.tlc" "$WORK/hot.tlc" "$HOT_MS")" \
    || fail "regressed push"
echo "$PUSH_OUT" | grep -q '"alerts":0' \
    && fail "regressed push produced no alert"

ALERTS="$("$CLI" query alerts --connect "$ADDR" \
    --params '{"after_seq":0}')"
echo "$ALERTS" | grep -Eq '"rule":"(impact_rank|cost_regression)"' \
    || fail "alerts method returned no sentinel finding"

# The JSONL sink carries the same schema for log shippers.
[[ -s "$WORK/alerts.jsonl" ]] || fail "alerts.jsonl empty"
grep -Eq '"rule":"(impact_rank|cost_regression)"' "$WORK/alerts.jsonl" \
    || fail "alerts.jsonl lacks sentinel finding"

# Graceful shutdown over the wire: the daemon drains and exits 0.
"$CLI" query shutdown --connect "$ADDR" | grep -q '"stopping":true' \
    || fail "shutdown query"
wait "$srv_PID" || fail "daemon exited nonzero after shutdown"
srv_PID=""
TL_DAEMON_PIDS=()

echo "smoke_fleet: OK (port $srv_PORT)"
