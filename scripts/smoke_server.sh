#!/usr/bin/env bash
# End-to-end smoke test of the analysis service: start the real
# daemon, run query round trips through the real client, then shut it
# down gracefully over the wire (and verify it exits 0).
#
# Usage: smoke_server.sh /path/to/tracelens
set -euo pipefail

CLI="${1:?usage: smoke_server.sh /path/to/tracelens}"

# Ephemeral-port daemon management (shared with smoke_cluster.sh).
. "$(dirname "${BASH_SOURCE[0]}")/lib_serve.sh"

WORK="$(mktemp -d "${TMPDIR:-/tmp}/tracelens_smoke.XXXXXX")"
cleanup() {
    tl_stop_all_daemons
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "smoke_server: FAIL: $*" >&2; exit 1; }

"$CLI" generate --out "$WORK/corpus.tlc" --machines 10 --seed 42 \
    >/dev/null 2>&1 || fail "corpus generation"

tl_start_daemon srv --workers 2 --artifact-cache "$WORK/artifacts" \
    || fail "daemon startup"
ADDR="$srv_ADDR"

"$CLI" query health --connect "$ADDR" | grep -q '"status":"ok"' \
    || fail "health check"

# Both protocol revisions answer, and health advertises them.
"$CLI" query health --connect "$ADDR" --protocol v1 \
    | grep -q '"protocols":\[1,2\]' || fail "health over v1"
"$CLI" query health --connect "$ADDR" --protocol v2 \
    | grep -q '"protocols":\[1,2\]' || fail "health over v2"

"$CLI" query ingest --connect "$ADDR" \
    --params "{\"corpus\":\"$WORK/corpus.tlc\"}" \
    | grep -q '"loaded_shards":1' || fail "ingest query"

"$CLI" query analyze --connect "$ADDR" \
    --params "{\"corpus\":\"$WORK/corpus.tlc\",\"scenario\":\"BrowserTabCreate\"}" \
    | grep -q '"classes"' || fail "analyze query (cold)"

# Warm repeat must answer identically.
COLD="$("$CLI" query analyze --connect "$ADDR" \
    --params "{\"corpus\":\"$WORK/corpus.tlc\",\"scenario\":\"BrowserTabCreate\"}")"
WARM="$("$CLI" query analyze --connect "$ADDR" \
    --params "{\"corpus\":\"$WORK/corpus.tlc\",\"scenario\":\"BrowserTabCreate\"}")"
[[ "$COLD" == "$WARM" ]] || fail "warm response differs from cold"

# v2 changes the framing, not the answer: byte-identical across
# protocol revisions.
V1OUT="$("$CLI" query analyze --connect "$ADDR" --protocol v1 \
    --params "{\"corpus\":\"$WORK/corpus.tlc\",\"scenario\":\"BrowserTabCreate\"}")"
V2OUT="$("$CLI" query analyze --connect "$ADDR" --protocol v2 \
    --params "{\"corpus\":\"$WORK/corpus.tlc\",\"scenario\":\"BrowserTabCreate\"}")"
[[ "$V1OUT" == "$WARM" ]] || fail "v1 response differs"
[[ "$V2OUT" == "$WARM" ]] || fail "v2 response differs"

"$CLI" query stats --connect "$ADDR" | grep -q '"sessions"' \
    || fail "stats query"

# A parse failure must exit nonzero.
if "$CLI" query analyze --connect "$ADDR" --params "not json" \
    >/dev/null 2>&1; then
    fail "bad --params should exit nonzero"
fi

# A *server* error (well-formed request, error response) must exit
# nonzero too, so scripts can branch on the exit code alone.
if "$CLI" query analyze --connect "$ADDR" \
    --params "{\"corpus\":\"$WORK/corpus.tlc\",\"scenario\":\"NoSuchScenario\",\"tfast_ms\":100,\"tslow_ms\":500}" \
    >/dev/null 2>&1; then
    fail "server error response should exit nonzero"
fi

# Graceful shutdown over the wire: the daemon drains and exits 0.
"$CLI" query shutdown --connect "$ADDR" | grep -q '"stopping":true' \
    || fail "shutdown query"
wait "$srv_PID" || fail "daemon exited nonzero after shutdown"
srv_PID=""
TL_DAEMON_PIDS=()

grep -q "drained" "$srv_LOG" || fail "daemon never logged drain"
echo "smoke_server: OK (port $srv_PORT)"
