#!/usr/bin/env bash
# Fail if a bare std::cerr / std::cout diagnostic appears under src/.
#
# Every diagnostic in the library goes through the leveled telemetry
# sink (TL_LOG / warn / inform in src/util/logging.h) so that
# --log-level filters it and the output format stays uniform. The one
# allowed exception is the sink itself (src/util/logging.{h,cpp}).
#
# Usage: check_logging.sh [REPO_ROOT]   (default: script's parent)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
src="$root/src"

if [ ! -d "$src" ]; then
    echo "check_logging: source directory '$src' not found" >&2
    exit 2
fi

# The scan only means something while the code it guards actually
# lives under src/. If a subsystem is moved or renamed, this check
# must fail loudly instead of silently scanning nothing.
for subdir in core fleet server trace util; do
    if [ ! -d "$src/$subdir" ]; then
        echo "check_logging: expected subsystem '$src/$subdir'" \
             "missing — update scripts/check_logging.sh if the tree" \
             "was restructured" >&2
        exit 2
    fi
done

matches=$(grep -rn --include='*.cpp' --include='*.h' \
    -e 'std::cerr' -e 'std::cout' "$src" |
    grep -v '^[^:]*src/util/logging\.\(cpp\|h\):')

if [ -n "$matches" ]; then
    echo "check_logging: bare std::cerr/std::cout under src/ —" \
         "use TL_LOG (src/util/logging.h) instead:" >&2
    echo "$matches" >&2
    exit 1
fi

echo "check_logging: OK (no bare std::cerr/std::cout under src/)"
exit 0
