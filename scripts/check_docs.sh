#!/usr/bin/env bash
# Fail if README.md or docs/*.md contains a dead intra-repo link.
#
# Validates every inline markdown link/image target that is not an
# external URL: the referenced file must exist (relative to the file
# containing the link), and when the target carries a #fragment into a
# markdown file, a heading with that GitHub-style anchor slug must
# exist there. Docs rot silently — a renamed file or retitled section
# leaves dangling references that no compiler catches, so this runs as
# a ctest (label: docs) alongside the code checks.
#
# Usage: check_docs.sh [REPO_ROOT]   (default: script's parent)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"

if [ ! -f "$root/README.md" ] || [ ! -d "$root/docs" ]; then
    echo "check_docs: expected '$root/README.md' and '$root/docs/' —" \
         "update scripts/check_docs.sh if the tree was restructured" >&2
    exit 2
fi

# GitHub-style anchor slugs of every markdown heading in $1: lowercase,
# inline markup stripped, punctuation (except - and _) removed, then
# every space becomes a hyphen — each one, not collapsed, so
# "Graph & artifact" yields "graph--artifact" exactly as GitHub does.
# Duplicate-heading "-1" suffixes are not modelled; none of the repo
# docs repeat a heading.
slugs_of() {
    sed -n -e 's/^#\{1,6\}[[:space:]]\{1,\}//p' "$1" |
        tr '[:upper:]' '[:lower:]' |
        sed -e 's/[`*]//g' \
            -e 's/\[\([^]]*\)\]([^)]*)/\1/g' \
            -e 's/[^a-z0-9 _-]//g' \
            -e 's/ /-/g'
}

fail=0
for doc in "$root/README.md" "$root"/docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    rel=${doc#"$root"/}

    # Inline links and images: every "](target)" occurrence, one per
    # line, with any ' "title"' suffix dropped.
    targets=$(grep -o '\]([^)]*)' "$doc" |
        sed -e 's/^](//' -e 's/)$//' -e 's/ ".*"$//')

    while IFS= read -r target; do
        [ -n "$target" ] || continue
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac

        path=${target%%#*}
        anchor=""
        case "$target" in
        *#*) anchor=${target#*#} ;;
        esac

        if [ -z "$path" ]; then
            resolved="$doc" # same-file anchor
        else
            case "$path" in
            /*) resolved="$root$path" ;; # repo-root-relative
            *) resolved="$dir/$path" ;;
            esac
        fi

        if [ ! -e "$resolved" ]; then
            echo "check_docs: $rel: dead link '$target'" \
                 "(no such file: $resolved)" >&2
            fail=1
            continue
        fi

        if [ -n "$anchor" ]; then
            case "$resolved" in
            *.md)
                if ! slugs_of "$resolved" |
                    grep -qx -- "$anchor"; then
                    echo "check_docs: $rel: dead anchor" \
                         "'$target' (no heading with slug" \
                         "'#$anchor' in ${resolved#"$root"/})" >&2
                    fail=1
                fi
                ;;
            esac
        fi
    done <<EOF
$targets
EOF
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi

echo "check_docs: OK (all intra-repo links and anchors resolve)"
exit 0
