/**
 * @file
 * Case study: the paper's motivating BrowserTabCreate incident
 * (Section 2.2 / Figure 1).
 *
 * A click on "create a new tab" takes over 800 ms because a disk +
 * decryption delay on a system worker propagates through two lock
 * contention regions (the fs.sys MDU lock, then the fv.sys FileTable
 * lock) and two driver-stack dependencies up to the browser UI thread.
 *
 * The example rebuilds the incident deterministically and shows how a
 * performance analyst would explore it with TraceLens: raw trace →
 * wait graph → mined pattern.
 *
 * Build & run:  ./build/examples/example_browser_tab_create
 */

#include <iostream>

#include "src/core/analyzer.h"
#include "src/simkernel/kernel.h"
#include "src/trace/serialize.h"
#include "src/workload/motivating.h"

int
main()
{
    using namespace tracelens;

    TraceCorpus corpus;
    const CaseHandles handles = buildMotivatingExample(corpus);
    const ScenarioInstance &instance =
        corpus.instances()[handles.instance];

    std::cout << "The user clicked 'create a new tab'. The tab "
                 "appeared after "
              << toMs(instance.duration()) << "ms.\n\n";

    std::cout << "Step 1 — the raw trace shows six threads and three "
                 "drivers:\n"
              << dumpStream(corpus, handles.stream, 40) << "\n";

    std::cout << "Step 2 — the UI instance's wait graph connects the "
                 "delay to its root cause:\n";
    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(instance);
    const SymbolTable &sym = corpus.symbols();
    NameFilter drivers({"*.sys"});
    for (std::uint32_t root : graph.roots()) {
        std::uint32_t current = root;
        if (graph.node(root).event.type != EventType::Wait)
            continue;
        int depth = 0;
        while (current != kInvalidIndex) {
            const auto &node = graph.node(current);
            std::cout << std::string(
                             static_cast<std::size_t>(depth) * 2, ' ')
                      << eventTypeName(node.event.type) << " tid="
                      << node.event.tid << " ("
                      << toMs(node.event.cost) << "ms)";
            if (node.event.stack != kNoCallstack) {
                const FrameId top =
                    sym.topMatchingFrame(node.event.stack, drivers);
                if (top != kNoFrame)
                    std::cout << " in " << sym.frameName(top);
            }
            std::cout << "\n";
            std::uint32_t heaviest = kInvalidIndex;
            DurationNs best = -1;
            for (std::uint32_t child : graph.children(node)) {
                if (graph.node(child).event.cost > best) {
                    best = graph.node(child).event.cost;
                    heaviest = child;
                }
            }
            current = heaviest;
            ++depth;
        }
    }

    // A fast reference instance so the miner has a contrast class.
    {
        SimKernel sim(corpus, "reference-machine");
        const auto scn = sim.scenario("BrowserTabCreate");
        sim.spawnThread({actPush(sim.frame("browser.exe!TabCreate")),
                         actBeginInstance(scn), actCompute(fromMs(40)),
                         actEndInstance(), actPop()});
        sim.run();
    }

    std::cout << "\nStep 3 — causality analysis distils the incident "
                 "into one actionable pattern:\n";
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);
    const ScenarioAnalysis analysis = analyzer.analyzeScenario(
        "BrowserTabCreate", fromMs(300), fromMs(500));
    if (!analysis.mining.patterns.empty()) {
        std::cout << analysis.mining.patterns[0].tuple.render(sym)
                  << "\nReading: the cost of the running signatures "
                     "propagates through the unwait signatures to the "
                     "wait signatures. Reducing lock granularity in "
                     "the filter/FS drivers alleviates the problem "
                     "(the paper's conclusion).\n";
    }
    return 0;
}
