/**
 * @file
 * Regression tracking across fleets, continuous-mode style: feed two
 * cohorts of shards into rolling windows (src/fleet/windows.h) — a
 * baseline window and an after-the-rollout window — and let the
 * regression sentinel (src/fleet/sentinel.h) diff them the way the
 * live daemon does after every ingest.
 *
 * Here the "after" fleet ships storage encryption everywhere and
 * slower disks — the sentinel's pattern-diff evidence surfaces the
 * new se.sys-based propagation patterns the rollout introduced, and
 * the alerts carry the implicated component by name.
 *
 * Build & run:  ./build/examples/example_fleet_regression
 */

#include <iostream>
#include <utility>
#include <vector>

#include "src/fleet/alerts.h"
#include "src/fleet/sentinel.h"
#include "src/fleet/windows.h"
#include "src/mining/diff.h"
#include "src/workload/generator.h"

int
main()
{
    using namespace tracelens;

    // Baseline fleet: no storage encryption, fast disks.
    CorpusSpec before_spec;
    before_spec.machines = 80;
    before_spec.seed = 2024;
    before_spec.encryptedFraction = 0.0;
    before_spec.hddFraction = 0.1;

    // After the rollout: encryption everywhere, more HDDs.
    CorpusSpec after_spec = before_spec;
    after_spec.seed = 2025;
    after_spec.encryptedFraction = 1.0;
    after_spec.hddFraction = 0.5;

    // One-minute windows: the baseline cohort lands in window 0, the
    // rollout cohort in window 1. Window membership is a pure function
    // of the shard timestamp, so arrival order is irrelevant.
    constexpr std::uint64_t kWindowNs = 60ull * 1000 * 1000 * 1000;
    FleetWindowConfig window_config;
    window_config.windowNs = kWindowNs;
    WindowedAnalyzer windows(window_config);

    std::vector<TraceCorpus> before_shards =
        generateShardedCorpus(before_spec, 4);
    for (std::size_t i = 0; i < before_shards.size(); ++i)
        windows.addShard("before-" + std::to_string(i) + ".tlc",
                         std::move(before_shards[i]),
                         i * 1000 * 1000);
    std::vector<TraceCorpus> after_shards =
        generateShardedCorpus(after_spec, 4);
    for (std::size_t i = 0; i < after_shards.size(); ++i)
        windows.addShard("after-" + std::to_string(i) + ".tlc",
                         std::move(after_shards[i]),
                         kWindowNs + i * 1000 * 1000);

    const ScenarioSpec &scn = scenarioByName("BrowserTabCreate");

    // The sentinel watches window 1 against the one-window baseline —
    // exactly what the daemon does after every ingest_push.
    AlertSink sink;
    SentinelConfig sentinel_config;
    sentinel_config.scenarios = {{scn.name, scn.tFast, scn.tSlow}};
    sentinel_config.baselineWindows = 1;
    RegressionSentinel sentinel(windows, sink, sentinel_config);
    sentinel.evaluate();

    // Per-window summaries ride the same partial-merge path the
    // daemon's window_summary method serves.
    const WindowScenarioSummary before_summary = windows.summarize(
        {0}, scn.name, scn.tFast, scn.tSlow, 3, true);
    const WindowScenarioSummary after_summary = windows.summarize(
        {1}, scn.name, scn.tFast, scn.tSlow, 3, true);
    std::cout << "baseline window: driver share "
              << before_summary.summary.driverCostShare * 100 << "%\n";
    std::cout << "rollout window:  driver share "
              << after_summary.summary.driverCostShare * 100 << "%\n\n";

    // The pattern-level evidence behind the impact_rank rule.
    const MiningDiff diff = diffMiningResults(
        before_summary.summary.mining, before_summary.symbols,
        after_summary.summary.mining, after_summary.symbols);
    std::cout << "pattern diff: "
              << diff.render(after_summary.symbols, 3);

    // Count how many of the new patterns involve the rolled-out
    // encryption driver.
    int se_patterns = 0;
    for (const ContrastPattern &p : diff.appeared) {
        for (const std::string &component :
             patternComponents(p, after_summary.symbols))
            if (component == "se.sys") {
                ++se_patterns;
                break;
            }
    }
    std::cout << "\n" << se_patterns << " of " << diff.appeared.size()
              << " new patterns involve se.sys — the rollout's "
                 "signature.\n\n";

    std::cout << "alerts:\n";
    for (const Alert &alert : sink.since(0))
        std::cout << "  " << alertJson(alert).render() << "\n";
    return 0;
}
