/**
 * @file
 * Regression tracking across fleets: analyze the same scenario on two
 * fleets (e.g. before/after a driver update, or two hardware cohorts)
 * and diff the mined patterns to see what behaviour appeared,
 * disappeared, or changed cost.
 *
 * Here the "after" fleet ships storage encryption everywhere and
 * slower disks — the diff surfaces the new se.sys-based propagation
 * patterns that the rollout introduced.
 *
 * Build & run:  ./build/examples/example_fleet_regression
 */

#include <iostream>

#include "src/core/analyzer.h"
#include "src/mining/diff.h"
#include "src/workload/generator.h"

int
main()
{
    using namespace tracelens;

    // Baseline fleet: no storage encryption, fast disks.
    CorpusSpec before_spec;
    before_spec.machines = 80;
    before_spec.seed = 2024;
    before_spec.encryptedFraction = 0.0;
    before_spec.hddFraction = 0.1;
    const TraceCorpus before = generateCorpus(before_spec);

    // After the rollout: encryption everywhere, more HDDs.
    CorpusSpec after_spec = before_spec;
    after_spec.seed = 2025;
    after_spec.encryptedFraction = 1.0;
    after_spec.hddFraction = 0.5;
    const TraceCorpus after = generateCorpus(after_spec);

    const ScenarioSpec &scn = scenarioByName("BrowserTabCreate");

    EagerSource ana_before_source(before);

    Analyzer ana_before(ana_before_source);
    EagerSource ana_after_source(after);
    Analyzer ana_after(ana_after_source);
    const ScenarioAnalysis rb =
        ana_before.analyzeScenario(scn.name, scn.tFast, scn.tSlow);
    const ScenarioAnalysis ra =
        ana_after.analyzeScenario(scn.name, scn.tFast, scn.tSlow);

    std::cout << "before: " << rb.classes.slow.size() << " slow of "
              << rb.classes.slow.size() + rb.classes.middle.size() +
                     rb.classes.fast.size()
              << " instances; driver share "
              << rb.driverCostShare() * 100 << "%\n";
    std::cout << "after:  " << ra.classes.slow.size() << " slow of "
              << ra.classes.slow.size() + ra.classes.middle.size() +
                     ra.classes.fast.size()
              << " instances; driver share "
              << ra.driverCostShare() * 100 << "%\n\n";

    const MiningDiff diff = diffMiningResults(
        rb.mining, before.symbols(), ra.mining, after.symbols());
    std::cout << "pattern diff: " << diff.render(after.symbols(), 3);

    // Count how many of the new patterns involve the rolled-out
    // encryption driver.
    int se_patterns = 0;
    for (const ContrastPattern &p : diff.appeared) {
        bool has_se = false;
        auto scan = [&](const std::vector<FrameId> &set) {
            for (FrameId f : set) {
                has_se = has_se ||
                         (f != kNoFrame &&
                          after.symbols().componentName(f) == "se.sys");
            }
        };
        scan(p.tuple.waits);
        scan(p.tuple.unwaits);
        scan(p.tuple.runnings);
        se_patterns += has_se;
    }
    std::cout << "\n" << se_patterns << " of " << diff.appeared.size()
              << " new patterns involve se.sys — the rollout's "
                 "signature.\n";
    return 0;
}
