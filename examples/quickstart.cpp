/**
 * @file
 * Quickstart: the whole TraceLens pipeline in one page.
 *
 *  1. Synthesize a small fleet of machines (stand-in for real ETW
 *     trace streams).
 *  2. Impact analysis: how much do device drivers cost the system?
 *  3. Causality analysis: which driver behaviours cause the slow
 *     BrowserTabCreate instances?
 *
 * Build & run:  ./build/examples/example_quickstart
 */

#include <iostream>

#include "src/core/analyzer.h"
#include "src/workload/generator.h"

int
main()
{
    using namespace tracelens;

    // 1. A corpus of simulated machines, each tracing several
    //    concurrent scenario instances plus background load.
    CorpusSpec spec;
    spec.machines = 80;
    spec.seed = 7;
    const TraceCorpus corpus = generateCorpus(spec);
    std::cout << "corpus: " << corpus.streamCount() << " streams, "
              << corpus.instances().size() << " instances, "
              << corpus.totalEvents() << " events\n\n";

    // 2. Impact analysis over all instances, components = all drivers.
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source); // default filter: {"*.sys"}
    const ImpactResult impact = analyzer.impactAll();
    std::cout << "impact analysis (all scenarios):\n  "
              << impact.render() << "\n\n";

    // 3. Causality analysis for one scenario. Thresholds are the
    //    developer-specified performance expectations.
    const ScenarioAnalysis analysis = analyzer.analyzeScenario(
        "BrowserTabCreate", fromMs(300), fromMs(500));
    std::cout << "BrowserTabCreate: "
              << analysis.classes.fast.size() << " fast / "
              << analysis.classes.slow.size() << " slow instances; "
              << analysis.mining.patterns.size()
              << " contrast patterns\n";
    std::cout << "coverage: " << analysis.coverage.render() << "\n\n";

    const std::size_t top_n =
        std::min<std::size_t>(3, analysis.mining.patterns.size());
    for (std::size_t i = 0; i < top_n; ++i) {
        const ContrastPattern &p = analysis.mining.patterns[i];
        std::cout << "--- pattern " << i + 1 << " (impact "
                  << toMs(static_cast<DurationNs>(p.impact()))
                  << "ms, N=" << p.count << ") ---\n"
                  << p.tuple.render(corpus.symbols());
    }
    return 0;
}
