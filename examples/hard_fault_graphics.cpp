/**
 * @file
 * Case study: a hard fault inside graphics.sys (paper Section 5.2.4,
 * observation 3).
 *
 * graphics.sys normally never touches the disk, so a pattern relating
 * it to fs.sys/se.sys is highly suspicious. The cause: a GPU-holding
 * system thread faults on pageable memory; the page read runs through
 * the encrypted storage stack and takes ~4.7 s, freezing the UI
 * thread that is queued on the GPU lock.
 *
 * Build & run:  ./build/examples/example_hard_fault_graphics
 */

#include <iostream>

#include "src/core/analyzer.h"
#include "src/simkernel/kernel.h"
#include "src/trace/serialize.h"
#include "src/workload/motivating.h"

int
main()
{
    using namespace tracelens;

    TraceCorpus corpus;
    const CaseHandles handles = buildGraphicsHardFaultCase(corpus);
    const ScenarioInstance &instance =
        corpus.instances()[handles.instance];

    std::cout << "The application stopped responding for "
              << toMs(instance.duration()) << "ms (paper: ~4.73s).\n\n";
    std::cout << dumpStream(corpus, handles.stream, 40) << "\n";

    // Mine against a healthy reference run.
    {
        SimKernel sim(corpus, "reference-machine");
        const auto scn = sim.scenario("AppNonResponsive");
        sim.spawnThread({actPush(sim.frame("app.exe!UI")),
                         actBeginInstance(scn), actCompute(fromMs(60)),
                         actEndInstance(), actPop()});
        sim.run();
    }

    EagerSource analyzer_source(corpus);

    Analyzer analyzer(analyzer_source);
    const ScenarioAnalysis analysis = analyzer.analyzeScenario(
        "AppNonResponsive", fromMs(350), fromMs(700));

    std::cout << "mined contrast patterns ("
              << analysis.mining.patterns.size() << "):\n";
    const SymbolTable &sym = corpus.symbols();
    for (const ContrastPattern &p : analysis.mining.patterns) {
        std::cout << p.tuple.render(sym) << "impact="
                  << toMs(static_cast<DurationNs>(p.impact()))
                  << "ms\n\n";
    }

    std::cout << "The graphics.sys + se.sys combination in one pattern "
                 "is the hint: a driver that should never do disk I/O "
                 "is waiting on the storage stack — a hard fault. "
                 "Advice (paper): minimize pageable memory in device "
                 "drivers.\n";
    return 0;
}
