/**
 * @file
 * Case study: MenuDisplay and network drivers (paper Section 5.2.4,
 * observation 2).
 *
 * Menus that fetch their items from remote servers on the UI thread
 * inherit the network's latency tail. The example generates a
 * MenuDisplay-heavy corpus, runs the causality analysis, and shows
 * that the mined patterns point at the network driver stack —
 * motivating the paper's advice to fetch asynchronously or prefetch.
 *
 * Build & run:  ./build/examples/example_menu_display_network
 */

#include <iostream>

#include "src/core/analyzer.h"
#include "src/workload/driverzoo.h"
#include "src/workload/generator.h"

int
main()
{
    using namespace tracelens;

    CorpusSpec spec;
    spec.machines = 120;
    spec.seed = 11;
    spec.onlyScenarios = {"MenuDisplay"};
    const TraceCorpus corpus = generateCorpus(spec);

    EagerSource analyzer_source(corpus);

    Analyzer analyzer(analyzer_source);
    const ScenarioSpec &scn = scenarioByName("MenuDisplay");
    const ScenarioAnalysis analysis =
        analyzer.analyzeScenario(scn.name, scn.tFast, scn.tSlow);

    std::cout << "MenuDisplay: " << analysis.classes.fast.size()
              << " fast / " << analysis.classes.slow.size()
              << " slow instances\n";
    std::cout << "slow-class driver cost share: "
              << analysis.driverCostShare() * 100 << "%\n\n";

    const SymbolTable &sym = corpus.symbols();
    const std::size_t top_n =
        std::min<std::size_t>(10, analysis.mining.patterns.size());
    int network_patterns = 0;
    for (std::size_t i = 0; i < top_n; ++i) {
        const auto &tuple = analysis.mining.patterns[i].tuple;
        bool network = false;
        auto scan = [&](const std::vector<FrameId> &frames) {
            for (FrameId f : frames) {
                if (f == kNoFrame)
                    continue;
                const auto type = classifySignature(sym.frameName(f));
                network = network || (type && *type ==
                                                  DriverType::Network);
            }
        };
        scan(tuple.waits);
        scan(tuple.unwaits);
        scan(tuple.runnings);
        network_patterns += network;
        std::cout << "pattern " << i + 1
                  << (network ? " [network]" : "") << ":\n"
                  << tuple.renderCompact(sym) << "\n";
    }
    std::cout << "\n" << network_patterns << " of the top " << top_n
              << " patterns involve network drivers (paper: 7 of "
                 "10).\n";
    std::cout << "Advice: display menus from a prefetched cache or "
                 "fetch asynchronously so that unstable bandwidth "
                 "cannot propagate into the UI.\n";
    return 0;
}
