/**
 * @file
 * Working with trace files: generate a corpus, persist it in the
 * TraceLens binary format (the role ETW's .etl files play for the
 * paper), reload it, validate it, and analyze the reloaded copy.
 *
 * Build & run:  ./build/examples/example_trace_file_roundtrip [path]
 */

#include <cstdio>
#include <iostream>

#include "src/core/analyzer.h"
#include "src/trace/serialize.h"
#include "src/trace/validate.h"
#include "src/workload/generator.h"

int
main(int argc, char **argv)
{
    using namespace tracelens;

    const std::string path =
        argc > 1 ? argv[1] : "/tmp/tracelens_corpus.tlc";

    // Generate and persist.
    {
        CorpusSpec spec;
        spec.machines = 25;
        spec.seed = 3;
        const TraceCorpus corpus = generateCorpus(spec);
        writeCorpusFile(corpus, path);
        std::cout << "wrote " << corpus.streamCount() << " streams / "
                  << corpus.totalEvents() << " events to " << path
                  << "\n";
    }

    // Reload, validate, analyze.
    const TraceCorpus corpus = readCorpusFile(path);
    const ValidationReport report = validateCorpus(corpus);
    std::cout << "reloaded: " << report.render() << "\n";

    EagerSource analyzer_source(corpus);

    Analyzer analyzer(analyzer_source);
    std::cout << "impact: " << analyzer.impactAll().render() << "\n";

    // Per-scenario impact from the reloaded corpus.
    const auto per = analyzer.impactPerScenario();
    for (const auto &[scenario, impact] : per) {
        std::cout << "  " << corpus.scenarioName(scenario) << ": "
                  << impact.render() << "\n";
    }

    std::remove(path.c_str());
    return 0;
}
