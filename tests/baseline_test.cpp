/**
 * @file
 * Tests for the baseline analyzers (gprof-style CPU profiling and
 * single-lock contention analysis), including the demonstrations of
 * their single-aspect blind spots.
 */

#include <gtest/gtest.h>

#include "src/baseline/callgraph.h"
#include "src/baseline/lockcontention.h"
#include "src/trace/builder.h"
#include "src/workload/motivating.h"

namespace tracelens
{
namespace
{

TraceCorpus
profiledCorpus()
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId main_only = b.stack({"app.exe!main"});
    const CallstackId with_helper =
        b.stack({"app.exe!main", "app.exe!helper"});
    b.running(1, 0, 100, main_only);
    b.running(1, 100, 100, with_helper);
    b.running(1, 200, 100, with_helper);
    b.finish();
    return corpus;
}

TEST(CallGraph, InclusiveAndExclusiveAttribution)
{
    const TraceCorpus corpus = profiledCorpus();
    CallGraphProfiler profiler(corpus);
    const auto entries = profiler.profile();

    ASSERT_EQ(entries.size(), 2u);
    const SymbolTable &sym = corpus.symbols();

    // main: inclusive 300 (on all samples), exclusive 100.
    EXPECT_EQ(sym.frameName(entries[0].frame), "app.exe!main");
    EXPECT_EQ(entries[0].inclusive, 300);
    EXPECT_EQ(entries[0].exclusive, 100);
    // helper: inclusive 200, exclusive 200.
    EXPECT_EQ(sym.frameName(entries[1].frame), "app.exe!helper");
    EXPECT_EQ(entries[1].inclusive, 200);
    EXPECT_EQ(entries[1].exclusive, 200);

    EXPECT_EQ(profiler.totalCpu(), 300);
}

TEST(CallGraph, RecursiveFramesCountOncePerSample)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId rec =
        b.stack({"app.exe!fib", "app.exe!fib", "app.exe!fib"});
    b.running(1, 0, 50, rec);
    b.finish();

    CallGraphProfiler profiler(corpus);
    const auto entries = profiler.profile();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].inclusive, 50);
    EXPECT_EQ(entries[0].samples, 1u);
}

TEST(CallGraph, ComponentRollup)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId mixed =
        b.stack({"app.exe!main", "fs.sys!Read", "fs.sys!ReadLow"});
    b.running(1, 0, 80, mixed);
    b.finish();

    CallGraphProfiler profiler(corpus);
    const auto components = profiler.byComponent();
    ASSERT_EQ(components.size(), 2u);
    for (const auto &c : components)
        EXPECT_EQ(c.inclusive, 80); // each module once per sample
}

TEST(CallGraph, BlindToWaits)
{
    // The Figure-1 case: ~800 ms of propagated waiting, a few ms CPU.
    // The profiler reports only the CPU.
    TraceCorpus corpus;
    buildMotivatingExample(corpus);
    CallGraphProfiler profiler(corpus);
    // Total CPU is tiny compared to the 800 ms incident.
    EXPECT_LT(profiler.totalCpu(), fromMs(100));
    // Whatever driver CPU exists is a few milliseconds — nothing that
    // would point at an 800 ms stall.
    for (const ProfileEntry &e : profiler.profile()) {
        const std::string &name =
            corpus.symbols().frameName(e.frame);
        if (name.find(".sys") != std::string::npos) {
            EXPECT_LT(e.inclusive, fromMs(50)) << name;
        }
    }
}

TEST(LockContention, AggregatesBlockingBySite)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId site = b.stack({"app!X", "fs.sys!Acquire"});
    const CallstackId releaser = b.stack({"app!Y", "fs.sys!Release"});
    b.wait(1, 100, site);
    b.unwait(9, 400, 1, releaser); // 300 blocked
    b.wait(2, 200, site);
    b.unwait(9, 900, 2, releaser); // 700 blocked
    b.finish();

    LockContentionAnalyzer analyzer(corpus);
    const auto entries = analyzer.analyze();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].blocked, 1000);
    EXPECT_EQ(entries[0].waits, 2u);
    EXPECT_EQ(entries[0].maxBlocked, 700);
    EXPECT_EQ(corpus.symbols().frameName(entries[0].waitSite),
              "fs.sys!Acquire");
    EXPECT_EQ(
        corpus.symbols().frameName(entries[0].dominantUnwaitSite),
        "fs.sys!Release");
    EXPECT_EQ(analyzer.totalBlocked(), 1000);
}

TEST(LockContention, SeesOnlyFirstHopOfFigure1Chain)
{
    TraceCorpus corpus;
    buildMotivatingExample(corpus);
    LockContentionAnalyzer analyzer(corpus);
    const auto entries = analyzer.analyze();
    ASSERT_FALSE(entries.empty());

    const SymbolTable &sym = corpus.symbols();
    // The heaviest site is visible (fs.sys!AcquireMDU or the job wait
    // through fs.sys!Read), but each entry's signaller is a single
    // immediate callsite — the cross-lock chain to se.sys + disk is
    // not connected by this analysis.
    bool found_mdu = false;
    for (const ContentionEntry &e : entries) {
        const std::string &name = sym.frameName(e.waitSite);
        if (name == "fs.sys!AcquireMDU") {
            found_mdu = true;
            // Its reported signaller is the neighbouring lock release
            // site, not the root cause se.sys!ReadDecrypt.
            EXPECT_NE(sym.frameName(e.dominantUnwaitSite),
                      "se.sys!ReadDecrypt");
        }
    }
    EXPECT_TRUE(found_mdu);
    EXPECT_NE(analyzer.renderTop(3).find("Blocked"), std::string::npos);
}

TEST(LockContention, IgnoresUnpairedWaits)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId site = b.stack({"app!X", "fs.sys!Acquire"});
    b.wait(1, 100, site);
    b.finish();
    LockContentionAnalyzer analyzer(corpus);
    EXPECT_TRUE(analyzer.analyze().empty());
}

} // namespace
} // namespace tracelens
