/**
 * @file
 * Tests for corpus merging and the wait-graph text renderer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "src/core/analyzer.h"
#include "src/trace/builder.h"
#include "src/trace/merge.h"
#include "src/trace/serialize.h"
#include "src/workload/generator.h"
#include "src/workload/motivating.h"

namespace tracelens
{
namespace
{

TEST(Merge, RemapsStreamsStacksAndScenarios)
{
    TraceCorpus a;
    {
        StreamBuilder b(a, "machine-a");
        const CallstackId st = b.stack({"app!X", "fs.sys!Read"});
        b.running(1, 0, 100, st);
        b.instance("S", 1, 0, 200);
        b.finish();
    }
    TraceCorpus b;
    {
        // Same frame names, interned independently (different ids).
        StreamBuilder sb(b, "machine-b");
        const CallstackId other = sb.stack({"other!Y"});
        const CallstackId st = sb.stack({"app!X", "fs.sys!Read"});
        sb.running(2, 0, 50, other);
        sb.wait(3, 10, st);
        sb.unwait(2, 60, 3, st);
        sb.instance("T", 3, 0, 100);
        sb.instance("S", 2, 0, 80);
        sb.finish();
    }

    const std::vector<TraceCorpus> parts = [&] {
        std::vector<TraceCorpus> v;
        v.push_back(std::move(a));
        v.push_back(std::move(b));
        return v;
    }();
    const TraceCorpus merged = mergeCorpora(parts);

    EXPECT_EQ(merged.streamCount(), 2u);
    EXPECT_EQ(merged.totalEvents(), 4u);
    ASSERT_EQ(merged.instances().size(), 3u);

    // Instance stream indices remapped.
    EXPECT_EQ(merged.instances()[0].stream, 0u);
    EXPECT_EQ(merged.instances()[1].stream, 1u);
    EXPECT_EQ(merged.instances()[2].stream, 1u);

    // Scenario names unified: "S" appears once.
    EXPECT_EQ(merged.scenarioCount(), 2u);
    EXPECT_EQ(merged.scenarioName(merged.instances()[0].scenario),
              "S");
    EXPECT_EQ(merged.scenarioName(merged.instances()[2].scenario),
              "S");

    // The shared stack deduplicated into one interned id.
    const Event &e0 = merged.stream(0).event(0);
    const Event &e1 = merged.stream(1).event(1); // the wait
    EXPECT_EQ(e0.stack, e1.stack);
    EXPECT_EQ(
        merged.symbols().renderStack(e0.stack).find("fs.sys!Read") !=
            std::string::npos,
        true);
}

TEST(Merge, MergedAnalysisEqualsJointGeneration)
{
    // Generating machines into one corpus or into separate corpora and
    // merging must yield identical analysis results.
    CorpusSpec spec;
    spec.machines = 6;
    spec.seed = 5150;
    const TraceCorpus joint = generateCorpus(spec);

    std::vector<TraceCorpus> parts;
    {
        Rng rng(spec.seed);
        for (std::uint32_t m = 0; m < spec.machines; ++m) {
            TraceCorpus single;
            generateMachine(single, spec, m, rng);
            parts.push_back(std::move(single));
        }
    }
    const TraceCorpus merged = mergeCorpora(parts);

    EXPECT_EQ(merged.totalEvents(), joint.totalEvents());
    EXPECT_EQ(merged.instances().size(), joint.instances().size());

    EagerSource joint_source(joint);
    EagerSource merged_source(merged);
    const ImpactResult a = Analyzer(joint_source).impactAll();
    const ImpactResult b = Analyzer(merged_source).impactAll();
    EXPECT_EQ(a.dScn, b.dScn);
    EXPECT_EQ(a.dWait, b.dWait);
    EXPECT_EQ(a.dRun, b.dRun);
    EXPECT_EQ(a.dWaitDist, b.dWaitDist);
}

TEST(Merge, EmptyPartsAreFine)
{
    const std::vector<TraceCorpus> none;
    const TraceCorpus merged = mergeCorpora(none);
    EXPECT_EQ(merged.streamCount(), 0u);

    TraceCorpus target;
    TraceCorpus empty;
    appendCorpus(target, empty);
    EXPECT_EQ(target.streamCount(), 0u);
}

TEST(WaitGraphRender, ShowsChainWithSignatures)
{
    TraceCorpus corpus;
    const CaseHandles handles = buildMotivatingExample(corpus);
    WaitGraphBuilder builder(corpus);
    const WaitGraph graph =
        builder.build(corpus.instances()[handles.instance]);

    const std::string text = graph.renderText(
        corpus.symbols(), NameFilter({"*.sys"}), 100);
    EXPECT_NE(text.find("Wait"), std::string::npos);
    EXPECT_NE(text.find("fv.sys!QueryFileTable"), std::string::npos);
    EXPECT_NE(text.find("se.sys!ReadDecrypt"), std::string::npos);
    EXPECT_NE(text.find("HardwareService"), std::string::npos);
    // Indentation shows nesting.
    EXPECT_NE(text.find("  "), std::string::npos);
}

} // namespace
} // namespace tracelens
