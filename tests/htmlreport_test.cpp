/**
 * @file
 * Tests for the HTML report generator.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "src/core/htmlreport.h"
#include "src/trace/builder.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace
{

TEST(HtmlReport, WellFormedSkeleton)
{
    CorpusSpec spec;
    spec.machines = 6;
    spec.seed = 2;
    const TraceCorpus corpus = generateCorpus(spec);
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);

    const std::vector<ScenarioThresholds> scenarios = {
        {"BrowserTabCreate", fromMs(300), fromMs(500)},
        {"Missing", fromMs(1), fromMs(2)},
    };
    const std::string html =
        buildHtmlReport(analyzer, scenarios, ReportOptions{});

    EXPECT_EQ(html.rfind("<!doctype html", 0), 0u);
    EXPECT_NE(html.find("</html>"), std::string::npos);
    EXPECT_NE(html.find("TraceLens report"), std::string::npos);
    EXPECT_NE(html.find("Impact analysis"), std::string::npos);
    EXPECT_NE(html.find("Impact by component"), std::string::npos);
    EXPECT_NE(html.find("Scenario BrowserTabCreate"),
              std::string::npos);
    EXPECT_NE(html.find("not present in this corpus"),
              std::string::npos);

    // Balanced details tags.
    std::size_t open = 0, close = 0, pos = 0;
    while ((pos = html.find("<details", pos)) != std::string::npos) {
        ++open;
        pos += 8;
    }
    pos = 0;
    while ((pos = html.find("</details>", pos)) != std::string::npos) {
        ++close;
        pos += 10;
    }
    EXPECT_EQ(open, close);
}

TEST(HtmlReport, EscapesSignatures)
{
    // Frame names with HTML-special characters must be escaped.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st =
        b.stack({"app!op<tpl>", "x.sys!Read<A&B>"});
    b.wait(1, 0, st);
    b.unwait(9, fromMs(600), 1, st);
    b.instance("S", 1, 0, fromMs(700));
    // Provide a fast instance for contrast.
    b.instance("S", 1, 0, fromMs(1));
    b.finish();

    EagerSource analyzer_source(corpus);

    Analyzer analyzer(analyzer_source);
    const std::vector<ScenarioThresholds> scenarios = {
        {"S", fromMs(100), fromMs(500)},
    };
    const std::string html =
        buildHtmlReport(analyzer, scenarios, ReportOptions{});
    EXPECT_EQ(html.find("x.sys!Read<A&B>"), std::string::npos);
    EXPECT_NE(html.find("x.sys!Read&lt;A&amp;B&gt;"),
              std::string::npos);
}

TEST(HtmlReport, WritesFile)
{
    TraceCorpus corpus;
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);
    const std::string path = "/tmp/tracelens_report_test.html";
    writeHtmlReportFile(analyzer, {}, path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_NE(first_line.find("<!doctype html"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace tracelens
