/**
 * @file
 * Robustness tests: corrupted/truncated inputs die with clear errors
 * instead of misbehaving; the wildcard matcher agrees with a reference
 * implementation under fuzzing; malformed trace shapes degrade
 * gracefully in the analyses.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "src/core/analyzer.h"
#include "src/trace/builder.h"
#include "src/trace/serialize.h"
#include "src/util/rng.h"
#include "src/util/wildcard.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace
{

std::string
serializedSample()
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.running(1, 0, 10, st);
    b.instance("S", 1, 0, 100);
    b.finish();
    std::ostringstream out;
    writeCorpus(corpus, out);
    return out.str();
}

TEST(SerializeDeath, BadMagicIsFatal)
{
    std::string bytes = serializedSample();
    bytes[0] = 'X';
    EXPECT_EXIT(
        {
            std::istringstream in(bytes);
            readCorpus(in);
        },
        testing::ExitedWithCode(1), "bad magic");
}

TEST(SerializeDeath, UnsupportedVersionIsFatal)
{
    std::string bytes = serializedSample();
    bytes[4] = 99; // version field
    EXPECT_EXIT(
        {
            std::istringstream in(bytes);
            readCorpus(in);
        },
        testing::ExitedWithCode(1), "version");
}

TEST(SerializeDeath, TruncationIsFatal)
{
    const std::string bytes = serializedSample();
    // Cut at several depths; every cut must die cleanly, never crash
    // or return garbage.
    for (std::size_t cut : {9ul, 16ul, 32ul, bytes.size() - 3}) {
        EXPECT_EXIT(
            {
                std::istringstream in(bytes.substr(0, cut));
                readCorpus(in);
            },
            testing::ExitedWithCode(1), "truncated|corpus")
            << "cut at " << cut;
    }
}

TEST(SerializeDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(readCorpusFile("/nonexistent/path/x.tlc"),
                testing::ExitedWithCode(1), "cannot open");
}

/** Reference recursive glob matcher (exponential but obviously right). */
bool
referenceMatch(std::string_view p, std::string_view t)
{
    if (p.empty())
        return t.empty();
    if (p[0] == '*') {
        return referenceMatch(p.substr(1), t) ||
               (!t.empty() && referenceMatch(p, t.substr(1)));
    }
    if (t.empty())
        return false;
    const char pc = static_cast<char>(
        std::tolower(static_cast<unsigned char>(p[0])));
    const char tc = static_cast<char>(
        std::tolower(static_cast<unsigned char>(t[0])));
    if (p[0] == '?' || pc == tc)
        return referenceMatch(p.substr(1), t.substr(1));
    return false;
}

TEST(WildcardFuzz, AgreesWithReferenceMatcher)
{
    Rng rng(2026);
    const std::string alphabet = "ab.*?s";
    for (int iter = 0; iter < 5000; ++iter) {
        std::string pattern, text;
        const auto plen = rng.uniformInt(0, 6);
        const auto tlen = rng.uniformInt(0, 8);
        for (int i = 0; i < plen; ++i)
            pattern += alphabet[static_cast<std::size_t>(
                rng.uniformInt(0, 5))];
        for (int i = 0; i < tlen; ++i) {
            // Text never contains wildcards.
            text += alphabet[static_cast<std::size_t>(
                rng.uniformInt(0, 3))];
        }
        EXPECT_EQ(wildcardMatch(pattern, text),
                  referenceMatch(pattern, text))
            << "pattern='" << pattern << "' text='" << text << "'";
    }
}

TEST(Robustness, AnalysisToleratesTruncatedTraces)
{
    // Waits with no unwaits (tracing stopped mid-incident).
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"app!U", "fs.sys!Read"});
    b.wait(1, 0, st);
    b.wait(2, 10, st);
    b.running(3, 0, fromMs(2), st);
    b.instance("S", 1, 0, fromMs(5));
    b.instance("S", 2, 0, fromMs(5));
    b.finish();

    EagerSource analyzer_source(corpus);

    Analyzer analyzer(analyzer_source);
    const ImpactResult impact = analyzer.impactAll();
    EXPECT_GE(impact.dWait, 0);
    EXPECT_GE(impact.dScn, 0);
}

TEST(Robustness, AnalysisToleratesEmptyCorpus)
{
    TraceCorpus corpus;
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);
    const ImpactResult impact = analyzer.impactAll();
    EXPECT_EQ(impact.instances, 0u);
    EXPECT_EQ(impact.dScn, 0);
    EXPECT_TRUE(analyzer.impactPerScenario().empty());
}

TEST(Robustness, InstanceWindowOutsideRecordedEvents)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.running(1, 0, 10, st);
    // Window entirely after the last event.
    b.instance("S", 1, fromMs(10), fromMs(20));
    b.finish();

    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(corpus.instances()[0]);
    EXPECT_TRUE(graph.roots().empty());
    EXPECT_EQ(graph.topLevelDuration(), 0);
}

TEST(Robustness, SelfUnwaitsAreIgnoredByPairing)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.wait(1, 0, st);
    b.unwait(1, 50, 1, st);  // self-unwait: must not pair
    b.unwait(2, 100, 1, st); // the real unwait
    b.instance("S", 1, 0, 200);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(corpus.instances()[0]);
    ASSERT_FALSE(graph.roots().empty());
    EXPECT_EQ(graph.node(graph.roots()[0]).event.cost, 100);
}

TEST(Robustness, MaxNodesLimitTruncatesGracefully)
{
    // A wide fan of children under one wait; the node budget cuts it.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.wait(1, 0, st);
    for (int i = 0; i < 100; ++i)
        b.running(2, 10 + i, 1, st);
    b.unwait(2, 1000, 1, st);
    b.instance("S", 1, 0, 1100);
    b.finish();

    WaitGraphOptions options;
    options.maxNodes = 10;
    WaitGraphBuilder builder(corpus, options);
    const WaitGraph graph = builder.build(corpus.instances()[0]);
    EXPECT_LE(graph.size(), 10u);
    ASSERT_FALSE(graph.roots().empty());
    EXPECT_TRUE(graph.node(graph.roots()[0]).truncated);
}

} // namespace
} // namespace tracelens
