/**
 * @file
 * Unit tests for signature tuples and contrast mining.
 */

#include <gtest/gtest.h>

#include "src/awg/awg.h"
#include "src/mining/coverage.h"
#include "src/mining/miner.h"
#include "src/mining/signature.h"
#include "src/trace/builder.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens
{
namespace
{

NameFilter
drivers()
{
    return NameFilter({"*.sys"});
}

/** Aggregate the wait graphs of all instances of one scenario. */
AggregatedWaitGraph
awgOfScenario(const TraceCorpus &corpus, std::string_view scenario)
{
    WaitGraphBuilder wg_builder(corpus);
    std::vector<WaitGraph> graphs;
    const auto id = corpus.findScenario(scenario);
    for (std::uint32_t i : corpus.instancesOfScenario(id))
        graphs.push_back(wg_builder.build(corpus.instances()[i]));
    return AwgBuilder(corpus, drivers()).aggregate(graphs);
}

MiningOptions
testOptions()
{
    MiningOptions options;
    options.maxSegmentLength = 5;
    options.tFast = 300;
    options.tSlow = 500;
    return options;
}

TEST(SignatureSetTuple, NormalizeSortsAndDeduplicates)
{
    SignatureSetTuple t;
    t.waits = {5, 1, 5, 3};
    t.runnings = {2, 2};
    t.normalize();
    EXPECT_EQ(t.waits, (std::vector<FrameId>{1, 3, 5}));
    EXPECT_EQ(t.runnings, (std::vector<FrameId>{2}));
    EXPECT_EQ(t.totalSignatures(), 4u);
}

TEST(SignatureSetTuple, ContainsIsSubsetPerSet)
{
    SignatureSetTuple big;
    big.waits = {1, 2};
    big.unwaits = {3};
    big.runnings = {4, 5};

    SignatureSetTuple small;
    small.waits = {2};
    small.runnings = {4};
    EXPECT_TRUE(big.contains(small));
    EXPECT_FALSE(small.contains(big));

    SignatureSetTuple crossed;
    crossed.waits = {4}; // frame 4 is in big's runnings, not waits
    EXPECT_FALSE(big.contains(crossed));

    EXPECT_TRUE(big.contains(SignatureSetTuple{}));
}

TEST(SignatureSetTuple, HashAndEqualityAgree)
{
    SignatureSetTuple a, b;
    a.waits = {1, 2};
    b.waits = {1, 2};
    EXPECT_EQ(a, b);
    EXPECT_EQ(SignatureSetTupleHash{}(a), SignatureSetTupleHash{}(b));

    b.unwaits = {1};
    EXPECT_NE(a, b);
    // Moving a frame between sets must change the hash.
    SignatureSetTuple c;
    c.unwaits = {1, 2};
    EXPECT_NE(SignatureSetTupleHash{}(a), SignatureSetTupleHash{}(c));
}

TEST(SignatureSetTuple, RenderResolvesNames)
{
    SymbolTable sym;
    const FrameId f = sym.internFrame("fv.sys!Query");
    SignatureSetTuple t;
    t.waits = {f};
    t.runnings = {kNoFrame};
    const std::string text = t.render(sym);
    EXPECT_NE(text.find("fv.sys!Query"), std::string::npos);
    EXPECT_NE(text.find("<other>"), std::string::npos);
    EXPECT_NE(t.renderCompact(sym).find("fv.sys!Query"),
              std::string::npos);
}

TEST(Miner, MetaPatternEnumerationCountsSegments)
{
    // One slow instance: wait(fv) -> running(se) chain; segments of
    // length 1 and 2 produce three distinct tuples.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    const CallstackId se = b.stack({"w!T", "se.sys!Decrypt"});
    b.wait(1, 0, fv);
    b.running(2, 100, 200, se);
    b.unwait(2, 600, 1, fv);
    b.instance("Slow", 1, 0, 700);
    b.finish();

    const auto awg = awgOfScenario(corpus, "Slow");
    ContrastMiner miner(corpus, testOptions());
    const auto metas = miner.enumerateMetaPatterns(awg);

    // Segments: [wait], [wait,run], [run] -> 3 tuples.
    EXPECT_EQ(metas.size(), 3u);
}

TEST(Miner, SlowOnlyPatternIsDiscovered)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    const CallstackId se = b.stack({"w!T", "se.sys!Decrypt"});

    // Fast class: plain short driver wait.
    b.wait(1, 0, fv);
    b.unwait(9, 100, 1, fv);
    b.instance("Fast", 1, 0, 200);

    // Slow class: driver wait fed by a long decryption run.
    b.wait(2, 1000, fv);
    b.running(3, 1100, 600, se);
    b.unwait(3, 1800, 2, fv);
    b.instance("Slow", 2, 1000, 1900);
    b.finish();

    const auto fast = awgOfScenario(corpus, "Fast");
    const auto slow = awgOfScenario(corpus, "Slow");
    ContrastMiner miner(corpus, testOptions());
    const MiningResult result = miner.mine(fast, slow);

    ASSERT_FALSE(result.patterns.empty());
    EXPECT_GT(result.stats.slowOnlyContrasts, 0u);
    // The top pattern references the decrypting runner.
    const SymbolTable &sym = corpus.symbols();
    const std::string text = result.patterns[0].tuple.render(sym);
    EXPECT_NE(text.find("se.sys!Decrypt"), std::string::npos);
    EXPECT_NE(text.find("fv.sys!Query"), std::string::npos);
}

TEST(Miner, RatioCriterionRequiresThresholdExceedance)
{
    // The same tuple appears in both classes. Slow avg / fast avg is
    // 4000/1000 = 4.0 > Tslow/Tfast (500/300): contrast. A second
    // corpus where the ratio is 1.2 must NOT produce the contrast.
    auto makeCorpus = [](DurationNs slow_wait) {
        TraceCorpus corpus;
        StreamBuilder b(corpus, "s");
        const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
        b.wait(1, 0, fv);
        b.unwait(9, 1000, 1, fv); // fast: cost 1000
        b.instance("Fast", 1, 0, 1100);
        b.wait(2, 5000, fv);
        b.unwait(9, 5000 + slow_wait, 2, fv);
        b.instance("Slow", 2, 5000, 5000 + slow_wait + 100);
        b.finish();
        return corpus;
    };

    {
        const TraceCorpus corpus = makeCorpus(4000);
        ContrastMiner miner(corpus, testOptions());
        const auto result = miner.mine(awgOfScenario(corpus, "Fast"),
                                       awgOfScenario(corpus, "Slow"));
        EXPECT_EQ(result.stats.ratioContrasts, 1u);
        ASSERT_EQ(result.patterns.size(), 1u);
        EXPECT_EQ(result.patterns[0].cost, 4000);
    }
    {
        const TraceCorpus corpus = makeCorpus(1200);
        ContrastMiner miner(corpus, testOptions());
        const auto result = miner.mine(awgOfScenario(corpus, "Fast"),
                                       awgOfScenario(corpus, "Slow"));
        EXPECT_EQ(result.stats.ratioContrasts, 0u);
        EXPECT_TRUE(result.patterns.empty());
    }
}

TEST(Miner, ContentionOrderVariantsShareOnePattern)
{
    // Design rationale: two interleavings of the same contention (the
    // lock is won by A first or by B first) must map to one pattern.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    const CallstackId fs = b.stack({"app!W", "fs.sys!Acquire"});

    // Interleaving 1: fv-wait unwaited from fs-stack.
    b.wait(1, 0, fv);
    b.wait(2, 10, fs);
    b.unwait(9, 600, 2, fs);
    b.unwait(2, 700, 1, fs);
    b.instance("Slow", 1, 0, 800);

    // Interleaving 2 (other thread won first): same signatures, the
    // nested wait resolves from the same stacks but timing differs.
    b.wait(3, 1000, fv);
    b.wait(4, 1010, fs);
    b.unwait(9, 1650, 4, fs);
    b.unwait(4, 1700, 3, fs);
    b.instance("Slow", 3, 1000, 1800);
    b.finish();

    // Empty fast class: aggregate from an empty corpus view.
    TraceCorpus empty;
    AggregatedWaitGraph fast =
        AwgBuilder(empty, drivers()).aggregate({});

    const auto slow = awgOfScenario(corpus, "Slow");
    ContrastMiner miner(corpus, testOptions());
    const MiningResult result = miner.mine(fast, slow);

    ASSERT_EQ(result.patterns.size(), 1u);
    EXPECT_EQ(result.patterns[0].count, 2u);
}

TEST(Miner, RankingIsByAverageImpactDescending)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    const CallstackId net = b.stack({"app!U", "net.sys!Recv"});

    // Pattern A: one execution costing 5000.
    b.wait(1, 0, fv);
    b.unwait(9, 5000, 1, fv);
    b.instance("Slow", 1, 0, 5100);
    // Pattern B: two executions costing 600 each (avg 600).
    b.wait(2, 6000, net);
    b.unwait(9, 6600, 2, net);
    b.instance("Slow", 2, 6000, 6700);
    b.wait(3, 7000, net);
    b.unwait(9, 7600, 3, net);
    b.instance("Slow", 3, 7000, 7700);
    b.finish();

    TraceCorpus empty;
    const auto fast = AwgBuilder(empty, drivers()).aggregate({});
    const auto slow = awgOfScenario(corpus, "Slow");
    ContrastMiner miner(corpus, testOptions());
    const MiningResult result = miner.mine(fast, slow);

    ASSERT_EQ(result.patterns.size(), 2u);
    EXPECT_GT(result.patterns[0].impact(), result.patterns[1].impact());
    EXPECT_EQ(result.patterns[0].cost, 5000);
    EXPECT_EQ(result.patterns[1].count, 2u);
}

TEST(Miner, HighImpactRuleUsesMaxSingleExecution)
{
    ContrastPattern p;
    p.cost = 900;
    p.count = 3;
    p.maxExec = 450;
    EXPECT_FALSE(p.highImpact(500));
    p.maxExec = 501;
    EXPECT_TRUE(p.highImpact(500));
    EXPECT_DOUBLE_EQ(p.impact(), 300.0);
}

TEST(Miner, MetaPatternGateCanBeDisabled)
{
    // With the gate disabled, even non-contrast paths are emitted.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    // The identical behaviour in both classes (no contrast).
    b.wait(1, 0, fv);
    b.unwait(9, 400, 1, fv);
    b.instance("Fast", 1, 0, 500);
    b.wait(2, 1000, fv);
    b.unwait(9, 1400, 2, fv);
    b.instance("Slow", 2, 1000, 1500);
    b.finish();

    const auto fast = awgOfScenario(corpus, "Fast");
    const auto slow = awgOfScenario(corpus, "Slow");

    ContrastMiner gated(corpus, testOptions());
    EXPECT_TRUE(gated.mine(fast, slow).patterns.empty());

    MiningOptions open = testOptions();
    open.useMetaPatternGate = false;
    ContrastMiner ungated(corpus, open);
    EXPECT_EQ(ungated.mine(fast, slow).patterns.size(), 1u);
}

TEST(Miner, RejectsBadThresholds)
{
    TraceCorpus corpus;
    MiningOptions bad = testOptions();
    bad.tSlow = bad.tFast;
    EXPECT_DEATH({ ContrastMiner miner(corpus, bad); }, "thresholds");
}

TEST(Coverage, ItcNeverExceedsTtc)
{
    MiningResult result;
    ContrastPattern a;
    a.cost = 600;
    a.count = 1;
    a.maxExec = 600; // high impact (> 500)
    ContrastPattern b;
    b.cost = 400;
    b.count = 2;
    b.maxExec = 200; // low impact
    result.patterns = {a, b};

    const CoverageResult cov = computeCoverage(result, 2000, 500);
    EXPECT_DOUBLE_EQ(cov.itc(), 0.3);
    EXPECT_DOUBLE_EQ(cov.ttc(), 0.5);
    EXPECT_LE(cov.itc(), cov.ttc());
    EXPECT_EQ(cov.highImpactCount, 1u);
    EXPECT_NE(cov.render().find("ITC"), std::string::npos);
}

TEST(Coverage, TopPatternCoverageMonotone)
{
    MiningResult result;
    for (int i = 0; i < 10; ++i) {
        ContrastPattern p;
        p.cost = 1000 - i * 100;
        p.count = 1;
        result.patterns.push_back(p);
    }
    double prev = 0.0;
    for (double f : {0.1, 0.2, 0.3, 0.5, 1.0}) {
        const double c = topPatternCoverage(result, f);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(topPatternCoverage(result, 1.0), 1.0);
    // Top 10% of 10 patterns is the single heaviest one.
    EXPECT_NEAR(topPatternCoverage(result, 0.1), 1000.0 / 5500.0, 1e-9);
}

TEST(Coverage, EmptyResultIsZero)
{
    MiningResult result;
    EXPECT_DOUBLE_EQ(topPatternCoverage(result, 0.5), 0.0);
    const CoverageResult cov = computeCoverage(result, 0, 500);
    EXPECT_DOUBLE_EQ(cov.itc(), 0.0);
    EXPECT_DOUBLE_EQ(cov.ttc(), 0.0);
}

} // namespace
} // namespace tracelens
