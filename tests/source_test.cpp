/**
 * @file
 * Tests for the streaming ingestion layer (src/trace/source.h): eager
 * vs mmap equivalence, the byte-budget LRU shard cache, corrupt-shard
 * isolation, and hostile-input robustness of the bounds-checked
 * parser.
 */

#include <unistd.h>

#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/analyzer.h"
#include "src/core/report.h"
#include "src/trace/builder.h"
#include "src/trace/mmapreader.h"
#include "src/trace/serialize.h"
#include "src/trace/source.h"
#include "src/trace/validate.h"
#include "src/workload/generator.h"
#include "src/workload/scenarios.h"

namespace tracelens
{
namespace
{

namespace fs = std::filesystem;

/**
 * Fresh scratch directory under /tmp, removed on destruction. The
 * path embeds the process id: this file builds into more than one
 * test binary, and ctest -j runs those binaries concurrently, so a
 * fixed name would let two processes stomp each other's fixtures.
 */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(fs::temp_directory_path() /
                ("tracelens_source_test_" +
                 std::to_string(::getpid()) + "_" + name))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }

    const fs::path &path() const { return path_; }
    std::string str() const { return path_.string(); }
    std::string file(const std::string &name) const
    {
        return (path_ / name).string();
    }

  private:
    fs::path path_;
};

CorpusSpec
smallSpec()
{
    CorpusSpec spec;
    spec.machines = 10;
    spec.seed = 777;
    return spec;
}

/** Thresholds for every catalog scenario present in @p corpus. */
std::vector<ScenarioThresholds>
catalogThresholds(const TraceCorpus &corpus)
{
    std::vector<ScenarioThresholds> scenarios;
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.selected &&
            corpus.findScenario(spec.name) != UINT32_MAX)
            scenarios.push_back({spec.name, spec.tFast, spec.tSlow});
    }
    return scenarios;
}

/** The full analysis report a source yields — the equivalence probe. */
std::string
reportFor(TraceSource &source)
{
    Analyzer analyzer(source);
    return buildReport(analyzer, catalogThresholds(analyzer.corpus()));
}

/** A tiny hand-built corpus serialized to bytes (for fuzz loops). */
std::vector<std::byte>
tinyCorpusBytes()
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "machine-x");
    const CallstackId app = b.stack({"app!Main", "fs.sys!Read"});
    const CallstackId drv = b.stack({"se.sys!Decrypt"});
    b.running(1, 0, 100, app);
    b.wait(1, 100, app);
    b.running(2, 100, 50, drv);
    b.unwait(2, 150, 1, drv);
    b.running(1, 150, 30, app);
    b.instance("S", 1, 0, 200);
    b.finish();

    std::ostringstream oss;
    writeCorpus(corpus, oss);
    const std::string raw = oss.str();
    std::vector<std::byte> bytes(raw.size());
    std::memcpy(bytes.data(), raw.data(), raw.size());
    return bytes;
}

// ------------------------------------------------- eager/mmap equivalence

TEST(Source, EagerAndMmapReportsAreIdentical)
{
    const ScratchDir dir("equiv");
    const TraceCorpus corpus = generateCorpus(smallSpec());

    const std::string single = dir.file("corpus.tlc");
    writeCorpusFile(corpus, single);
    const std::string sharded = dir.file("shards");
    writeShardedCorpusDir(corpus, sharded, 4);

    // Reference: the in-memory corpus through the legacy wrapper. A
    // serialized round-trip reproduces interning order, so the
    // single-file reports must equal this byte for byte. The sharded
    // layout re-interns symbols per shard (different ids, same
    // semantics), so it gets its own reference; eager and mmap must
    // still agree byte for byte within the layout.
    EagerSource reference(corpus);
    const std::string expected = reportFor(reference);
    ASSERT_FALSE(expected.empty());

    SourceOptions eager_opts, mmap_opts;
    mmap_opts.useMmap = true;
    for (const std::string &path : {single, sharded}) {
        std::vector<std::string> reports;
        for (const SourceOptions &opts : {eager_opts, mmap_opts}) {
            auto source = openSource(path, opts);
            ASSERT_TRUE(source.ok()) << source.error().render();
            reports.push_back(reportFor(*source.value()));
            EXPECT_EQ(source.value()->stats().skippedShards, 0u);
        }
        EXPECT_EQ(reports[0], reports[1]) << "eager != mmap: " << path;
        if (path == single) {
            EXPECT_EQ(reports[0], expected);
        }
    }
}

TEST(Source, CompressedCorpusYieldsIdenticalReports)
{
    const ScratchDir dir("compressed");
    const TraceCorpus corpus = generateCorpus(smallSpec());

    CorpusWriteOptions packed;
    packed.compressEvents = true;
    const std::string raw = dir.file("raw.tlc");
    const std::string compact = dir.file("compact.tlc");
    writeCorpusFile(corpus, raw);
    writeCorpusFile(corpus, compact, packed);
    const std::string shards = dir.file("shards");
    writeShardedCorpusDir(corpus, shards, 4, packed);

    // The delta encoding has to actually pay for its format tag.
    EXPECT_LT(fs::file_size(compact), fs::file_size(raw));

    EagerSource reference(corpus);
    const std::string expected = reportFor(reference);

    SourceOptions eager_opts, mmap_opts;
    mmap_opts.useMmap = true;
    for (const std::string &path : {raw, compact, shards}) {
        for (const SourceOptions &opts : {eager_opts, mmap_opts}) {
            auto source = openSource(path, opts);
            ASSERT_TRUE(source.ok()) << source.error().render();
            EXPECT_EQ(source.value()->stats().skippedShards, 0u);
            if (path != shards) {
                EXPECT_EQ(reportFor(*source.value()), expected)
                    << path << (opts.useMmap ? " (mmap)" : " (eager)");
            }
        }
    }

    // Sharded compressed and sharded raw agree with each other even
    // though per-shard re-interning keeps them off the single-file
    // reference.
    const std::string rawShards = dir.file("raw-shards");
    writeShardedCorpusDir(corpus, rawShards, 4);
    auto a = openSource(shards), b = openSource(rawShards);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(reportFor(*a.value()), reportFor(*b.value()));
}

TEST(Source, ShardSummariesMatchBetweenPaths)
{
    const ScratchDir dir("summaries");
    const std::string sharded = dir.file("shards");
    writeShardedCorpusDir(generateCorpus(smallSpec()), sharded, 5);

    SourceOptions mmap_opts;
    mmap_opts.useMmap = true;
    auto eager = openSource(sharded);
    auto mapped = openSource(sharded, mmap_opts);
    ASSERT_TRUE(eager.ok() && mapped.ok());
    ASSERT_EQ(eager.value()->shardCount(), mapped.value()->shardCount());

    for (std::size_t i = 0; i < eager.value()->shardCount(); ++i) {
        auto a = eager.value()->summarize(i);
        auto b = mapped.value()->summarize(i);
        ASSERT_TRUE(a.ok() && b.ok());
        EXPECT_EQ(a.value().path, b.value().path);
        EXPECT_EQ(a.value().fileBytes, b.value().fileBytes);
        EXPECT_EQ(a.value().events, b.value().events);
        EXPECT_EQ(a.value().scenarios, b.value().scenarios);
        ASSERT_EQ(a.value().instances.size(), b.value().instances.size());
        for (std::size_t j = 0; j < a.value().instances.size(); ++j) {
            EXPECT_EQ(a.value().instances[j].scenario,
                      b.value().instances[j].scenario);
            EXPECT_EQ(a.value().instances[j].t0,
                      b.value().instances[j].t0);
            EXPECT_EQ(a.value().instances[j].t1,
                      b.value().instances[j].t1);
        }
    }
}

TEST(Source, ShardedDirectoryEqualsMonolithicFile)
{
    // The sharded layout must analyze identically to the single file
    // it was split from (lazy re-interning in appendCorpusStreams).
    const ScratchDir dir("split");
    const TraceCorpus corpus = generateCorpus(smallSpec());
    const std::string sharded = dir.file("shards");
    writeShardedCorpusDir(corpus, sharded, 3);

    auto source = openSource(sharded);
    ASSERT_TRUE(source.ok());
    const TraceCorpus &merged = source.value()->corpus();
    EXPECT_EQ(merged.streamCount(), corpus.streamCount());
    EXPECT_EQ(merged.totalEvents(), corpus.totalEvents());
    EXPECT_EQ(merged.instances().size(), corpus.instances().size());

    EagerSource mono_source(corpus);
    const ImpactResult a = Analyzer(mono_source).impactAll();
    const ImpactResult b = Analyzer(*source.value()).impactAll();
    EXPECT_EQ(a.dScn, b.dScn);
    EXPECT_EQ(a.dWait, b.dWait);
    EXPECT_EQ(a.dRun, b.dRun);
    EXPECT_EQ(a.dWaitDist, b.dWaitDist);
}

// ----------------------------------------------------------- LRU cache

TEST(Source, CacheEvictsUnderTinyBudgetAndStaysCorrect)
{
    const ScratchDir dir("cache");
    const std::string sharded = dir.file("shards");
    writeShardedCorpusDir(generateCorpus(smallSpec()), sharded, 5);

    SourceOptions opts;
    opts.useMmap = true;
    opts.cacheBytes = 1; // every shard overflows the budget
    auto opened = openSource(sharded, opts);
    ASSERT_TRUE(opened.ok());
    TraceSource &source = *opened.value();

    // Handles taken before evictions must stay valid throughout.
    auto first = source.shard(0);
    ASSERT_TRUE(first.ok());
    const std::uint64_t first_events = first.value()->totalEvents();
    EXPECT_GT(first_events, 0u);

    std::vector<std::uint64_t> events(source.shardCount());
    for (std::size_t i = 0; i < source.shardCount(); ++i) {
        auto shard = source.shard(i);
        ASSERT_TRUE(shard.ok());
        events[i] = shard.value()->totalEvents();
    }
    EXPECT_GT(source.stats().cacheEvictions, 0u);
    EXPECT_LE(source.stats().residentBytes, estimateCorpusBytes(
                                                *first.value()) *
                                                source.shardCount());

    // Re-materializing an evicted shard reproduces the same contents.
    for (std::size_t i = 0; i < source.shardCount(); ++i) {
        auto shard = source.shard(i);
        ASSERT_TRUE(shard.ok());
        EXPECT_EQ(shard.value()->totalEvents(), events[i]);
    }
    EXPECT_EQ(first.value()->totalEvents(), first_events);
}

TEST(Source, MostRecentShardSurvivesOversizedBudget)
{
    const ScratchDir dir("mru");
    const std::string sharded = dir.file("shards");
    writeShardedCorpusDir(generateCorpus(smallSpec()), sharded, 2);

    SourceOptions opts;
    opts.useMmap = true;
    opts.cacheBytes = 1;
    auto opened = openSource(sharded, opts);
    ASSERT_TRUE(opened.ok());
    TraceSource &source = *opened.value();

    ASSERT_TRUE(source.shard(0).ok());
    const std::size_t misses = source.stats().cacheMisses;
    ASSERT_TRUE(source.shard(0).ok()); // MRU kept despite the budget
    EXPECT_EQ(source.stats().cacheMisses, misses);
    EXPECT_GT(source.stats().cacheHits, 0u);
}

// ----------------------------------------------------- error isolation

TEST(Source, CorruptShardIsSkippedAndReported)
{
    const ScratchDir dir("corrupt");
    const std::string sharded = dir.file("shards");
    const auto paths =
        writeShardedCorpusDir(generateCorpus(smallSpec()), sharded, 4);
    ASSERT_EQ(paths.size(), 4u);

    // Tally the instances the healthy shards contribute.
    std::size_t good_instances = 0;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        if (i == 2)
            continue;
        auto part = readCorpusFileChecked(paths[i]);
        ASSERT_TRUE(part.ok());
        good_instances += part.value().instances().size();
    }

    // Wreck shard 2: keep the magic, garbage after it.
    {
        std::ofstream out(paths[2], std::ios::binary | std::ios::trunc);
        out << "TLC1 this is not a corpus";
    }

    SourceOptions eager_opts, mmap_opts;
    mmap_opts.useMmap = true;
    for (const SourceOptions &opts : {eager_opts, mmap_opts}) {
        auto opened = openSource(sharded, opts);
        ASSERT_TRUE(opened.ok());
        TraceSource &source = *opened.value();

        const TraceCorpus &merged = source.corpus(); // never fatal
        EXPECT_EQ(merged.instances().size(), good_instances);

        const IngestStats &stats = source.stats();
        EXPECT_EQ(stats.shards, 4u);
        EXPECT_EQ(stats.loadedShards, 3u);
        EXPECT_EQ(stats.skippedShards, 1u);
        ASSERT_EQ(stats.errors.size(), 1u);
        EXPECT_NE(stats.errors[0].file.find("shard-0002"),
                  std::string::npos);
        EXPECT_FALSE(stats.errors[0].reason.empty());
        EXPECT_FALSE(source.summarize(2).ok());
        EXPECT_FALSE(source.shard(2).ok());
        // Repeated access must not double-count the skip.
        EXPECT_EQ(source.stats().skippedShards, 1u);

        const ValidationReport report = validateSource(source);
        EXPECT_EQ(report.skippedShards, 1u);
        EXPECT_FALSE(report.clean());
        EXPECT_NE(report.render().find("load error"),
                  std::string::npos);
    }
}

TEST(Source, OpenSourceRejectsMissingAndEmptyPaths)
{
    const ScratchDir dir("open");
    EXPECT_FALSE(openSource(dir.file("nope.tlc")).ok());
    // A directory with no *.tlc shards is an error up front.
    fs::create_directories(dir.file("empty"));
    auto empty = openSource(dir.file("empty"));
    ASSERT_FALSE(empty.ok());
    EXPECT_NE(empty.error().reason.find("no"), std::string::npos);
}

// ------------------------------------------------- hostile-input fuzzing

TEST(Source, ParseCorpusSurvivesEveryTruncation)
{
    const std::vector<std::byte> bytes = tinyCorpusBytes();
    ASSERT_TRUE(
        parseCorpus({bytes.data(), bytes.size()}, "full").ok());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        auto result = parseCorpus({bytes.data(), len}, "trunc");
        EXPECT_FALSE(result.ok()) << "prefix of " << len << " bytes";
        EXPECT_LE(result.error().offset, len);
    }
}

TEST(Source, ParseCorpusSurvivesEveryByteFlip)
{
    const std::vector<std::byte> bytes = tinyCorpusBytes();
    std::size_t rejected = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::vector<std::byte> mutated = bytes;
        mutated[i] ^= std::byte{0xFF};
        // Must either reject cleanly or decode something; never crash
        // or read out of bounds (the ASan preset checks the latter).
        auto result =
            parseCorpus({mutated.data(), mutated.size()}, "flip");
        if (!result.ok())
            ++rejected;
    }
    EXPECT_GT(rejected, 0u);
}

TEST(Source, ParseCorpusRejectsImpossibleCounts)
{
    // A frame count of 0xFFFFFFFF cannot fit in the file; the parser
    // must reject it up front instead of attempting the allocation.
    std::vector<std::byte> bytes = tinyCorpusBytes();
    const std::size_t frame_count_at = 8; // magic + version
    ASSERT_GE(bytes.size(), frame_count_at + 4);
    std::memset(bytes.data() + frame_count_at, 0xFF, 4);
    auto result = parseCorpus({bytes.data(), bytes.size()}, "huge");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().reason.find("corpus"), std::string::npos);
}

TEST(Source, MmapReaderRejectsCorruptFilesCleanly)
{
    const ScratchDir dir("reader");
    const std::vector<std::byte> bytes = tinyCorpusBytes();
    for (std::size_t len = 0; len < bytes.size(); len += 7) {
        const std::string path = dir.file("t.tlc");
        std::ofstream(path, std::ios::binary | std::ios::trunc)
            .write(reinterpret_cast<const char *>(bytes.data()),
                   static_cast<std::streamsize>(len));
        auto reader = MmapReader::open(path);
        EXPECT_FALSE(reader.ok()) << "prefix of " << len << " bytes";
    }
}

TEST(Source, BorrowingEagerSourceIsTheCorpusCompatibilityPath)
{
    // A corpus wrapped in a borrowing EagerSource analyzes without a
    // copy and yields the same results as any other source of it.
    const TraceCorpus corpus = generateCorpus(smallSpec());
    EagerSource borrowed(corpus);
    Analyzer current(borrowed);
    EXPECT_EQ(&current.source(), &borrowed);
    EXPECT_EQ(&current.corpus(), &corpus); // aliased, not merged

    EagerSource again(corpus);
    Analyzer other(again);
    EXPECT_EQ(current.impactAll().dWait, other.impactAll().dWait);
}

} // namespace
} // namespace tracelens
