/**
 * @file
 * Property-based tests: invariants that must hold on *any* generated
 * corpus, swept over seeds and fleet shapes with parameterized gtest.
 */

#include <map>
#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/core/analyzer.h"
#include "src/mining/coverage.h"
#include "src/trace/csv.h"
#include "src/trace/serialize.h"
#include "src/trace/validate.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace
{

struct CorpusParam
{
    std::uint64_t seed;
    std::uint32_t machines;
};

void
PrintTo(const CorpusParam &p, std::ostream *os)
{
    *os << "seed" << p.seed << "_machines" << p.machines;
}

class CorpusProperty : public testing::TestWithParam<CorpusParam>
{
  protected:
    static const TraceCorpus &
    corpus()
    {
        // Cache per parameter: corpora are expensive to regenerate for
        // every property.
        static std::map<std::pair<std::uint64_t, std::uint32_t>,
                        TraceCorpus>
            cache;
        const auto key = std::make_pair(GetParam().seed,
                                        GetParam().machines);
        auto it = cache.find(key);
        if (it == cache.end()) {
            CorpusSpec spec;
            spec.seed = GetParam().seed;
            spec.machines = GetParam().machines;
            it = cache.emplace(key, generateCorpus(spec)).first;
        }
        return it->second;
    }
};

TEST_P(CorpusProperty, TracesAreStructurallySound)
{
    const ValidationReport report = validateCorpus(corpus());
    EXPECT_EQ(report.strayUnwaits, 0u) << report.render();
    EXPECT_EQ(report.selfUnwaits, 0u) << report.render();
    EXPECT_EQ(report.stacklessEvents, 0u) << report.render();
}

TEST_P(CorpusProperty, EventsAreTimeOrderedWithinStreams)
{
    const TraceCorpus &c = corpus();
    for (std::uint32_t s = 0; s < c.streamCount(); ++s) {
        TimeNs last = std::numeric_limits<TimeNs>::min();
        for (const Event &e : c.stream(s).events()) {
            EXPECT_GE(e.timestamp, last);
            EXPECT_GE(e.cost, 0);
            last = e.timestamp;
        }
    }
}

TEST_P(CorpusProperty, ImpactInvariants)
{
    EagerSource analyzer_source(corpus());
    Analyzer analyzer(analyzer_source);
    const ImpactResult impact = analyzer.impactAll();

    EXPECT_GE(impact.dWait, impact.dWaitDist);
    EXPECT_GE(impact.dWaitDist, 0);
    EXPECT_GE(impact.iaOpt(), 0.0);
    EXPECT_LE(impact.iaWait(), 1.0 + 1e-9);
    EXPECT_GE(impact.iaWait(), 0.0);
    EXPECT_GE(impact.iaRun(), 0.0);
    if (impact.dWaitDist > 0) {
        EXPECT_GE(impact.waitAmplification(), 1.0);
    }
}

TEST_P(CorpusProperty, PerScenarioImpactPartitionsTotals)
{
    EagerSource analyzer_source(corpus());
    Analyzer analyzer(analyzer_source);
    const ImpactResult total = analyzer.impactAll();
    const auto per = analyzer.impactPerScenario();

    DurationNs scn = 0, run = 0;
    std::size_t instances = 0;
    for (const auto &[id, result] : per) {
        scn += result.dScn;
        run += result.dRun;
        instances += result.instances;
    }
    EXPECT_EQ(scn, total.dScn);
    EXPECT_EQ(run, total.dRun);
    EXPECT_EQ(instances, total.instances);
    // D_wait also partitions (it is per-instance); D_waitdist does not
    // (scenario-local dedup keeps more duplicates than global dedup).
    DurationNs wait = 0, waitdist = 0;
    for (const auto &[id, result] : per) {
        wait += result.dWait;
        waitdist += result.dWaitDist;
    }
    EXPECT_EQ(wait, total.dWait);
    EXPECT_GE(waitdist, total.dWaitDist);
}

TEST_P(CorpusProperty, WaitGraphChildCostsAreWindowClipped)
{
    const TraceCorpus &c = corpus();
    WaitGraphBuilder builder(c);
    for (const ScenarioInstance &instance : c.instances()) {
        const WaitGraph graph = builder.build(instance);
        for (const auto &node : graph.nodes()) {
            for (std::uint32_t child : graph.children(node)) {
                EXPECT_LE(graph.node(child).event.cost,
                          node.event.cost);
            }
        }
    }
}

TEST_P(CorpusProperty, WaitGraphEventsAreUniquePerGraph)
{
    const TraceCorpus &c = corpus();
    WaitGraphBuilder builder(c);
    for (const ScenarioInstance &instance : c.instances()) {
        const WaitGraph graph = builder.build(instance);
        std::unordered_set<EventRef, EventRefHash> seen;
        for (const auto &node : graph.nodes())
            EXPECT_TRUE(seen.insert(node.ref).second);
    }
}

TEST_P(CorpusProperty, BinarySerializationRoundTripsExactly)
{
    std::stringstream first;
    writeCorpus(corpus(), first);
    const TraceCorpus copy = readCorpus(first);
    std::stringstream second;
    writeCorpus(copy, second);
    EXPECT_EQ(first.str(), second.str());
}

TEST_P(CorpusProperty, CsvAndBinaryAgreeOnEventCounts)
{
    std::ostringstream events, instances;
    writeEventsCsv(corpus(), events);
    writeInstancesCsv(corpus(), instances);
    std::istringstream ein(events.str()), iin(instances.str());
    const TraceCorpus copy = readCorpusCsv(ein, iin);
    EXPECT_EQ(copy.totalEvents(), corpus().totalEvents());
    EXPECT_EQ(copy.instances().size(), corpus().instances().size());
    EXPECT_EQ(copy.streamCount(), corpus().streamCount());
}

TEST_P(CorpusProperty, ScenarioAnalysisInvariants)
{
    EagerSource analyzer_source(corpus());
    Analyzer analyzer(analyzer_source);
    for (const ScenarioSpec &scn : scenarioCatalog()) {
        if (corpus().findScenario(scn.name) == UINT32_MAX)
            continue;
        const ScenarioAnalysis analysis = analyzer.analyzeScenario(
            scn.name, scn.tFast, scn.tSlow);

        // Classes partition instances of the scenario.
        const auto all = corpus().instancesOfScenario(
            corpus().findScenario(scn.name));
        EXPECT_EQ(analysis.classes.fast.size() +
                      analysis.classes.middle.size() +
                      analysis.classes.slow.size(),
                  all.size());

        // Coverage sanity.
        EXPECT_LE(analysis.coverage.itc(),
                  analysis.coverage.ttc() + 1e-9);
        EXPECT_GE(analysis.coverage.itc(), 0.0);
        EXPECT_GE(analysis.nonOptimizableShare(), 0.0);
        EXPECT_LE(analysis.nonOptimizableShare(), 1.0);

        // Ranking is by impact, descending; tuples are canonical.
        double last = std::numeric_limits<double>::infinity();
        for (const ContrastPattern &p : analysis.mining.patterns) {
            EXPECT_LE(p.impact(), last + 1e-9);
            last = p.impact();
            SignatureSetTuple normalized = p.tuple;
            normalized.normalize();
            EXPECT_EQ(normalized, p.tuple);
            EXPECT_GT(p.count, 0u);
            EXPECT_GE(p.cost, 0);
            EXPECT_LE(p.maxExec, p.cost);
        }

        // Ranked coverage is monotone in the inspected fraction.
        double prev = 0.0;
        for (double f : {0.1, 0.2, 0.3, 0.5, 1.0}) {
            const double cov = topPatternCoverage(analysis.mining, f);
            EXPECT_GE(cov, prev - 1e-9);
            prev = cov;
        }
        if (!analysis.mining.patterns.empty() &&
            analysis.mining.totalPatternCost() > 0) {
            EXPECT_NEAR(topPatternCoverage(analysis.mining, 1.0), 1.0,
                        1e-9);
        }

        // AWG structural sanity: no node reachable twice from roots.
        std::unordered_set<std::uint32_t> visited;
        std::vector<std::uint32_t> stack(
            analysis.awgSlow.roots().begin(),
            analysis.awgSlow.roots().end());
        while (!stack.empty()) {
            const std::uint32_t id = stack.back();
            stack.pop_back();
            EXPECT_TRUE(visited.insert(id).second)
                << "AWG node " << id << " reachable twice";
            for (std::uint32_t child :
                 analysis.awgSlow.node(id).children)
                stack.push_back(child);
        }
    }
}

TEST_P(CorpusProperty, GenerationIsDeterministic)
{
    CorpusSpec spec;
    spec.seed = GetParam().seed;
    spec.machines = GetParam().machines;
    const TraceCorpus again = generateCorpus(spec);
    std::ostringstream a, b;
    writeCorpus(corpus(), a);
    writeCorpus(again, b);
    EXPECT_EQ(a.str(), b.str());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CorpusProperty,
    testing::Values(CorpusParam{1, 6}, CorpusParam{2, 6},
                    CorpusParam{3, 10}, CorpusParam{20140301, 8},
                    CorpusParam{0xdeadbeef, 12}),
    [](const testing::TestParamInfo<CorpusParam> &info) {
        return "seed" + std::to_string(info.param.seed) + "x" +
               std::to_string(info.param.machines);
    });

/** Mining determinism on a fixed corpus. */
TEST(MiningProperty, MiningIsDeterministic)
{
    CorpusSpec spec;
    spec.machines = 8;
    spec.seed = 99;
    const TraceCorpus corpus = generateCorpus(spec);

    auto run = [&] {
        EagerSource analyzer_source(corpus);
        Analyzer analyzer(analyzer_source);
        const ScenarioAnalysis analysis = analyzer.analyzeScenario(
            "WebPageNavigation", fromMs(500), fromMs(1000));
        std::ostringstream oss;
        for (const ContrastPattern &p : analysis.mining.patterns) {
            oss << p.tuple.renderCompact(corpus.symbols()) << "|"
                << p.cost << "|" << p.count << "\n";
        }
        return oss.str();
    };
    EXPECT_EQ(run(), run());
}

/** Larger k never loses patterns relative to k-1 on the same corpus. */
TEST(MiningProperty, MetaPatternsGrowMonotonicallyWithK)
{
    CorpusSpec spec;
    spec.machines = 6;
    spec.seed = 5;
    spec.onlyScenarios = {"BrowserTabCreate"};
    const TraceCorpus corpus = generateCorpus(spec);

    std::size_t last = 0;
    for (std::uint32_t k = 1; k <= 6; ++k) {
        AnalyzerConfig config;
        config.maxSegmentLength = k;
        EagerSource analyzer_source(corpus);
        Analyzer analyzer(analyzer_source, config);
        const ScenarioAnalysis analysis = analyzer.analyzeScenario(
            "BrowserTabCreate", fromMs(300), fromMs(500));
        EXPECT_GE(analysis.mining.stats.slowMetaPatterns, last);
        last = analysis.mining.stats.slowMetaPatterns;
    }
}

} // namespace
} // namespace tracelens
