/**
 * @file
 * Edge-case tests for the contrast miner: threshold boundaries,
 * zero-cost patterns, deep chains, and empty classes.
 */

#include <gtest/gtest.h>

#include "src/awg/awg.h"
#include "src/mining/miner.h"
#include "src/trace/builder.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens
{
namespace
{

NameFilter
drivers()
{
    return NameFilter({"*.sys"});
}

AggregatedWaitGraph
awgOfScenario(const TraceCorpus &corpus, std::string_view scenario)
{
    WaitGraphBuilder builder(corpus);
    std::vector<WaitGraph> graphs;
    const auto id = corpus.findScenario(scenario);
    if (id != UINT32_MAX) {
        for (std::uint32_t i : corpus.instancesOfScenario(id))
            graphs.push_back(builder.build(corpus.instances()[i]));
    }
    return AwgBuilder(corpus, drivers()).aggregate(graphs);
}

MiningOptions
options(DurationNs t_fast = 300, DurationNs t_slow = 500)
{
    MiningOptions o;
    o.tFast = t_fast;
    o.tSlow = t_slow;
    return o;
}

TEST(MinerEdge, RatioExactlyAtThresholdIsNotAContrast)
{
    // slow avg / fast avg == Tslow/Tfast exactly: criterion is strict
    // '>', so not a contrast.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    b.wait(1, 0, fv);
    b.unwait(9, 300, 1, fv); // fast cost 300
    b.instance("Fast", 1, 0, 400);
    b.wait(2, 1000, fv);
    b.unwait(9, 1500, 2, fv); // slow cost 500; 500/300 == Tslow/Tfast
    b.instance("Slow", 2, 1000, 1600);
    b.finish();

    ContrastMiner miner(corpus, options(300, 500));
    const MiningResult result = miner.mine(
        awgOfScenario(corpus, "Fast"), awgOfScenario(corpus, "Slow"));
    EXPECT_EQ(result.stats.ratioContrasts, 0u);
    EXPECT_TRUE(result.patterns.empty());
}

TEST(MinerEdge, ZeroCostFastPatternMakesAnySlowCostAContrast)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    // Fast: wait resolved instantaneously (cost 0).
    b.wait(1, 100, fv);
    b.unwait(9, 100, 1, fv);
    b.instance("Fast", 1, 0, 200);
    // Slow: same tuple with real cost.
    b.wait(2, 1000, fv);
    b.unwait(9, 1400, 2, fv);
    b.instance("Slow", 2, 1000, 1500);
    b.finish();

    ContrastMiner miner(corpus, options());
    const MiningResult result = miner.mine(
        awgOfScenario(corpus, "Fast"), awgOfScenario(corpus, "Slow"));
    EXPECT_EQ(result.stats.ratioContrasts, 1u);
    ASSERT_EQ(result.patterns.size(), 1u);
}

TEST(MinerEdge, EmptyFastClassMakesEverySlowPatternSlowOnly)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    b.wait(1, 0, fv);
    b.unwait(9, 400, 1, fv);
    b.instance("Slow", 1, 0, 500);
    b.finish();

    TraceCorpus empty;
    const AggregatedWaitGraph fast =
        AwgBuilder(empty, drivers()).aggregate({});
    ContrastMiner miner(corpus, options());
    const MiningResult result =
        miner.mine(fast, awgOfScenario(corpus, "Slow"));
    EXPECT_EQ(result.stats.fastMetaPatterns, 0u);
    EXPECT_GT(result.stats.slowOnlyContrasts, 0u);
    EXPECT_EQ(result.patterns.size(), 1u);
}

TEST(MinerEdge, EmptySlowClassYieldsNothing)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    b.wait(1, 0, fv);
    b.unwait(9, 100, 1, fv);
    b.instance("Fast", 1, 0, 200);
    b.finish();

    TraceCorpus empty;
    const AggregatedWaitGraph slow =
        AwgBuilder(empty, drivers()).aggregate({});
    ContrastMiner miner(corpus, options());
    const MiningResult result =
        miner.mine(awgOfScenario(corpus, "Fast"), slow);
    EXPECT_TRUE(result.patterns.empty());
    EXPECT_EQ(result.stats.fullPaths, 0u);
}

TEST(MinerEdge, DeepChainYieldsOnePatternPerLeaf)
{
    // A 6-deep wait chain: one full path, one pattern; meta-patterns
    // grow with k but the pattern set does not.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    for (ThreadId t = 1; t <= 5; ++t) {
        b.wait(t, 100 + t,
               b.stack({"app!W",
                        "d" + std::to_string(t) + ".sys!Op"}));
    }
    b.running(6, 200, 50,
              b.stack({"w!T", "d6.sys!Compute"}));
    for (ThreadId t = 6; t >= 2; --t) {
        b.unwait(t, 1000 + (6 - t), t - 1,
                 b.stack({"app!W",
                          "d" + std::to_string(t) + ".sys!Op"}));
    }
    b.instance("Slow", 1, 0, 2000);
    b.finish();

    TraceCorpus empty;
    const AggregatedWaitGraph fast =
        AwgBuilder(empty, drivers()).aggregate({});
    for (std::uint32_t k : {1u, 3u, 6u}) {
        MiningOptions o = options();
        o.maxSegmentLength = k;
        ContrastMiner miner(corpus, o);
        const MiningResult result =
            miner.mine(fast, awgOfScenario(corpus, "Slow"));
        EXPECT_EQ(result.patterns.size(), 1u) << "k=" << k;
        // The single pattern's tuple contains all six driver modules.
        EXPECT_EQ(result.patterns[0].tuple.waits.size(), 5u);
    }
}

TEST(MinerEdge, MergedPatternAggregatesAcrossOrderings)
{
    // Same signature multiset reached via two different AWG paths
    // (different orders) merges into one ranked pattern with N=2.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId a = b.stack({"app!U", "a.sys!Op"});
    const CallstackId c = b.stack({"app!W", "c.sys!Op"});

    // Instance 1: wait(a) <- wait(c).
    b.wait(1, 0, a);
    b.wait(2, 10, c);
    b.unwait(9, 400, 2, c);
    b.unwait(2, 500, 1, a);
    b.instance("Slow", 1, 0, 600);
    // Instance 2: wait(c) <- wait(a).
    b.wait(3, 1000, c);
    b.wait(4, 1010, a);
    b.unwait(9, 1400, 4, a);
    b.unwait(4, 1500, 3, c);
    b.instance("Slow", 3, 1000, 1600);
    b.finish();

    TraceCorpus empty;
    const AggregatedWaitGraph fast =
        AwgBuilder(empty, drivers()).aggregate({});
    ContrastMiner miner(corpus, options());
    const MiningResult result =
        miner.mine(fast, awgOfScenario(corpus, "Slow"));
    ASSERT_EQ(result.patterns.size(), 1u);
    EXPECT_EQ(result.patterns[0].count, 2u);
}

} // namespace
} // namespace tracelens
