/**
 * @file
 * Unit tests for the columnar event storage (src/trace/columns.h):
 * AoS-view / SoA-storage round trips, the materializing EventView
 * iterator, thread-slot densification, wait/unwait pairing parity
 * against a hash-map reference, effective-end restoration, and the
 * bulk TLC1 record decoder's validation sweeps — including the
 * negative-cost and interval-overflow checks the column split added.
 */

#include <algorithm>
#include <cstring>
#include <deque>
#include <random>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/trace/builder.h"
#include "src/trace/columns.h"
#include "src/trace/stream.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace
{

bool
sameEvent(const Event &a, const Event &b)
{
    return a.timestamp == b.timestamp && a.cost == b.cost &&
           a.tid == b.tid && a.wtid == b.wtid && a.stack == b.stack &&
           a.type == b.type;
}

std::vector<Event>
mixedEvents()
{
    return {
        {100, 10, 1, kNoThread, 0, EventType::Running},
        {110, 0, 2, kNoThread, 1, EventType::Wait},
        {120, 5, 3, kNoThread, kNoCallstack, EventType::HardwareService},
        {150, 0, 3, 2, 2, EventType::Unwait},
        {160, 40, 2, kNoThread, 1, EventType::Running},
    };
}

TEST(EventColumns, AppendRoundTripsThroughGatherAndSpans)
{
    const std::vector<Event> events = mixedEvents();
    EventColumns columns;
    columns.reserve(events.size());
    for (const Event &e : events)
        columns.append(e);

    ASSERT_EQ(columns.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_TRUE(sameEvent(columns[i], events[i])) << "event " << i;
        EXPECT_EQ(columns.timestamps()[i], events[i].timestamp);
        EXPECT_EQ(columns.costs()[i], events[i].cost);
        EXPECT_EQ(columns.tids()[i], events[i].tid);
        EXPECT_EQ(columns.wtids()[i], events[i].wtid);
        EXPECT_EQ(columns.stacks()[i], events[i].stack);
        EXPECT_EQ(columns.types()[i], events[i].type);
    }
    EXPECT_EQ(columns.maxEnd(), 200); // 160 + 40
    EXPECT_GT(columns.residentBytes(), 0u);

    columns.clear();
    EXPECT_TRUE(columns.empty());
    EXPECT_EQ(columns.maxEnd(), 0);
}

TEST(EventColumns, ViewIteratesMaterializedEventsInOrder)
{
    const std::vector<Event> events = mixedEvents();
    EventColumns columns;
    for (const Event &e : events)
        columns.append(e);

    const EventView view = columns.view();
    ASSERT_EQ(view.size(), events.size());
    EXPECT_TRUE(sameEvent(view.front(), events.front()));
    EXPECT_TRUE(sameEvent(view.back(), events.back()));

    // Range-for materializes each event by value; lifetime extension
    // makes const-reference binding work too.
    std::size_t i = 0;
    for (const Event &e : view)
        EXPECT_TRUE(sameEvent(e, events[i++]));
    EXPECT_EQ(i, events.size());
}

TEST(EventColumns, ViewIteratorIsRandomAccess)
{
    EventColumns columns;
    for (const Event &e : mixedEvents())
        columns.append(e);
    const EventView view = columns.view();

    auto it = view.begin();
    EXPECT_EQ((*(it + 3)).timestamp, 150);
    EXPECT_EQ(it[4].timestamp, 160);
    it += 2;
    EXPECT_EQ((*it).timestamp, 120);
    --it;
    EXPECT_EQ((*it).timestamp, 110);
    EXPECT_EQ(view.end() - view.begin(),
              static_cast<std::ptrdiff_t>(view.size()));
    EXPECT_TRUE(view.begin() < view.end());

    // Reverse walk via the random-access interface.
    std::vector<TimeNs> reversed;
    for (auto rit = view.end(); rit != view.begin();)
        reversed.push_back((*--rit).timestamp);
    EXPECT_EQ(reversed,
              (std::vector<TimeNs>{160, 150, 120, 110, 100}));
}

TEST(TraceStream, AdoptReplacesEventsAndRecomputesEndTime)
{
    EventColumns columns;
    for (const Event &e : mixedEvents())
        columns.append(e);

    TraceStream stream;
    stream.adopt(std::move(columns));
    EXPECT_EQ(stream.size(), 5u);
    EXPECT_EQ(stream.endTime(), 200);
    EXPECT_TRUE(sameEvent(stream.event(3), mixedEvents()[3]));
}

TEST(ThreadSlotMap, DensifiesSparseTidsIntoSortedSlots)
{
    const std::vector<ThreadId> tids = {900001, 7, 900001, 42,
                                        7,      7, 123456, 42};
    ThreadSlotMap map;
    std::vector<std::uint32_t> slot_of_event;
    map.build(tids, slot_of_event);

    ASSERT_EQ(map.slots(), 4u);
    const std::vector<ThreadId> expected_ids = {7, 42, 123456, 900001};
    EXPECT_TRUE(std::equal(map.ids().begin(), map.ids().end(),
                           expected_ids.begin(), expected_ids.end()));

    // Slot ids are ranks in sorted-tid order, not first-seen order.
    ASSERT_EQ(slot_of_event.size(), tids.size());
    for (std::size_t i = 0; i < tids.size(); ++i) {
        EXPECT_EQ(map.ids()[slot_of_event[i]], tids[i]) << "event " << i;
        EXPECT_EQ(map.slotOf(tids[i]), slot_of_event[i]);
    }
    EXPECT_EQ(map.slotOf(5), kNoEventIndex);
    EXPECT_EQ(map.slotOf(900002), kNoEventIndex);
}

TEST(ThreadSlotMap, SurvivesRehashWithThousandsOfThreads)
{
    std::mt19937_64 rng(7);
    std::vector<ThreadId> tids;
    for (std::uint32_t t = 0; t < 5000; ++t) {
        // Scatter the values; duplicates exercise insert-or-find.
        tids.push_back(t * 977 + 13);
        if (t % 3 == 0)
            tids.push_back(t * 977 + 13);
    }
    std::shuffle(tids.begin(), tids.end(), rng);

    ThreadSlotMap map;
    std::vector<std::uint32_t> slot_of_event;
    map.build(tids, slot_of_event);

    ASSERT_EQ(map.slots(), 5000u);
    EXPECT_TRUE(
        std::is_sorted(map.ids().begin(), map.ids().end()));
    for (std::size_t i = 0; i < tids.size(); ++i)
        ASSERT_EQ(map.ids()[slot_of_event[i]], tids[i]);
    EXPECT_EQ(map.slotOf(2), kNoEventIndex); // 13 mod 977 pattern miss
}

/** The pre-refactor pairing: a hash map of per-thread FIFO deques. */
std::vector<std::uint32_t>
referencePairing(const EventColumns &events)
{
    std::vector<std::uint32_t> paired(events.size(), kNoEventIndex);
    std::unordered_map<ThreadId, std::deque<std::uint32_t>> outstanding;
    for (std::uint32_t i = 0; i < events.size(); ++i) {
        const Event e = events[i];
        if (e.type == EventType::Wait) {
            outstanding[e.tid].push_back(i);
        } else if (e.type == EventType::Unwait && e.wtid != e.tid) {
            auto it = outstanding.find(e.wtid);
            if (it != outstanding.end() && !it->second.empty()) {
                paired[it->second.front()] = i;
                it->second.pop_front();
            }
        }
    }
    return paired;
}

TEST(PairWaitsFifo, MatchesHashMapReferenceOnSeededCorpora)
{
    for (std::uint64_t seed : {11ull, 23ull, 2014ull}) {
        CorpusSpec spec;
        spec.machines = 3;
        spec.seed = seed;
        const TraceCorpus corpus = generateCorpus(spec);
        for (std::uint32_t s = 0; s < corpus.streamCount(); ++s) {
            const EventColumns &columns = corpus.stream(s).columns();
            std::vector<std::uint32_t> paired;
            pairWaitsFifo(columns, paired);
            EXPECT_EQ(paired, referencePairing(columns))
                << "seed " << seed << " stream " << s;
        }
    }
}

TEST(PairWaitsFifo, ExplicitSlotOverloadMatchesConvenienceOverload)
{
    CorpusSpec spec;
    spec.machines = 2;
    spec.seed = 99;
    const TraceCorpus corpus = generateCorpus(spec);
    for (std::uint32_t s = 0; s < corpus.streamCount(); ++s) {
        const EventColumns &columns = corpus.stream(s).columns();
        std::vector<std::uint32_t> convenience;
        pairWaitsFifo(columns, convenience);

        ThreadSlotMap map;
        std::vector<std::uint32_t> slot_of_event;
        map.build(columns.tids(), slot_of_event);
        std::vector<std::uint32_t> explicit_slots;
        pairWaitsFifo(columns, map, slot_of_event, explicit_slots);
        EXPECT_EQ(convenience, explicit_slots) << "stream " << s;
    }
}

TEST(PairWaitsFifo, FifoOrderAndSelfUnwaitSemantics)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.wait(1, 100, st);       // 0: first outstanding wait of tid 1
    b.wait(1, 200, st);       // 1: second outstanding wait of tid 1
    b.unwait(1, 250, 1, st);  // 2: self-unwait — must not pair
    b.unwait(2, 300, 1, st);  // 3: pairs the *oldest* wait (0)
    b.unwait(2, 400, 1, st);  // 4: pairs wait 1
    b.unwait(2, 500, 9, st);  // 5: unknown thread — no pairing
    b.finish();

    std::vector<std::uint32_t> paired;
    pairWaitsFifo(corpus.stream(0).columns(), paired);
    EXPECT_EQ(paired[0], 3u);
    EXPECT_EQ(paired[1], 4u);
    for (std::size_t i = 2; i < paired.size(); ++i)
        EXPECT_EQ(paired[i], kNoEventIndex);
}

TEST(ComputeEffectiveEnds, RestoresWaitsAndDefaultsIntervals)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.running(2, 50, 25, st); // 0: ends at 75
    b.wait(1, 100, st);       // 1: paired, restored to 300
    b.unwait(2, 300, 1, st);  // 2: instantaneous
    b.wait(1, 400, st);       // 3: unpaired, restored to stream end
    b.running(2, 450, 50, st); // 4: ends at 500 (the stream end)
    b.finish();

    const TraceStream &stream = corpus.stream(0);
    std::vector<std::uint32_t> paired;
    pairWaitsFifo(stream.columns(), paired);
    std::vector<TimeNs> ends;
    computeEffectiveEnds(stream.columns(), paired, stream.endTime(),
                         ends);
    EXPECT_EQ(ends[0], 75);
    EXPECT_EQ(ends[1], 300);
    EXPECT_EQ(ends[2], 300);
    EXPECT_EQ(ends[3], stream.endTime());
    EXPECT_EQ(ends[4], 500);
}

// ---- bulk TLC1 record decode ---------------------------------------

constexpr std::size_t kRecordBytes = 32;

/** Serialize one event as a TLC1 32-byte little-endian record. */
void
putRecord(std::vector<std::byte> &out, std::int64_t ts,
          std::int64_t cost, std::uint32_t tid, std::uint32_t wtid,
          std::uint32_t stack, std::uint32_t type)
{
    const std::size_t base = out.size();
    out.resize(base + kRecordBytes);
    std::memcpy(out.data() + base + 0, &ts, 8);
    std::memcpy(out.data() + base + 8, &cost, 8);
    std::memcpy(out.data() + base + 16, &tid, 4);
    std::memcpy(out.data() + base + 20, &wtid, 4);
    std::memcpy(out.data() + base + 24, &stack, 4);
    std::memcpy(out.data() + base + 28, &type, 4);
}

TEST(TlcRecordDecode, AcceptsValidRecordsAndMaterializesColumns)
{
    std::vector<std::byte> raw;
    putRecord(raw, 100, 10, 1, UINT32_MAX, 0, 0); // Running
    putRecord(raw, 110, 0, 2, UINT32_MAX, 1, 1);  // Wait
    putRecord(raw, 150, 0, 3, 2, kNoCallstack, 2); // Unwait, no stack

    EventColumns columns;
    const auto issue = columns.appendTlcRecords(raw, 3, 2);
    ASSERT_FALSE(issue.has_value());
    ASSERT_EQ(columns.size(), 3u);
    EXPECT_EQ(columns[0].timestamp, 100);
    EXPECT_EQ(columns[0].cost, 10);
    EXPECT_EQ(columns[1].type, EventType::Wait);
    EXPECT_EQ(columns[2].wtid, 2u);
    EXPECT_EQ(columns[2].stack, kNoCallstack);
}

TEST(TlcRecordDecode, RejectsInvalidTypeWithIndexAndRawValue)
{
    std::vector<std::byte> raw;
    putRecord(raw, 100, 10, 1, UINT32_MAX, 0, 0);
    putRecord(raw, 110, 10, 1, UINT32_MAX, 0, 9); // bad type 9

    EventColumns columns;
    const auto issue = columns.appendTlcRecords(raw, 2, 1);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->index, 1u);
    EXPECT_EQ(issue->reason, "corpus event has invalid type 9");
    EXPECT_EQ(columns.size(), 0u); // full rollback
}

TEST(TlcRecordDecode, RejectsUnknownStackReference)
{
    std::vector<std::byte> raw;
    putRecord(raw, 100, 10, 1, UINT32_MAX, 5, 0); // stack 5 of 2

    EventColumns columns;
    const auto issue = columns.appendTlcRecords(raw, 1, 2);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->index, 0u);
    EXPECT_EQ(issue->reason, "corpus event references unknown stack");
}

TEST(TlcRecordDecode, RejectsNegativeCost)
{
    // Regression: the scalar decoder accepted a negative cost, which
    // made effective ends precede timestamps and flipped window
    // arithmetic downstream. The columnar sweep rejects it.
    std::vector<std::byte> raw;
    putRecord(raw, 100, 10, 1, UINT32_MAX, 0, 0);
    putRecord(raw, 110, -5, 1, UINT32_MAX, 0, 0);

    EventColumns columns;
    const auto issue = columns.appendTlcRecords(raw, 2, 1);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->index, 1u);
    EXPECT_EQ(issue->reason, "corpus event has negative cost");
    EXPECT_EQ(columns.size(), 0u);
}

TEST(TlcRecordDecode, RejectsIntervalOverflowingTheTimeAxis)
{
    // Regression: timestamp + cost close to INT64_MAX wrapped negative
    // in end() and corrupted the stream-end computation. The decoder
    // now rejects the interval outright.
    std::vector<std::byte> raw;
    putRecord(raw, INT64_MAX - 4, 10, 1, UINT32_MAX, 0, 0);

    EventColumns columns;
    const auto issue = columns.appendTlcRecords(raw, 1, 1);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->index, 0u);
    EXPECT_EQ(issue->reason,
              "corpus event interval overflows the time axis");
}

TEST(TlcRecordDecode, RejectsOutOfOrderTimestamps)
{
    std::vector<std::byte> raw;
    putRecord(raw, 200, 10, 1, UINT32_MAX, 0, 0);
    putRecord(raw, 100, 10, 1, UINT32_MAX, 0, 0); // goes backwards

    EventColumns columns;
    const auto issue = columns.appendTlcRecords(raw, 2, 1);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->index, 1u);
    EXPECT_EQ(issue->reason, "corpus events out of time order");
}

TEST(TlcRecordDecode, OrderCheckSpansAppendBatches)
{
    // The monotonicity sweep must seed from the last already-adopted
    // timestamp, not restart at each batch boundary.
    std::vector<std::byte> first;
    putRecord(first, 500, 10, 1, UINT32_MAX, 0, 0);
    std::vector<std::byte> second;
    putRecord(second, 400, 10, 1, UINT32_MAX, 0, 0);

    EventColumns columns;
    ASSERT_FALSE(columns.appendTlcRecords(first, 1, 1).has_value());
    const auto issue = columns.appendTlcRecords(second, 1, 1);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->index, 0u);
    EXPECT_EQ(issue->reason, "corpus events out of time order");
    EXPECT_EQ(columns.size(), 1u); // only the bad batch rolled back
}

TEST(TlcRecordDecode, ReportsFirstOffenderWithFieldPriority)
{
    // One record violating several checks at once must surface the
    // scalar parser's field order: type before stack before cost.
    std::vector<std::byte> raw;
    putRecord(raw, 100, -1, 1, UINT32_MAX, 77, 9);

    EventColumns columns;
    const auto issue = columns.appendTlcRecords(raw, 1, 1);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->reason, "corpus event has invalid type 9");
}

TEST(TraceCorpus, InstanceColumnsStayAlignedWithInstances)
{
    TraceCorpus corpus;
    corpus.addStream("s");
    const std::uint32_t fast = corpus.internScenario("Fast");
    const std::uint32_t slow = corpus.internScenario("Slow");
    corpus.addInstance({0, fast, 1, 100, 400});
    corpus.addInstance({0, slow, 2, 100, 900});
    corpus.addInstance({0, fast, 3, 200, 300});

    const auto durations = corpus.instanceDurations();
    const auto scenarios = corpus.instanceScenarios();
    ASSERT_EQ(durations.size(), corpus.instances().size());
    ASSERT_EQ(scenarios.size(), corpus.instances().size());
    for (std::size_t i = 0; i < corpus.instances().size(); ++i) {
        EXPECT_EQ(durations[i], corpus.instances()[i].duration());
        EXPECT_EQ(scenarios[i], corpus.instances()[i].scenario);
    }
    EXPECT_EQ(corpus.instancesOfScenario(fast),
              (std::vector<std::uint32_t>{0, 2}));
}

} // namespace
} // namespace tracelens
