/**
 * @file
 * Thread-safety tests for the arena-backed wait-graph builder, meant
 * to run under ThreadSanitizer (the `tsan` ctest label). Every graph
 * owns its node list and edge arena outright and each worker thread
 * keeps its own BuildScratch, so parallel builds must race on nothing
 * and produce bit-identical forests at every thread count.
 */

#include <vector>

#include <gtest/gtest.h>

#include "src/waitgraph/waitgraph.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace
{

/** Structural equality: roots, node payloads, and arena child spans. */
void
expectGraphsEqual(const WaitGraph &a, const WaitGraph &b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.roots(), b.roots());
    for (std::uint32_t i = 0; i < a.size(); ++i) {
        const WaitGraph::Node &na = a.node(i);
        const WaitGraph::Node &nb = b.node(i);
        ASSERT_EQ(na.ref.stream, nb.ref.stream) << "node " << i;
        ASSERT_EQ(na.ref.index, nb.ref.index) << "node " << i;
        ASSERT_EQ(na.event.timestamp, nb.event.timestamp);
        ASSERT_EQ(na.event.cost, nb.event.cost);
        ASSERT_EQ(na.event.tid, nb.event.tid);
        ASSERT_EQ(na.event.type, nb.event.type);
        ASSERT_EQ(na.unwaitStack, nb.unwaitStack);
        ASSERT_EQ(na.truncated, nb.truncated);
        const auto ca = a.children(na);
        const auto cb = b.children(nb);
        ASSERT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin(),
                               cb.end()))
            << "children of node " << i;
    }
}

TraceCorpus
seededCorpus(std::uint64_t seed, std::uint32_t machines = 3)
{
    CorpusSpec spec;
    spec.machines = machines;
    spec.seed = seed;
    return generateCorpus(spec);
}

TEST(ArenaParallel, BuildAllParallelMatchesSerialAtEveryThreadCount)
{
    const TraceCorpus corpus = seededCorpus(101);
    WaitGraphBuilder builder(corpus);
    const std::vector<WaitGraph> serial = builder.buildAll();
    ASSERT_FALSE(serial.empty());

    for (unsigned threads : {2u, 4u, 8u}) {
        const std::vector<WaitGraph> parallel =
            builder.buildAllParallel(threads);
        ASSERT_EQ(parallel.size(), serial.size())
            << threads << " threads";
        for (std::size_t g = 0; g < serial.size(); ++g)
            expectGraphsEqual(serial[g], parallel[g]);
    }
}

TEST(ArenaParallel, BuildRangeParallelMatchesFullBuildSlice)
{
    const TraceCorpus corpus = seededCorpus(202);
    WaitGraphBuilder builder(corpus);
    const std::vector<WaitGraph> all = builder.buildAll();
    const auto total = static_cast<std::uint32_t>(all.size());
    ASSERT_GT(total, 4u);

    // Cover a middle slice, the two edges, and the full range.
    const std::uint32_t mid_first = total / 3;
    const std::uint32_t mid_count = total / 2 - mid_first;
    const struct
    {
        std::uint32_t first, count;
    } ranges[] = {{0, 3},
                  {mid_first, mid_count},
                  {total - 2, 2},
                  {0, total}};
    for (const auto &r : ranges) {
        const std::vector<WaitGraph> slice =
            builder.buildRangeParallel(r.first, r.count, 4);
        ASSERT_EQ(slice.size(), r.count);
        for (std::uint32_t g = 0; g < r.count; ++g)
            expectGraphsEqual(all[r.first + g], slice[g]);
    }
}

TEST(ArenaParallel, ConcurrentRangesFromOneBuilderDoNotInterfere)
{
    // The incremental pipeline runs shard ranges through one shared
    // builder; the per-stream index cache and the per-thread scratch
    // (including its adaptive reserve hints) must tolerate that.
    const TraceCorpus corpus = seededCorpus(303);
    WaitGraphBuilder builder(corpus);
    const std::vector<WaitGraph> all = builder.buildAll();
    const auto total = static_cast<std::uint32_t>(all.size());
    const std::uint32_t half = total / 2;

    for (int round = 0; round < 3; ++round) {
        const std::vector<WaitGraph> lo =
            builder.buildRangeParallel(0, half, 3);
        const std::vector<WaitGraph> hi =
            builder.buildRangeParallel(half, total - half, 3);
        ASSERT_EQ(lo.size() + hi.size(), all.size());
        for (std::uint32_t g = 0; g < half; ++g)
            expectGraphsEqual(all[g], lo[g]);
        for (std::uint32_t g = half; g < total; ++g)
            expectGraphsEqual(all[g], hi[g - half]);
    }
}

TEST(ArenaParallel, ScratchReuseKeepsRepeatedBuildsIdentical)
{
    // Worker threads reuse an epoch-stamped scratch across builds; a
    // stale visited stamp or reserve hint must never leak into the
    // next graph. Build the same instance repeatedly, interleaved with
    // larger builds that stretch the scratch.
    const TraceCorpus corpus = seededCorpus(404, 2);
    WaitGraphBuilder builder(corpus);
    ASSERT_FALSE(corpus.instances().empty());
    const ScenarioInstance &probe = corpus.instances().front();

    const WaitGraph first = builder.build(probe);
    for (int round = 0; round < 4; ++round) {
        const std::vector<WaitGraph> bulk = builder.buildAllParallel(2);
        ASSERT_FALSE(bulk.empty());
        const WaitGraph again = builder.build(probe);
        expectGraphsEqual(first, again);
    }
}

} // namespace
} // namespace tracelens
