/**
 * @file
 * Self-telemetry tests: the log-scale histogram's percentile accuracy,
 * the metrics registry (identity, kind separation, mergeInto, JSON),
 * span recording across work-stealing pool threads (validated through
 * a real JSON parser against the Chrome trace_event contract), the
 * leveled logging sink, and a registry/span race test for the tsan
 * preset: ctest --preset tsan-telemetry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry.h"

namespace tracelens
{
namespace
{

// ------------------------------------------------------- a JSON parser
// Minimal but strict recursive-descent JSON parser: the trace export
// claims to be Chrome trace_event JSON, so the tests hold it to actual
// JSON grammar instead of grepping for substrings.

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue *find(const std::string &key) const
    {
        auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    bool parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return pos_ == text_.size(); // no trailing garbage
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{':
            return parseObject(out);
        case '[':
            return parseArray(out);
        case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        default:
            return parseNumber(out);
        }
    }

    bool parseString(std::string &out)
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return false;
                const char esc = text_[pos_++];
                switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size())
                        return false;
                    // Escaped controls only need to round-trip, not
                    // decode: keep the raw sequence.
                    out += "\\u";
                    out += text_.substr(pos_, 4);
                    pos_ += 4;
                    break;
                }
                default:
                    return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false; // raw control characters are invalid
            } else {
                out += c;
            }
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return false;
        out.kind = JsonValue::Kind::Number;
        out.number = std::stod(std::string(text_.substr(
            start, pos_ - start)));
        return true;
    }

    bool parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue element;
            skipWs();
            if (!parseValue(element))
                return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || !parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace(std::move(key), std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

/** Reset every process-global telemetry knob between tests. */
struct TelemetryTest : ::testing::Test
{
    void SetUp() override
    {
        Telemetry::setEnabled(false);
        Telemetry::reset();
        setLogLevel(LogLevel::Info);
    }
    void TearDown() override
    {
        Telemetry::setEnabled(false);
        Telemetry::reset();
        setLogLevel(LogLevel::Info);
    }
};

// ------------------------------------------------------------ histogram

TEST(TelemetryHistogram, SmallValuesAreExact)
{
    Histogram h;
    for (std::uint64_t v = 0; v < 8; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 8u);
    EXPECT_EQ(h.sum(), 28u);
    EXPECT_EQ(h.max(), 7u);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(1.0), 7u);
    // 0..7 land in exact unit buckets, so every quantile is exact.
    EXPECT_EQ(h.percentile(0.5), 3u);
}

TEST(TelemetryHistogram, PercentilesOnUniformDistribution)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.max(), 1000u);
    // Log-scale buckets guarantee <= ~6% relative error; allow 8%.
    EXPECT_NEAR(static_cast<double>(h.percentile(0.50)), 500.0, 40.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.95)), 950.0, 76.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.99)), 990.0, 80.0);
    // Quantiles are clamped to the true maximum.
    EXPECT_LE(h.percentile(1.0), 1000u);
}

TEST(TelemetryHistogram, PercentileNeverExceedsMax)
{
    Histogram h;
    h.record(1000000);
    EXPECT_EQ(h.percentile(0.5), 1000000u);
    EXPECT_EQ(h.percentile(0.99), 1000000u);
}

TEST(TelemetryHistogram, MergeFoldsSamples)
{
    Histogram a, b;
    a.record(10);
    a.record(20);
    b.record(30);
    a.mergeFrom(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.sum(), 60u);
    EXPECT_EQ(a.max(), 30u);
}

// ------------------------------------------------------------- registry

TEST(TelemetryRegistry, HandlesAreStableAndShared)
{
    MetricsRegistry registry;
    Counter &c1 = registry.counter("test.counter");
    Counter &c2 = registry.counter("test.counter");
    EXPECT_EQ(&c1, &c2);
    c1.add(1);
    c2.add(2);
    EXPECT_EQ(c1.value(), 3u);

    registry.gauge("test.gauge").set(2.5);
    EXPECT_DOUBLE_EQ(registry.gauge("test.gauge").value(), 2.5);

    EXPECT_EQ(registry.findCounter("test.counter"), &c1);
    EXPECT_EQ(registry.findCounter("missing"), nullptr);
    EXPECT_EQ(registry.findCounter("test.gauge"), nullptr);
}

TEST(TelemetryRegistry, MergeIntoAddsCountersAndMergesHistograms)
{
    MetricsRegistry source, target;
    source.counter("m.count").add(5);
    source.gauge("m.gauge").set(0.75);
    source.histogram("m.hist").record(100);
    target.counter("m.count").add(3);
    target.histogram("m.hist").record(200);

    source.mergeInto(target);
    EXPECT_EQ(target.counter("m.count").value(), 8u);
    EXPECT_DOUBLE_EQ(target.gauge("m.gauge").value(), 0.75);
    EXPECT_EQ(target.histogram("m.hist").count(), 2u);
    EXPECT_EQ(target.histogram("m.hist").sum(), 300u);
}

TEST(TelemetryRegistry, RenderJsonIsValidAndComplete)
{
    MetricsRegistry registry;
    registry.counter("a.count").add(7);
    registry.gauge("a.gauge").set(0.5);
    Histogram &h = registry.histogram("a.hist");
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v);

    JsonValue root;
    ASSERT_TRUE(JsonParser(registry.renderJson()).parse(root));
    ASSERT_EQ(root.kind, JsonValue::Kind::Object);

    const JsonValue *counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->find("a.count"), nullptr);
    EXPECT_DOUBLE_EQ(counters->find("a.count")->number, 7.0);

    const JsonValue *gauges = root.find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_DOUBLE_EQ(gauges->find("a.gauge")->number, 0.5);

    const JsonValue *histograms = root.find("histograms");
    ASSERT_NE(histograms, nullptr);
    const JsonValue *hist = histograms->find("a.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->find("count")->number, 100.0);
    ASSERT_NE(hist->find("p50"), nullptr);
    ASSERT_NE(hist->find("p95"), nullptr);
    ASSERT_NE(hist->find("p99"), nullptr);
}

// ---------------------------------------------------------------- spans

TEST_F(TelemetryTest, DisabledSpansRecordNothing)
{
    ASSERT_FALSE(Telemetry::enabled());
    {
        Span outer("test.outer", "test");
        EXPECT_FALSE(outer.active());
        outer.arg("ignored", std::uint64_t{1});
        Span inner("test.inner", "test");
    }
    EXPECT_EQ(Telemetry::spanCount(), 0u);
}

TEST_F(TelemetryTest, EmptyTraceIsValidJson)
{
    JsonValue root;
    ASSERT_TRUE(JsonParser(Telemetry::renderChromeTrace()).parse(root));
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    // Only the process_name metadata event.
    ASSERT_EQ(events->array.size(), 1u);
    EXPECT_EQ(events->array[0].find("ph")->string, "M");
}

TEST_F(TelemetryTest, SpansNestAcrossPoolThreads)
{
    Telemetry::setEnabled(true);
    {
        Span root("test.root", "test");
        root.arg("kind", std::string("pool-fanout"));
        parallelFor(4, 0, 32, [](std::size_t i) {
            Span outer("test.item", "test");
            outer.arg("i", static_cast<std::uint64_t>(i));
            Span inner("test.leaf", "test");
        });
    }
    Telemetry::setEnabled(false);
    EXPECT_GE(Telemetry::spanCount(), 65u); // 1 root + 32 * 2 + workers

    JsonValue json;
    ASSERT_TRUE(JsonParser(Telemetry::renderChromeTrace()).parse(json));
    const JsonValue *events = json.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);

    struct Interval
    {
        double start, end;
        std::string name;
    };
    std::map<int, std::vector<Interval>> byTid;
    std::size_t leaves = 0, items = 0, roots = 0;
    for (const JsonValue &event : events->array) {
        if (event.find("ph")->string != "X")
            continue;
        const std::string &name = event.find("name")->string;
        const double ts = event.find("ts")->number;
        const double dur = event.find("dur")->number;
        const int tid = static_cast<int>(event.find("tid")->number);
        // Required Chrome trace_event fields and sane values.
        ASSERT_NE(event.find("pid"), nullptr);
        ASSERT_NE(event.find("cat"), nullptr);
        ASSERT_GE(dur, 0.0);
        ASSERT_NE(event.find("args"), nullptr);
        ASSERT_NE(event.find("args")->find("depth"), nullptr);
        ASSERT_NE(event.find("args")->find("cpu_us"), nullptr);
        byTid[tid].push_back({ts, ts + dur, name});
        leaves += name == "test.leaf";
        items += name == "test.item";
        roots += name == "test.root";
    }
    EXPECT_EQ(roots, 1u);
    EXPECT_EQ(items, 32u);
    EXPECT_EQ(leaves, 32u);

    for (const auto &[tid, intervals] : byTid) {
        // Per-thread timestamps are monotonic (export sorts by ts).
        for (std::size_t i = 1; i < intervals.size(); ++i)
            EXPECT_GE(intervals[i].start, intervals[i - 1].start);
        // RAII spans on one thread are strictly LIFO, so any two
        // spans of a thread are disjoint or one contains the other.
        for (std::size_t i = 0; i < intervals.size(); ++i) {
            for (std::size_t j = i + 1; j < intervals.size(); ++j) {
                const Interval &a = intervals[i];
                const Interval &b = intervals[j];
                const bool disjoint =
                    a.end <= b.start || b.end <= a.start;
                const bool aInB =
                    b.start <= a.start && a.end <= b.end;
                const bool bInA =
                    a.start <= b.start && b.end <= a.end;
                EXPECT_TRUE(disjoint || aInB || bInA)
                    << "overlapping non-nested spans on tid " << tid
                    << ": " << a.name << " [" << a.start << ", "
                    << a.end << ") vs " << b.name << " [" << b.start
                    << ", " << b.end << ")";
            }
        }
    }
}

TEST_F(TelemetryTest, ResetDropsRecordedSpans)
{
    Telemetry::setEnabled(true);
    { Span span("test.reset", "test"); }
    Telemetry::setEnabled(false);
    EXPECT_GE(Telemetry::spanCount(), 1u);
    Telemetry::reset();
    EXPECT_EQ(Telemetry::spanCount(), 0u);
}

TEST_F(TelemetryTest, SpanArgsAppearInTrace)
{
    Telemetry::setEnabled(true);
    {
        Span span("test.args", "test");
        span.arg("label", std::string("va\"lue"));
        span.arg("n", std::uint64_t{42});
    }
    Telemetry::setEnabled(false);

    JsonValue json;
    ASSERT_TRUE(JsonParser(Telemetry::renderChromeTrace()).parse(json));
    bool found = false;
    for (const JsonValue &event : json.find("traceEvents")->array) {
        const JsonValue *name = event.find("name");
        if (name == nullptr || name->string != "test.args")
            continue;
        found = true;
        const JsonValue *args = event.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_EQ(args->find("label")->string, "va\"lue");
        EXPECT_EQ(args->find("n")->string, "42");
    }
    EXPECT_TRUE(found);
}

// -------------------------------------------------------------- logging

TEST_F(TelemetryTest, LogLevelParses)
{
    LogLevel level = LogLevel::Off;
    EXPECT_TRUE(parseLogLevel("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(parseLogLevel("info", level));
    EXPECT_EQ(level, LogLevel::Info);
    EXPECT_TRUE(parseLogLevel("warn", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("error", level));
    EXPECT_EQ(level, LogLevel::Error);
    EXPECT_TRUE(parseLogLevel("off", level));
    EXPECT_EQ(level, LogLevel::Off);
    EXPECT_FALSE(parseLogLevel("verbose", level));
    EXPECT_FALSE(parseLogLevel("", level));
}

TEST_F(TelemetryTest, LogLevelFiltersMessages)
{
    std::ostringstream captured_out, captured_err;
    std::streambuf *old_out = std::cout.rdbuf(captured_out.rdbuf());
    std::streambuf *old_err = std::cerr.rdbuf(captured_err.rdbuf());

    TL_LOG(Debug, "hidden at info");
    TL_LOG(Info, "status line");
    TL_LOG(Warn, "warning line");
    TL_LOG(Error, "error line");

    setLogLevel(LogLevel::Error);
    TL_LOG(Info, "hidden at error");
    TL_LOG(Warn, "hidden at error");
    TL_LOG(Error, "second error");

    setLogLevel(LogLevel::Debug);
    TL_LOG(Debug, "debug line");

    setLogLevel(LogLevel::Off);
    TL_LOG(Error, "hidden at off");

    std::cout.rdbuf(old_out);
    std::cerr.rdbuf(old_err);

    // Info goes to stdout ("info: " prefix, the historical inform()
    // format); warn/error/debug go to stderr.
    EXPECT_EQ(captured_out.str(), "info: status line\n");
    const std::string err = captured_err.str();
    EXPECT_NE(err.find("warn: warning line\n"), std::string::npos);
    EXPECT_NE(err.find("error: error line\n"), std::string::npos);
    EXPECT_NE(err.find("error: second error\n"), std::string::npos);
    EXPECT_NE(err.find("debug: debug line\n"), std::string::npos);
    EXPECT_EQ(err.find("hidden"), std::string::npos);
}

// ------------------------------------------------------------ tsan race

TEST_F(TelemetryTest, ConcurrentRecordingAndFlushIsRaceFree)
{
    MetricsRegistry &global = MetricsRegistry::global();
    Telemetry::setEnabled(true);

    std::vector<std::thread> threads;
    threads.reserve(5);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&global, t] {
            for (int i = 0; i < 200; ++i) {
                Span span("test.race", "test");
                span.arg("t", static_cast<std::uint64_t>(t));
                global.counter("race.counter").add(1);
                global.histogram("race.hist").record(
                    static_cast<std::uint64_t>(i));
                global.gauge("race.gauge").set(static_cast<double>(i));
            }
        });
    }
    // One thread flushes concurrently with the recorders.
    threads.emplace_back([] {
        for (int i = 0; i < 20; ++i) {
            (void)Telemetry::renderChromeTrace();
            (void)Telemetry::spanCount();
            (void)MetricsRegistry::global().renderJson();
        }
    });
    for (std::thread &thread : threads)
        thread.join();
    Telemetry::setEnabled(false);

    EXPECT_EQ(global.counter("race.counter").value(), 800u);
    EXPECT_EQ(global.histogram("race.hist").count(), 800u);
    EXPECT_GE(Telemetry::spanCount(), 800u);
}

} // namespace
} // namespace tracelens
