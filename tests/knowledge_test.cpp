/**
 * @file
 * Tests for the by-design-behaviour knowledge filter (Section 5.2.5)
 * and the cross-scenario pattern index (Section 2.3).
 */

#include <gtest/gtest.h>

#include "src/mining/knowledge.h"
#include "src/mining/patternindex.h"

namespace tracelens
{
namespace
{

SignatureSetTuple
makeTuple(SymbolTable &sym,
          std::initializer_list<std::string_view> waits,
          std::initializer_list<std::string_view> unwaits,
          std::initializer_list<std::string_view> runnings)
{
    SignatureSetTuple tuple;
    for (auto s : waits)
        tuple.waits.push_back(sym.internFrame(s));
    for (auto s : unwaits)
        tuple.unwaits.push_back(sym.internFrame(s));
    for (auto s : runnings)
        tuple.runnings.push_back(sym.internFrame(s));
    tuple.normalize();
    return tuple;
}

ContrastPattern
makePattern(SignatureSetTuple tuple, DurationNs cost,
            std::uint64_t count)
{
    ContrastPattern p;
    p.tuple = std::move(tuple);
    p.cost = cost;
    p.count = count;
    p.maxExec = cost;
    return p;
}

TEST(Knowledge, MatchesAnySetOfTheTuple)
{
    SymbolTable sym;
    KnowledgeBase kb;
    kb.addRule("dp.sys", "by design");

    EXPECT_TRUE(kb.matches(
        makeTuple(sym, {"dp.sys!CheckMotion"}, {}, {}), sym));
    EXPECT_TRUE(kb.matches(
        makeTuple(sym, {}, {"dp.sys!MotionSensor"}, {}), sym));
    EXPECT_TRUE(kb.matches(
        makeTuple(sym, {}, {}, {"dp.sys!Spin"}), sym));
    EXPECT_FALSE(kb.matches(
        makeTuple(sym, {"fs.sys!Read"}, {"fv.sys!Q"}, {}), sym));
}

TEST(Knowledge, GlobRulesMatchComponents)
{
    SymbolTable sym;
    KnowledgeBase kb;
    kb.addRule("av_*.sys", "security software inspects by design");
    EXPECT_TRUE(kb.matches(
        makeTuple(sym, {"av_flt.sys!Inspect"}, {}, {}), sym));
    EXPECT_FALSE(kb.matches(
        makeTuple(sym, {"avocado.exe!Guac"}, {}, {}), sym));
}

TEST(Knowledge, ApplyPartitionsAndPreservesOrder)
{
    SymbolTable sym;
    KnowledgeBase kb;
    kb.addRule("dp.sys", "disk protection halts I/O by design");

    MiningResult result;
    result.patterns.push_back(makePattern(
        makeTuple(sym, {"fs.sys!Read"}, {}, {"DiskService"}), 900, 1));
    result.patterns.push_back(makePattern(
        makeTuple(sym, {"dp.sys!CheckMotion"}, {}, {}), 800, 1));
    result.patterns.push_back(makePattern(
        makeTuple(sym, {"fv.sys!Query"}, {}, {}), 700, 1));

    const FilteredMiningResult filtered = kb.apply(result, sym);
    ASSERT_EQ(filtered.kept.size(), 2u);
    ASSERT_EQ(filtered.suppressed.size(), 1u);
    EXPECT_EQ(filtered.kept[0].cost, 900);
    EXPECT_EQ(filtered.kept[1].cost, 700);
    EXPECT_EQ(filtered.suppressed[0].pattern.cost, 800);
    EXPECT_NE(filtered.suppressed[0].reason.find("by design"),
              std::string::npos);
}

TEST(Knowledge, DefaultsSuppressDiskProtection)
{
    SymbolTable sym;
    const KnowledgeBase kb = KnowledgeBase::defaults();
    EXPECT_GT(kb.ruleCount(), 0u);
    EXPECT_TRUE(kb.matches(
        makeTuple(sym, {"dp.sys!CheckMotion"}, {"dp.sys!MotionSensor"},
                  {}),
        sym));
    EXPECT_FALSE(kb.matches(
        makeTuple(sym, {"fs.sys!Read"}, {}, {}), sym));
}

TEST(PatternIndex, FindsPatternsBySignature)
{
    SymbolTable sym;
    const FrameId shared = sym.internFrame("se.sys!ReadDecrypt");

    MiningResult tab_create;
    tab_create.patterns.push_back(makePattern(
        makeTuple(sym, {"fv.sys!Query"}, {}, {"se.sys!ReadDecrypt"}),
        1000, 1));
    MiningResult navigation;
    navigation.patterns.push_back(makePattern(
        makeTuple(sym, {"fs.sys!Read"}, {"se.sys!ReadDecrypt"}, {}),
        4000, 2));
    navigation.patterns.push_back(makePattern(
        makeTuple(sym, {"net.sys!Send"}, {}, {}), 500, 1));

    PatternIndex index(sym);
    index.add("BrowserTabCreate", tab_create);
    index.add("WebPageNavigation", navigation);
    EXPECT_EQ(index.patternCount(), 3u);
    EXPECT_EQ(index.scenarioCount(), 2u);

    const auto hits = index.bySignature(shared);
    ASSERT_EQ(hits.size(), 2u);
    // Sorted by impact: 4000/2=2000 first, then 1000/1.
    EXPECT_EQ(hits[0].scenario, "WebPageNavigation");
    EXPECT_EQ(hits[1].scenario, "BrowserTabCreate");
    EXPECT_EQ(hits[0].rank, 0u);
}

TEST(PatternIndex, LookupByNameAndComponent)
{
    SymbolTable sym;
    MiningResult result;
    result.patterns.push_back(makePattern(
        makeTuple(sym, {"fv.sys!Query"}, {"fs.sys!Release"},
                  {"DiskService"}),
        100, 1));
    PatternIndex index(sym);
    index.add("S", result);

    EXPECT_EQ(index.bySignatureName("fv.sys!Query").size(), 1u);
    EXPECT_TRUE(index.bySignatureName("unknown!frame").empty());

    EXPECT_EQ(index.byComponent("*.sys").size(), 1u);
    EXPECT_EQ(index.byComponent("fs.sys").size(), 1u);
    EXPECT_TRUE(index.byComponent("net.sys").empty());
    // A pattern with several matching frames appears once.
    EXPECT_EQ(index.byComponent("f*.sys").size(), 1u);
}

TEST(PatternIndex, UnknownSignatureYieldsNothing)
{
    SymbolTable sym;
    PatternIndex index(sym);
    EXPECT_TRUE(index.bySignature(12345).empty());
    EXPECT_EQ(index.patternCount(), 0u);
}

} // namespace
} // namespace tracelens
