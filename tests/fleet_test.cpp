/**
 * @file
 * Tests for continuous fleet mode (src/fleet/): window bucketing and
 * eviction determinism, byte-identical rolling summaries under
 * shuffled shard arrival, the regression sentinel's exactly-once
 * firing, the alert JSON schema round trip, and the spool watcher's
 * rename-into-place discipline.
 */

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/fleet/alerts.h"
#include "src/fleet/fleet.h"
#include "src/fleet/sentinel.h"
#include "src/fleet/service.h"
#include "src/fleet/watcher.h"
#include "src/fleet/windows.h"
#include "src/trace/serialize.h"
#include "src/workload/generator.h"
#include "src/workload/scenarios.h"

namespace tracelens
{
namespace
{

namespace fs = std::filesystem;

constexpr std::uint64_t kWindowNs = 60ull * 1000 * 1000 * 1000;

/**
 * Fresh scratch directory under /tmp, removed on destruction. The
 * path embeds the process id: this file builds into more than one
 * test binary, and ctest -j runs those binaries concurrently, so a
 * fixed name would let two processes stomp each other's fixtures.
 */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(fs::temp_directory_path() /
                ("tracelens_fleet_test_" +
                 std::to_string(::getpid()) + "_" + name))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }

    const fs::path &path() const { return path_; }
    std::string str() const { return path_.string(); }
    std::string file(const std::string &name) const
    {
        return (path_ / name).string();
    }

  private:
    fs::path path_;
};

CorpusSpec
fleetSpec(std::uint64_t seed)
{
    CorpusSpec spec;
    spec.machines = 12;
    spec.seed = seed;
    return spec;
}

/** Shards named shard-NNNN.tlc in generation order. */
std::vector<std::pair<std::string, TraceCorpus>>
namedShards(const CorpusSpec &spec, std::size_t count)
{
    std::vector<TraceCorpus> shards =
        generateShardedCorpus(spec, count);
    std::vector<std::pair<std::string, TraceCorpus>> out;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        char name[32];
        std::snprintf(name, sizeof name, "shard-%04zu.tlc", i);
        out.emplace_back(name, std::move(shards[i]));
    }
    return out;
}

FleetWindowConfig
windowConfig(std::size_t maxWindows = 8)
{
    FleetWindowConfig config;
    config.windowNs = kWindowNs;
    config.maxWindows = maxWindows;
    return config;
}

TEST(FleetWindows, BucketingIsAPureFunctionOfTimestamp)
{
    WindowedAnalyzer windows(windowConfig());
    EXPECT_EQ(windows.windowOf(0), 0u);
    EXPECT_EQ(windows.windowOf(kWindowNs - 1), 0u);
    EXPECT_EQ(windows.windowOf(kWindowNs), 1u);
    EXPECT_EQ(windows.windowOf(17 * kWindowNs + 5), 17u);

    auto shards = namedShards(fleetSpec(41), 3);
    EXPECT_EQ(windows.addShard(shards[0].first,
                               std::move(shards[0].second), 10),
              0u);
    EXPECT_EQ(windows.addShard(shards[1].first,
                               std::move(shards[1].second),
                               kWindowNs + 10),
              1u);
    // Late arrival for the old window still lands in the old window:
    // membership depends on the stamp, never on arrival order.
    EXPECT_EQ(windows.addShard(shards[2].first,
                               std::move(shards[2].second), 20),
              0u);

    const std::vector<WindowInfo> infos = windows.windows();
    ASSERT_EQ(infos.size(), 2u);
    EXPECT_EQ(infos[0].id, 0u);
    EXPECT_EQ(infos[0].shards, 2u);
    EXPECT_EQ(infos[1].id, 1u);
    EXPECT_EQ(infos[1].shards, 1u);
    EXPECT_EQ(windows.currentWindow(), std::uint64_t{1});
    EXPECT_EQ(windows.shardCount(), 3u);
}

TEST(FleetWindows, EvictionKeepsNewestWindowsAndReportsNames)
{
    WindowedAnalyzer windows(windowConfig(2));
    auto shards = namedShards(fleetSpec(42), 4);
    for (std::size_t i = 0; i < shards.size(); ++i)
        windows.addShard(shards[i].first,
                         std::move(shards[i].second),
                         i * kWindowNs);

    std::vector<std::string> evicted = windows.evictExpired();
    std::sort(evicted.begin(), evicted.end());
    EXPECT_EQ(evicted, (std::vector<std::string>{
                           "shard-0000.tlc", "shard-0001.tlc"}));
    EXPECT_EQ(windows.allWindows(),
              (std::vector<std::uint64_t>{2, 3}));
    EXPECT_EQ(windows.shardCount(), 2u);
    // Idempotent once within budget.
    EXPECT_TRUE(windows.evictExpired().empty());
}

TEST(FleetWindows, SummariesAreByteIdenticalUnderShuffledArrival)
{
    const ScenarioSpec &scn = scenarioByName("FileOpen");
    auto ordered = namedShards(fleetSpec(43), 6);
    auto shuffled = namedShards(fleetSpec(43), 6);
    // Timestamp of shard i: shards 0..2 in window 0, 3..5 in window 1.
    const auto stampOf = [](std::size_t i) {
        return (i / 3) * kWindowNs + (i % 3) * 1000;
    };

    WindowedAnalyzer a(windowConfig());
    for (std::size_t i = 0; i < ordered.size(); ++i)
        a.addShard(ordered[i].first, std::move(ordered[i].second),
                   stampOf(i));

    // Worst-case interleaving: newest first.
    WindowedAnalyzer b(windowConfig());
    for (std::size_t i = shuffled.size(); i-- > 0;)
        b.addShard(shuffled[i].first, std::move(shuffled[i].second),
                   stampOf(i));

    const std::vector<std::uint64_t> all{0, 1};
    const WindowScenarioSummary sa = a.summarize(
        all, scn.name, scn.tFast, scn.tSlow, 5, true);
    const WindowScenarioSummary sb = b.summarize(
        all, scn.name, scn.tFast, scn.tSlow, 5, true);
    ASSERT_TRUE(sa.scenarioFound);
    EXPECT_EQ(sa.shards, 6u);
    EXPECT_EQ(sa.summary.json.render(), sb.summary.json.render());

    // Per-window summaries agree too, and repeated summaries hit the
    // partial cache without changing a byte.
    for (std::uint64_t w : all) {
        const std::string first =
            a.summarize({w}, scn.name, scn.tFast, scn.tSlow, 5, true)
                .summary.json.render();
        EXPECT_EQ(first, b.summarize({w}, scn.name, scn.tFast,
                                     scn.tSlow, 5, true)
                             .summary.json.render());
        EXPECT_EQ(first, a.summarize({w}, scn.name, scn.tFast,
                                     scn.tSlow, 5, true)
                             .summary.json.render());
    }
}

TEST(FleetWindows, SummaryMatchesColdRebuildAfterEviction)
{
    const ScenarioSpec &scn = scenarioByName("FileOpen");
    auto live = namedShards(fleetSpec(44), 6);
    auto cold = namedShards(fleetSpec(44), 6);

    // The live analyzer saw history that has since been evicted; the
    // cold one is built from only the surviving shards, like a fresh
    // daemon reading the pruned spool.
    WindowedAnalyzer rolling(windowConfig(2));
    for (std::size_t i = 0; i < live.size(); ++i)
        rolling.addShard(live[i].first, std::move(live[i].second),
                         (i / 2) * kWindowNs);
    rolling.evictExpired();
    ASSERT_EQ(rolling.allWindows(),
              (std::vector<std::uint64_t>{1, 2}));

    WindowedAnalyzer fresh(windowConfig(2));
    for (std::size_t i = 2; i < cold.size(); ++i)
        fresh.addShard(cold[i].first, std::move(cold[i].second),
                       (i / 2) * kWindowNs);

    const std::vector<std::uint64_t> ids{1, 2};
    EXPECT_EQ(rolling
                  .summarize(ids, scn.name, scn.tFast, scn.tSlow, 5,
                             true)
                  .summary.json.render(),
              fresh
                  .summarize(ids, scn.name, scn.tFast, scn.tSlow, 5,
                             true)
                  .summary.json.render());
}

TEST(FleetWindows, RetainedCorporaSurviveReallocationAndCopy)
{
    // Regression guard for the interner/symbol-table copy semantics:
    // WindowedAnalyzer keeps corpora inside growing vectors, so a
    // reallocation that copied self-referential indexes used to leave
    // string_view keys dangling into freed storage, and lookups went
    // silently empty.
    const TraceCorpus reference = generateCorpus(fleetSpec(45));
    const std::uint32_t scenarioId =
        reference.findScenario("FileOpen");
    ASSERT_NE(scenarioId, UINT32_MAX);

    std::vector<TraceCorpus> vec;
    for (int i = 0; i < 9; ++i)
        vec.push_back(generateCorpus(fleetSpec(45)));
    for (const TraceCorpus &corpus : vec) {
        EXPECT_EQ(corpus.findScenario("FileOpen"), scenarioId);
        EXPECT_EQ(corpus.scenarioName(scenarioId), "FileOpen");
    }

    // An explicit copy must outlive its source with working indexes.
    TraceCorpus copy;
    {
        TraceCorpus original = generateCorpus(fleetSpec(45));
        copy = original;
    }
    EXPECT_EQ(copy.findScenario("FileOpen"), scenarioId);
    EXPECT_GT(copy.symbols().frameCount(), 0u);
    for (std::size_t f = 0; f < copy.symbols().frameCount(); ++f)
        EXPECT_FALSE(
            copy.symbols()
                .frameName(static_cast<FrameId>(f))
                .empty());
}

/** Sentinel fixture: a calm baseline window and a regressed one. */
SentinelConfig
sentinelConfig()
{
    const ScenarioSpec &scn = scenarioByName("BrowserTabCreate");
    SentinelConfig config;
    config.scenarios = {{scn.name, scn.tFast, scn.tSlow}};
    config.baselineWindows = 2;
    return config;
}

void
addCohort(WindowedAnalyzer &windows, std::uint64_t seed,
          double encrypted, double hdd, std::uint64_t window,
          const std::string &prefix)
{
    CorpusSpec spec = fleetSpec(seed);
    spec.machines = 40;
    spec.encryptedFraction = encrypted;
    spec.hddFraction = hdd;
    std::vector<TraceCorpus> shards = generateShardedCorpus(spec, 2);
    for (std::size_t i = 0; i < shards.size(); ++i)
        windows.addShard(prefix + "-" + std::to_string(i) + ".tlc",
                         std::move(shards[i]),
                         window * kWindowNs + i * 1000);
}

TEST(FleetSentinel, FiresExactlyOncePerWindowCondition)
{
    WindowedAnalyzer windows(windowConfig());
    AlertSink sink;
    RegressionSentinel sentinel(windows, sink, sentinelConfig());

    addCohort(windows, 2024, 0.0, 0.1, 0, "calm-a");
    addCohort(windows, 2025, 0.0, 0.1, 1, "calm-b");
    // The rollout window: encryption everywhere, slower disks.
    addCohort(windows, 2026, 1.0, 0.5, 2, "rollout");

    const std::size_t first = sentinel.evaluate();
    ASSERT_GT(first, 0u);
    EXPECT_EQ(sink.lastSeq(), first);

    // A persistent condition must not flap: re-evaluating the same
    // window (as every subsequent ingest does) emits nothing new.
    EXPECT_EQ(sentinel.evaluate(), 0u);
    EXPECT_EQ(sentinel.evaluate(), 0u);
    EXPECT_EQ(sink.lastSeq(), first);

    // A later window with the same regression is a fresh finding.
    addCohort(windows, 2027, 1.0, 0.5, 3, "rollout-b");
    EXPECT_GT(sentinel.evaluate(), 0u);

    for (const Alert &alert : sink.since(0)) {
        EXPECT_TRUE(alert.rule == "cost_regression" ||
                    alert.rule == "impact_rank");
        EXPECT_EQ(alert.scenario, "BrowserTabCreate");
        EXPECT_FALSE(alert.baselineWindows.empty());
    }
}

TEST(FleetAlerts, AlertJsonRoundTrips)
{
    Alert alert;
    alert.seq = 17;
    alert.rule = "impact_rank";
    alert.scenario = "FileOpen";
    alert.component = "se.sys";
    alert.window = 42;
    alert.baselineWindows = {39, 40, 41};
    alert.ratio = 2.5;
    alert.detail = "se.sys entered impact top-3";
    alert.unixMs = 1700000000123;

    const JsonValue json = alertJson(alert);
    const std::optional<Alert> parsed = parseAlert(json);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->seq, alert.seq);
    EXPECT_EQ(parsed->rule, alert.rule);
    EXPECT_EQ(parsed->scenario, alert.scenario);
    EXPECT_EQ(parsed->component, alert.component);
    EXPECT_EQ(parsed->window, alert.window);
    EXPECT_EQ(parsed->baselineWindows, alert.baselineWindows);
    EXPECT_DOUBLE_EQ(parsed->ratio, alert.ratio);
    EXPECT_EQ(parsed->detail, alert.detail);
    EXPECT_EQ(parsed->unixMs, alert.unixMs);

    // Re-rendering the parsed alert is byte-stable (sorted keys).
    EXPECT_EQ(alertJson(*parsed).render(), json.render());

    // Schema violations parse to nullopt, never to half-filled alerts.
    JsonValue missing = json;
    missing.asObject().erase("rule");
    EXPECT_FALSE(parseAlert(missing).has_value());
    JsonValue wrongType = json;
    wrongType.set("window", JsonValue("not-a-number"));
    EXPECT_FALSE(parseAlert(wrongType).has_value());
    EXPECT_FALSE(parseAlert(JsonValue("just a string")).has_value());
}

TEST(FleetAlerts, SinkWritesJsonlAndServesSince)
{
    ScratchDir scratch("alert_sink");
    AlertSink::Config config;
    config.path = scratch.file("alerts.jsonl");
    AlertSink sink(config);

    for (int i = 0; i < 3; ++i) {
        Alert alert;
        alert.rule = "cost_regression";
        alert.scenario = "FileOpen";
        alert.window = static_cast<std::uint64_t>(i);
        sink.emit(std::move(alert));
    }
    EXPECT_EQ(sink.lastSeq(), 3u);
    EXPECT_EQ(sink.since(0).size(), 3u);
    EXPECT_EQ(sink.since(2).size(), 1u);
    EXPECT_TRUE(sink.since(3).empty());

    std::ifstream in(config.path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        const std::optional<Alert> parsed =
            parseAlert(JsonValue::parse(line).value());
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->seq, ++lines);
    }
    EXPECT_EQ(lines, 3u);
}

TEST(FleetWatcher, ReportsOnlyFinishedShardsOnce)
{
    ScratchDir scratch("watcher");
    CorpusWatcher watcher(scratch.str());

    const TraceCorpus corpus = generateCorpus(fleetSpec(46));
    writeCorpusFile(corpus, scratch.file("shard-0001.tlc"));
    // Unfinished/foreign entries a spool directory accumulates.
    std::ofstream(scratch.file(".shard-0002.tlc.tmp")) << "partial";
    std::ofstream(scratch.file("shard-0003.tlc.tmp")) << "partial";
    std::ofstream(scratch.file(".hidden.tlc")) << "dotfile";
    std::ofstream(scratch.file("notes.txt")) << "unrelated";

    std::vector<std::string> fresh = watcher.poll();
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(fs::path(fresh[0]).filename(), "shard-0001.tlc");
    EXPECT_GE(watcher.stats().skippedEntries, 4u);

    // Never reported twice, even across polls.
    EXPECT_TRUE(watcher.poll().empty());

    // Rename-into-place finishes a staged shard; only then is it
    // visible, sorted by filename with any other arrivals.
    writeCorpusFile(corpus, scratch.file(".shard-0002.tlc.stage"));
    fs::rename(scratch.file(".shard-0002.tlc.stage"),
               scratch.file("shard-0002.tlc"));
    writeCorpusFile(corpus, scratch.file("shard-0000.tlc"));
    fresh = watcher.poll();
    ASSERT_EQ(fresh.size(), 2u);
    EXPECT_EQ(fs::path(fresh[0]).filename(), "shard-0000.tlc");
    EXPECT_EQ(fs::path(fresh[1]).filename(), "shard-0002.tlc");

    // markSeen suppresses a future poll (the ingest_push path).
    writeCorpusFile(corpus, scratch.file("shard-0004.tlc"));
    watcher.markSeen(scratch.file("shard-0004.tlc"));
    EXPECT_TRUE(watcher.poll().empty());

    // A missing directory is an empty batch, not an error.
    CorpusWatcher absent(scratch.file("does-not-exist"));
    EXPECT_TRUE(absent.poll().empty());
}

TEST(FleetService, PollIngestsSpoolAndSkipsCorruptShards)
{
    ScratchDir scratch("service");
    const ScenarioSpec &scn = scenarioByName("FileOpen");

    auto shards = namedShards(fleetSpec(47), 3);
    for (const auto &[name, corpus] : shards)
        writeCorpusFile(corpus, scratch.file(name));
    std::ofstream(scratch.file("shard-9999.tlc")) << "garbage bytes";

    FleetConfig config;
    config.dir = scratch.str();
    config.windowMs = 60000;
    FleetService service(config);
    EXPECT_EQ(service.pollOnce(), 3u);
    EXPECT_EQ(service.ingestedShards(), 3u);
    // The corrupt shard is skipped for good, not retried forever.
    EXPECT_EQ(service.pollOnce(), 0u);

    const JsonValue summary = service.windowSummary(
        scn.name, scn.tFast, scn.tSlow, "all", 1, 5, true);
    EXPECT_TRUE(summary.find("summary") != nullptr);
    EXPECT_EQ(summary.find("shards")->asNumber(), 3.0);

    // ingest() marks the spooled file seen: pushing a shard that also
    // lands in the watched directory must not double-count.
    const TraceCorpus pushed = generateCorpus(fleetSpec(48));
    writeCorpusFile(pushed, scratch.file("shard-0100.tlc"));
    service.ingest("shard-0100.tlc", pushed, std::nullopt);
    EXPECT_EQ(service.pollOnce(), 0u);
    EXPECT_EQ(service.ingestedShards(), 4u);
}

TEST(Fleet, RevisionIsAdvertised)
{
    EXPECT_GE(fleetRevision(), 1u);
}

} // namespace
} // namespace tracelens
