/**
 * @file
 * Tests for the threshold-suggestion helper.
 */

#include <gtest/gtest.h>

#include "src/impact/thresholds.h"
#include "src/trace/builder.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace
{

TraceCorpus
corpusWithDurations(const std::vector<double> &durations_ms)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a!x"});
    b.running(1, 0, 1, st);
    for (double ms : durations_ms)
        b.instance("S", 1, 0, fromMs(ms));
    b.finish();
    return corpus;
}

TEST(Thresholds, QuantilesFromDurations)
{
    std::vector<double> durations;
    for (int i = 1; i <= 100; ++i)
        durations.push_back(i); // 1..100 ms
    const TraceCorpus corpus = corpusWithDurations(durations);

    const ThresholdSuggestion s = suggestThresholds(corpus, "S");
    EXPECT_EQ(s.instances, 100u);
    EXPECT_TRUE(s.usable());
    EXPECT_NEAR(toMs(s.p50), 50.0, 1.0);
    EXPECT_NEAR(toMs(s.p90), 90.0, 1.0);
    EXPECT_EQ(s.tFast, s.p50);
    // p90 (90) < 2 * p50 (100): widened to keep the classes apart.
    EXPECT_EQ(s.tSlow, 2 * s.tFast);
    EXPECT_NE(s.render().find("T_slow"), std::string::npos);
}

TEST(Thresholds, HeavyTailUsesP90)
{
    std::vector<double> durations(95, 10.0);
    for (int i = 0; i < 5; ++i)
        durations.push_back(500.0 + i);
    const TraceCorpus corpus = corpusWithDurations(durations);

    const ThresholdSuggestion s = suggestThresholds(corpus, "S");
    EXPECT_NEAR(toMs(s.tFast), 10.0, 0.5);
    // p90 is 10 (still in the body): widened to 20.
    EXPECT_EQ(s.tSlow, 2 * s.tFast);
}

TEST(Thresholds, SlowBoundFollowsTailWhenWideEnough)
{
    std::vector<double> durations(50, 10.0);
    for (int i = 0; i < 50; ++i)
        durations.push_back(100.0 + i);
    const TraceCorpus corpus = corpusWithDurations(durations);

    const ThresholdSuggestion s = suggestThresholds(corpus, "S");
    // p50 falls in the fast mode, p90 deep in the slow mode.
    EXPECT_LE(toMs(s.tFast), 101.0);
    EXPECT_GE(toMs(s.tSlow), 100.0);
    EXPECT_GE(s.tSlow, 2 * s.tFast);
}

TEST(Thresholds, EmptyScenarioUnusable)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a!x"});
    b.running(1, 0, 1, st);
    b.instance("Other", 1, 0, 100);
    b.finish();

    const auto id = corpus.internScenario("Empty");
    const ThresholdSuggestion s = suggestThresholds(corpus, id);
    EXPECT_EQ(s.instances, 0u);
    EXPECT_FALSE(s.usable());
}

TEST(ThresholdsDeath, UnknownScenarioNameIsFatal)
{
    TraceCorpus corpus;
    EXPECT_EXIT(suggestThresholds(corpus, "nope"),
                testing::ExitedWithCode(1), "not in corpus");
}

TEST(Thresholds, SuggestionsWorkOnGeneratedCorpus)
{
    CorpusSpec spec;
    spec.machines = 30;
    spec.seed = 8;
    const TraceCorpus corpus = generateCorpus(spec);
    for (std::uint32_t id = 0; id < corpus.scenarioCount(); ++id) {
        const ThresholdSuggestion s = suggestThresholds(corpus, id);
        if (s.instances == 0)
            continue;
        EXPECT_GT(s.tFast, 0);
        EXPECT_GE(s.tSlow, 2 * s.tFast);
        EXPECT_LE(s.p25, s.p50);
        EXPECT_LE(s.p50, s.p90);
        EXPECT_LE(s.p90, s.p99);
    }
}

} // namespace
} // namespace tracelens
