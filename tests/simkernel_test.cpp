/**
 * @file
 * Unit tests for the discrete-event engine and the kernel simulator:
 * scheduling order, CPU sampling, core contention, locks, devices, job
 * channels, scenario instances, and determinism.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "src/simkernel/engine.h"
#include "src/simkernel/kernel.h"
#include "src/trace/serialize.h"
#include "src/trace/validate.h"

namespace tracelens
{
namespace
{

TEST(SimEngine, DispatchesInTimeOrder)
{
    SimEngine engine;
    std::vector<int> order;
    engine.scheduleAt(30, [&] { order.push_back(3); });
    engine.scheduleAt(10, [&] { order.push_back(1); });
    engine.scheduleAt(20, [&] { order.push_back(2); });
    EXPECT_EQ(engine.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(engine.now(), 30);
}

TEST(SimEngine, EqualTimesRunInScheduleOrder)
{
    SimEngine engine;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        engine.scheduleAt(7, [&order, i] { order.push_back(i); });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, CallbacksMayScheduleMore)
{
    SimEngine engine;
    int hits = 0;
    engine.scheduleAt(0, [&] {
        ++hits;
        engine.scheduleAfter(5, [&] { ++hits; });
    });
    EXPECT_EQ(engine.run(), 2u);
    EXPECT_EQ(hits, 2);
    EXPECT_EQ(engine.now(), 5);
}

TEST(SimEngine, HorizonStopsDispatch)
{
    SimEngine engine;
    int hits = 0;
    engine.scheduleAt(10, [&] { ++hits; });
    engine.scheduleAt(100, [&] { ++hits; });
    engine.run(50);
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(engine.pending(), 1u);
}

/** Count events of a type in a stream. */
std::size_t
countType(const TraceStream &stream, EventType type)
{
    std::size_t n = 0;
    for (const Event &e : stream.events())
        n += (e.type == type);
    return n;
}

TEST(SimKernel, ComputeEmitsRunningSamples)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m0");
    const FrameId f = sim.frame("app.exe!Work");
    sim.spawnThread({actPush(f), actCompute(fromMs(3.5)), actPop()});
    const auto stream_idx = sim.run();

    const TraceStream &stream = corpus.stream(stream_idx);
    EXPECT_EQ(countType(stream, EventType::Running), 3u);
    for (const Event &e : stream.events()) {
        EXPECT_EQ(e.type, EventType::Running);
        EXPECT_EQ(e.cost, kMillisecond);
        EXPECT_EQ(e.tid, 0u);
    }
    EXPECT_EQ(sim.completedThreads(), 1u);
}

TEST(SimKernel, CpuRemainderCarriesAcrossComputes)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m0");
    const FrameId f = sim.frame("app.exe!Work");
    // 0.6 + 0.6 ms: one sample total.
    sim.spawnThread({actPush(f), actCompute(fromMs(0.6)),
                     actCompute(fromMs(0.6)), actPop()});
    const auto stream_idx = sim.run();
    EXPECT_EQ(countType(corpus.stream(stream_idx), EventType::Running),
              1u);
}

TEST(SimKernel, SingleCoreSerializesComputes)
{
    TraceCorpus corpus;
    SimConfig config;
    config.cores = 1;
    SimKernel sim(corpus, "m0", config);
    const FrameId f = sim.frame("app.exe!Work");
    sim.spawnThread({actPush(f), actCompute(fromMs(5)), actPop()});
    sim.spawnThread({actPush(f), actCompute(fromMs(5)), actPop()});
    sim.run();
    // Total CPU demand is 10 ms on one core: the clock must end at 10.
    EXPECT_EQ(sim.now(), fromMs(10));
}

TEST(SimKernel, MultiCoreOverlapsComputes)
{
    TraceCorpus corpus;
    SimConfig config;
    config.cores = 2;
    SimKernel sim(corpus, "m0", config);
    const FrameId f = sim.frame("app.exe!Work");
    sim.spawnThread({actPush(f), actCompute(fromMs(5)), actPop()});
    sim.spawnThread({actPush(f), actCompute(fromMs(5)), actPop()});
    sim.run();
    EXPECT_EQ(sim.now(), fromMs(5));
}

TEST(SimKernel, LockContentionEmitsWaitAndUnwait)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m0");
    const LockId lock = sim.createLock();
    const FrameId fa = sim.frame("fv.sys!Query");
    const FrameId fb = sim.frame("fv.sys!Update");

    // Thread 0 takes the lock and computes 5 ms; thread 1 (staggered
    // 1 ms) must wait ~4 ms.
    sim.spawnThread({actPush(fa), actAcquire(lock), actCompute(fromMs(5)),
                     actRelease(lock), actPop()});
    sim.spawnThread({actPush(fb), actAcquire(lock), actRelease(lock),
                     actPop()},
                    fromMs(1));
    const auto stream_idx = sim.run();

    const TraceStream &stream = corpus.stream(stream_idx);
    ASSERT_EQ(countType(stream, EventType::Wait), 1u);
    ASSERT_EQ(countType(stream, EventType::Unwait), 1u);

    const ValidationReport report = validateCorpus(corpus);
    EXPECT_EQ(report.unpairedWaits, 0u);
    EXPECT_EQ(report.strayUnwaits, 0u);

    for (const Event &e : stream.events()) {
        if (e.type == EventType::Wait) {
            EXPECT_EQ(e.tid, 1u);
            EXPECT_EQ(e.timestamp, fromMs(1));
        } else if (e.type == EventType::Unwait) {
            EXPECT_EQ(e.tid, 0u);
            EXPECT_EQ(e.wtid, 1u);
            EXPECT_EQ(e.timestamp, fromMs(5));
            // The unwait stack carries the releaser's driver frame.
            const auto frames =
                corpus.symbols().stackFrames(e.stack);
            ASSERT_FALSE(frames.empty());
            EXPECT_EQ(corpus.symbols().frameName(frames.back()),
                      "fv.sys!Query");
        }
    }
}

TEST(SimKernel, LockQueueIsFifo)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m0");
    const LockId lock = sim.createLock();
    const FrameId f = sim.frame("fs.sys!Acquire");
    sim.spawnThread({actPush(f), actAcquire(lock), actCompute(fromMs(3)),
                     actRelease(lock), actPop()});
    sim.spawnThread({actPush(f), actAcquire(lock), actCompute(fromMs(1)),
                     actRelease(lock), actPop()},
                    fromMs(1));
    sim.spawnThread({actPush(f), actAcquire(lock), actCompute(fromMs(1)),
                     actRelease(lock), actPop()},
                    fromMs(2));
    const auto stream_idx = sim.run();

    // Unwait order: thread1 first (granted at 3 ms), thread2 second.
    std::vector<ThreadId> granted;
    for (const Event &e : corpus.stream(stream_idx).events()) {
        if (e.type == EventType::Unwait)
            granted.push_back(e.wtid);
    }
    EXPECT_EQ(granted, (std::vector<ThreadId>{1, 2}));
}

TEST(SimKernel, HardwareServiceRecordsDeviceInterval)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m0");
    const DeviceId disk = sim.createDevice("DiskService");
    const FrameId f = sim.frame("fs.sys!Read");
    sim.spawnThread({actPush(f), actHardware(disk, fromMs(7)),
                     actPop()});
    const auto stream_idx = sim.run();

    const TraceStream &stream = corpus.stream(stream_idx);
    ASSERT_EQ(countType(stream, EventType::HardwareService), 1u);
    ASSERT_EQ(countType(stream, EventType::Wait), 1u);
    ASSERT_EQ(countType(stream, EventType::Unwait), 1u);
    for (const Event &e : stream.events()) {
        if (e.type == EventType::HardwareService) {
            EXPECT_EQ(e.cost, fromMs(7));
            EXPECT_GE(e.tid, 1'000'000u); // pseudo thread
        }
    }
    EXPECT_EQ(sim.now(), fromMs(7));
}

TEST(SimKernel, DeviceQueueSerializesRequests)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m0");
    const DeviceId disk = sim.createDevice("DiskService");
    const FrameId f = sim.frame("fs.sys!Read");
    sim.spawnThread({actPush(f), actHardware(disk, fromMs(4)),
                     actPop()});
    sim.spawnThread({actPush(f), actHardware(disk, fromMs(4)),
                     actPop()});
    sim.run();
    // Single-server FIFO: second request finishes at 8 ms.
    EXPECT_EQ(sim.now(), fromMs(8));
}

TEST(SimKernel, SynchronousJobRunsOnServiceThread)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m0");
    const ChannelId channel = sim.createChannel();
    const FrameId worker = sim.frame("kernel!Worker");
    const FrameId service = sim.frame("se.sys!ReadDecrypt");
    const FrameId client = sim.frame("fs.sys!Read");

    // Service thread: loop receiving jobs.
    sim.spawnThread({actPush(worker), actReceiveJob(channel),
                     actJump(1)});

    // Client: submit a decrypt job and wait for it.
    auto job = std::make_shared<Script>(
        Script{actPush(service), actCompute(fromMs(2))});
    sim.spawnThread({actPush(client),
                     actSubmitJob(channel, job, /*wait=*/true),
                     actPop()},
                    fromMs(1));
    const auto stream_idx = sim.run();

    const TraceStream &stream = corpus.stream(stream_idx);
    // Waits: the idle server's queue wait, the client's job wait, and
    // the server's re-wait after looping back to ReceiveJob.
    EXPECT_EQ(countType(stream, EventType::Wait), 3u);
    // Unwaits: client->server handoff + server->client completion.
    EXPECT_EQ(countType(stream, EventType::Unwait), 2u);

    // The completion unwait must carry the service frame (emitted
    // before the job's pushed frames are unwound).
    bool saw_completion = false;
    for (const Event &e : stream.events()) {
        if (e.type == EventType::Unwait && e.tid == 0 && e.wtid == 1) {
            const auto frames = corpus.symbols().stackFrames(e.stack);
            ASSERT_FALSE(frames.empty());
            EXPECT_EQ(corpus.symbols().frameName(frames.back()),
                      "se.sys!ReadDecrypt");
            saw_completion = true;
        }
    }
    EXPECT_TRUE(saw_completion);
    EXPECT_EQ(sim.now(), fromMs(3));
}

TEST(SimKernel, AsynchronousJobDoesNotBlockClient)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m0");
    const ChannelId channel = sim.createChannel();
    const FrameId worker = sim.frame("kernel!Worker");
    const FrameId client = sim.frame("app.exe!Main");
    auto job = std::make_shared<Script>(
        Script{actPush(sim.frame("net.sys!Poll")),
               actCompute(fromMs(10))});

    sim.spawnThread({actPush(worker), actReceiveJob(channel)});
    sim.spawnThread({actPush(client),
                     actSubmitJob(channel, job, /*wait=*/false),
                     actCompute(fromMs(1)), actPop()},
                    fromMs(1));
    const auto stream_idx = sim.run();

    // Client produced no Wait event of its own.
    for (const Event &e : corpus.stream(stream_idx).events()) {
        if (e.type == EventType::Wait) {
            EXPECT_EQ(e.tid, 0u); // only the server's idle wait
        }
    }
    EXPECT_EQ(sim.now(), fromMs(11));
}

TEST(SimKernel, QueuedJobIsPickedUpWithoutServerWait)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m0");
    const ChannelId channel = sim.createChannel();
    auto job = std::make_shared<Script>(
        Script{actCompute(fromMs(1))});
    // Client submits before the server starts: job waits in queue.
    sim.spawnThread({actPush(sim.frame("app.exe!Main")),
                     actSubmitJob(channel, job, false), actPop()});
    sim.spawnThread({actPush(sim.frame("kernel!Worker")),
                     actReceiveJob(channel), actPop()},
                    fromMs(2));
    const auto stream_idx = sim.run();
    EXPECT_EQ(countType(corpus.stream(stream_idx), EventType::Wait), 0u);
    EXPECT_EQ(sim.now(), fromMs(3));
}

TEST(SimKernel, ScenarioInstancesAreRecorded)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m0");
    const auto scn = sim.scenario("BrowserTabCreate");
    const FrameId f = sim.frame("browser.exe!TabCreate");
    sim.spawnThread({actBeginInstance(scn), actPush(f),
                     actCompute(fromMs(4)), actPop(),
                     actEndInstance()},
                    fromMs(2));
    sim.run();

    ASSERT_EQ(corpus.instances().size(), 1u);
    const ScenarioInstance &inst = corpus.instances()[0];
    EXPECT_EQ(corpus.scenarioName(inst.scenario), "BrowserTabCreate");
    EXPECT_EQ(inst.t0, fromMs(2));
    EXPECT_EQ(inst.t1, fromMs(6));
    EXPECT_EQ(inst.tid, 0u);
}

TEST(SimKernel, SleepConsumesTimeSilently)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m0");
    sim.spawnThread({actSleep(fromMs(9))});
    const auto stream_idx = sim.run();
    EXPECT_EQ(corpus.stream(stream_idx).size(), 0u);
    EXPECT_EQ(sim.now(), fromMs(9));
}

Script
contentionScript(SimKernel & /*sim*/, LockId lock, FrameId f,
                 DurationNs hold)
{
    return {actPush(f), actAcquire(lock), actCompute(hold),
            actRelease(lock), actPop()};
}

TEST(SimKernel, DeterministicAcrossRuns)
{
    auto build = [] {
        TraceCorpus corpus;
        SimKernel sim(corpus, "m0");
        const LockId lock = sim.createLock();
        const DeviceId disk = sim.createDevice("DiskService");
        const FrameId f = sim.frame("fs.sys!Acquire");
        for (int i = 0; i < 4; ++i) {
            sim.spawnThread(contentionScript(sim, lock, f,
                                             fromMs(1 + i)),
                            fromMs(i) / 2);
        }
        sim.spawnThread({actPush(f), actHardware(disk, fromMs(3)),
                         actPop()},
                        fromMs(1));
        sim.run();
        std::ostringstream buffer;
        writeCorpus(corpus, buffer);
        return buffer.str();
    };
    EXPECT_EQ(build(), build());
}

TEST(SimKernel, CleanTraceFromContendedWorkload)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m0");
    const LockId lock = sim.createLock();
    const FrameId f = sim.frame("fv.sys!Query");
    for (int i = 0; i < 3; ++i)
        sim.spawnThread(contentionScript(sim, lock, f, fromMs(2)),
                        fromMs(i) / 4);
    sim.run();
    const ValidationReport report = validateCorpus(corpus);
    EXPECT_EQ(report.unpairedWaits, 0u);
    EXPECT_EQ(report.strayUnwaits, 0u);
    EXPECT_EQ(report.selfUnwaits, 0u);
    EXPECT_EQ(report.stacklessEvents, 0u);
}

} // namespace
} // namespace tracelens
