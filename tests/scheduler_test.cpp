/**
 * @file
 * Detailed scheduler and tracer tests: core ready-queue ordering,
 * running-sample timestamps, engine stress, and cross-feature
 * interactions inside the simulator.
 */

#include <gtest/gtest.h>

#include "src/simkernel/engine.h"
#include "src/simkernel/kernel.h"
#include "src/util/rng.h"

namespace tracelens
{
namespace
{

TEST(SimEngineStress, ThousandsOfEventsDispatchInOrder)
{
    SimEngine engine;
    Rng rng(123);
    std::vector<TimeNs> fired;
    for (int i = 0; i < 20000; ++i) {
        const TimeNs when = rng.uniformInt(0, 1'000'000);
        engine.scheduleAt(when, [&fired, &engine] {
            fired.push_back(engine.now());
        });
    }
    EXPECT_EQ(engine.run(), 20000u);
    ASSERT_EQ(fired.size(), 20000u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        ASSERT_LE(fired[i - 1], fired[i]);
}

TEST(Scheduler, ReadyQueueIsFifoUnderCorePressure)
{
    TraceCorpus corpus;
    SimConfig config;
    config.cores = 1;
    SimKernel sim(corpus, "m", config);
    const FrameId fa = sim.frame("a.exe!A");
    const FrameId fb = sim.frame("b.exe!B");
    const FrameId fc = sim.frame("c.exe!C");

    // Three compute-bound threads started in order on one core: their
    // samples must appear grouped in start order (run to completion).
    sim.spawnThread({actPush(fa), actCompute(fromMs(2)), actPop()}, 0);
    sim.spawnThread({actPush(fb), actCompute(fromMs(2)), actPop()}, 0);
    sim.spawnThread({actPush(fc), actCompute(fromMs(2)), actPop()}, 0);
    const auto stream_idx = sim.run();

    std::vector<ThreadId> order;
    for (const Event &e : corpus.stream(stream_idx).events()) {
        if (e.type == EventType::Running &&
            (order.empty() || order.back() != e.tid)) {
            order.push_back(e.tid);
        }
    }
    EXPECT_EQ(order, (std::vector<ThreadId>{0, 1, 2}));
    EXPECT_EQ(sim.now(), fromMs(6));
}

TEST(Scheduler, RunningSamplesCoverComputeIntervals)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const FrameId f = sim.frame("a.exe!F");
    sim.spawnThread({actPush(f), actCompute(fromMs(5)), actPop()},
                    fromMs(3));
    const auto stream_idx = sim.run();

    const TraceStream &stream = corpus.stream(stream_idx);
    ASSERT_EQ(stream.size(), 5u);
    TimeNs expected_start = fromMs(3);
    for (const Event &e : stream.events()) {
        EXPECT_EQ(e.type, EventType::Running);
        EXPECT_EQ(e.timestamp, expected_start);
        EXPECT_EQ(e.cost, kMillisecond);
        expected_start += kMillisecond;
    }
}

TEST(Scheduler, SampleTimestampsNeverPrecedeComputeStart)
{
    // A 0.9 ms compute followed (after a wait) by a 0.2 ms compute:
    // the carried remainder crosses the sampler during the second
    // compute, whose sample must not start before that compute does.
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const LockId lock = sim.createLock();
    const FrameId f = sim.frame("a.exe!F");

    // The lock holder forces a wait between the two computes.
    sim.spawnThread({actPush(f), actAcquire(lock),
                     actCompute(fromMs(5)), actRelease(lock),
                     actPop()});
    sim.spawnThread({actPush(f), actCompute(fromMs(0.9)),
                     actAcquire(lock), actRelease(lock),
                     actCompute(fromMs(0.2)), actPop()},
                    fromMs(0.05));
    const auto stream_idx = sim.run();

    for (const Event &e : corpus.stream(stream_idx).events()) {
        if (e.type != EventType::Running || e.tid != 1)
            continue;
        // Thread 1's only sample comes from the second compute, which
        // begins when the holder releases at 5 ms.
        EXPECT_GE(e.timestamp, fromMs(5));
    }
}

TEST(Scheduler, MixedBlockingAndComputeUnderOneCore)
{
    // A blocking thread must free its core while waiting so a
    // compute-bound thread can progress.
    TraceCorpus corpus;
    SimConfig config;
    config.cores = 1;
    SimKernel sim(corpus, "m", config);
    const DeviceId disk = sim.createDevice("DiskService");
    const FrameId f = sim.frame("a.exe!F");

    sim.spawnThread({actPush(f), actHardware(disk, fromMs(10)),
                     actPop()});
    sim.spawnThread({actPush(f), actCompute(fromMs(4)), actPop()},
                    fromMs(1));
    sim.run();
    // The compute finishes at 5 ms (starts at 1), the disk at 10 ms:
    // total wall time is 10 ms, not 14.
    EXPECT_EQ(sim.now(), fromMs(10));
}

TEST(Scheduler, LockHandoffTimestampsAreExact)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const LockId lock = sim.createLock();
    const FrameId f = sim.frame("x.sys!Op");
    sim.spawnThread({actPush(f), actAcquire(lock),
                     actSleep(fromMs(7)), actRelease(lock), actPop()});
    sim.spawnThread({actPush(f), actAcquire(lock), actRelease(lock),
                     actPop()},
                    fromMs(2));
    const auto stream_idx = sim.run();

    for (const Event &e : corpus.stream(stream_idx).events()) {
        if (e.type == EventType::Wait) {
            EXPECT_EQ(e.timestamp, fromMs(2));
        }
        if (e.type == EventType::Unwait) {
            EXPECT_EQ(e.timestamp, fromMs(7));
        }
    }
}

TEST(Scheduler, DevicesRunIndependentOfCores)
{
    // Device service time must overlap with a saturated CPU.
    TraceCorpus corpus;
    SimConfig config;
    config.cores = 1;
    SimKernel sim(corpus, "m", config);
    const DeviceId disk = sim.createDevice("DiskService");
    const FrameId f = sim.frame("a.exe!F");
    sim.spawnThread({actPush(f), actHardware(disk, fromMs(6)),
                     actCompute(fromMs(1)), actPop()});
    sim.spawnThread({actPush(f), actCompute(fromMs(6)), actPop()});
    sim.run();
    // Disk (6 ms) overlaps the other thread's compute (6 ms); then the
    // first thread's 1 ms compute: 7 ms total.
    EXPECT_EQ(sim.now(), fromMs(7));
}

TEST(Scheduler, ManyConcurrentInstancesRecordDisjointWindows)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const auto scn = sim.scenario("S");
    const FrameId f = sim.frame("a.exe!F");
    for (int i = 0; i < 10; ++i) {
        sim.spawnThread({actPush(f), actBeginInstance(scn),
                         actCompute(fromMs(2)), actEndInstance(),
                         actPop()},
                        fromMs(i));
    }
    sim.run();
    ASSERT_EQ(corpus.instances().size(), 10u);
    for (const ScenarioInstance &inst : corpus.instances()) {
        EXPECT_GE(inst.duration(), fromMs(2));
        EXPECT_LE(inst.duration(), fromMs(8)); // bounded by core queue
    }
}

} // namespace
} // namespace tracelens
