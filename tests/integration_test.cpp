/**
 * @file
 * End-to-end integration tests: the full pipeline on mixed corpora,
 * the calibrated headline shape, the case studies through the public
 * facade, the knowledge filter and pattern index over real mining
 * output, and cross-format persistence.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "src/baseline/callgraph.h"
#include "src/baseline/lockcontention.h"
#include "src/core/analyzer.h"
#include "src/core/report.h"
#include "src/mining/knowledge.h"
#include "src/mining/patternindex.h"
#include "src/trace/csv.h"
#include "src/trace/serialize.h"
#include "src/workload/generator.h"
#include "src/workload/motivating.h"

namespace tracelens
{
namespace
{

/** One shared medium corpus for the expensive integration checks. */
const TraceCorpus &
mediumCorpus()
{
    static const TraceCorpus corpus = [] {
        CorpusSpec spec;
        spec.machines = 40;
        spec.seed = 20140301;
        return generateCorpus(spec);
    }();
    return corpus;
}

TEST(Integration, HeadlineShapeHolds)
{
    EagerSource analyzer_source(mediumCorpus());
    Analyzer analyzer(analyzer_source);
    const ImpactResult impact = analyzer.impactAll();

    // The paper's shape: drivers dominate waiting, not running; a
    // substantial share of waiting is propagated; one driver wait
    // affects multiple instances on average. Bounds are loose — the
    // corpus is a small sample of the calibrated fleet.
    EXPECT_GT(impact.iaWait(), 0.20);
    EXPECT_LT(impact.iaWait(), 0.65);
    EXPECT_LT(impact.iaRun(), 0.06);
    EXPECT_GT(impact.iaWait(), 5 * impact.iaRun());
    EXPECT_GT(impact.iaOpt(), 0.05);
    EXPECT_GT(impact.waitAmplification(), 1.3);
}

TEST(Integration, EveryScenarioAnalyzesCleanly)
{
    EagerSource analyzer_source(mediumCorpus());
    Analyzer analyzer(analyzer_source);
    for (const ScenarioSpec &scn : scenarioCatalog()) {
        if (mediumCorpus().findScenario(scn.name) == UINT32_MAX)
            continue;
        const ScenarioAnalysis analysis = analyzer.analyzeScenario(
            scn.name, scn.tFast, scn.tSlow);
        EXPECT_LE(analysis.coverage.itc(),
                  analysis.coverage.ttc() + 1e-9)
            << scn.name;
        if (!analysis.classes.slow.empty()) {
            EXPECT_FALSE(analysis.awgSlow.empty()) << scn.name;
        }
    }
}

TEST(Integration, PatternIndexAcrossScenarios)
{
    EagerSource analyzer_source(mediumCorpus());
    Analyzer analyzer(analyzer_source);
    PatternIndex index(mediumCorpus().symbols());
    for (const ScenarioSpec &scn : scenarioCatalog()) {
        if (mediumCorpus().findScenario(scn.name) == UINT32_MAX)
            continue;
        const ScenarioAnalysis analysis = analyzer.analyzeScenario(
            scn.name, scn.tFast, scn.tSlow);
        index.add(scn.name, analysis.mining);
    }
    ASSERT_GT(index.patternCount(), 0u);

    // File-system behaviour should be indexed from several scenarios
    // (the paper's "FS + filter drivers near-ubiquitous" observation).
    const auto hits = index.byComponent("fs.sys");
    std::set<std::string> scenarios;
    for (const PatternHit &hit : hits)
        scenarios.insert(hit.scenario);
    EXPECT_GE(scenarios.size(), 3u);

    // Hits are impact-sorted.
    for (std::size_t i = 1; i < hits.size(); ++i) {
        EXPECT_GE(hits[i - 1].pattern.impact(),
                  hits[i].pattern.impact());
    }
}

TEST(Integration, KnowledgeFilterOnRealMiningOutput)
{
    CorpusSpec spec;
    spec.machines = 25;
    spec.seed = 77;
    spec.diskProtectionFraction = 1.0;
    const TraceCorpus corpus = generateCorpus(spec);
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);

    bool saw_suppression = false;
    const KnowledgeBase kb = KnowledgeBase::defaults();
    for (const ScenarioSpec &scn : scenarioCatalog()) {
        if (corpus.findScenario(scn.name) == UINT32_MAX)
            continue;
        const ScenarioAnalysis analysis = analyzer.analyzeScenario(
            scn.name, scn.tFast, scn.tSlow);
        const FilteredMiningResult filtered =
            kb.apply(analysis.mining, corpus.symbols());
        EXPECT_EQ(filtered.kept.size() + filtered.suppressed.size(),
                  analysis.mining.patterns.size());
        saw_suppression |= !filtered.suppressed.empty();
        for (const SuppressedPattern &s : filtered.suppressed)
            EXPECT_FALSE(s.reason.empty());
        for (const ContrastPattern &p : filtered.kept)
            EXPECT_FALSE(kb.matches(p.tuple, corpus.symbols()));
    }
    // With dp.sys on every machine, at least one dp pattern surfaces
    // somewhere and is suppressed.
    EXPECT_TRUE(saw_suppression);
}

TEST(Integration, PersistenceBinaryAndCsvAgree)
{
    const TraceCorpus &corpus = mediumCorpus();

    std::stringstream binary;
    writeCorpus(corpus, binary);
    const TraceCorpus from_binary = readCorpus(binary);

    std::ostringstream events, instances;
    writeEventsCsv(corpus, events);
    writeInstancesCsv(corpus, instances);
    std::istringstream ein(events.str()), iin(instances.str());
    const TraceCorpus from_csv = readCorpusCsv(ein, iin);

    // Analyses of both copies agree exactly.
    EagerSource binary_source(from_binary), csv_source(from_csv);
    const ImpactResult a = Analyzer(binary_source).impactAll();
    const ImpactResult b = Analyzer(csv_source).impactAll();
    EXPECT_EQ(a.dScn, b.dScn);
    EXPECT_EQ(a.dWait, b.dWait);
    EXPECT_EQ(a.dRun, b.dRun);
    EXPECT_EQ(a.dWaitDist, b.dWaitDist);
}

TEST(Integration, BaselinesAgreeOnTotals)
{
    const TraceCorpus &corpus = mediumCorpus();

    // The CPU profiler's total equals the sum of running events.
    CallGraphProfiler profiler(corpus);
    DurationNs running = 0;
    DurationNs wait_events = 0;
    for (std::uint32_t s = 0; s < corpus.streamCount(); ++s) {
        for (const Event &e : corpus.stream(s).events()) {
            if (e.type == EventType::Running)
                running += e.cost;
            if (e.type == EventType::Wait)
                ++wait_events;
        }
    }
    EXPECT_EQ(profiler.totalCpu(), running);

    // The contention analyzer never reports more waits than exist.
    LockContentionAnalyzer contention(corpus);
    std::uint64_t analyzed_waits = 0;
    for (const ContentionEntry &e : contention.analyze())
        analyzed_waits += e.waits;
    EXPECT_LE(analyzed_waits, wait_events);
}

TEST(Integration, CaseStudiesSurviveSerialization)
{
    TraceCorpus corpus;
    buildMotivatingExample(corpus);
    buildGraphicsHardFaultCase(corpus);

    std::stringstream buffer;
    writeCorpus(corpus, buffer);
    const TraceCorpus copy = readCorpus(buffer);

    ASSERT_EQ(copy.instances().size(), 2u);
    EXPECT_GT(copy.instances()[0].duration(), fromMs(800));
    EXPECT_GT(copy.instances()[1].duration(), fromMs(4500));

    // The Figure-1 chain still mines correctly from the reloaded copy.
    WaitGraphBuilder builder(copy);
    const WaitGraph graph = builder.build(copy.instances()[0]);
    EXPECT_FALSE(graph.empty());
    EXPECT_GT(graph.topLevelDuration(), fromMs(700));
}

TEST(Integration, ReportOverMediumCorpus)
{
    EagerSource analyzer_source(mediumCorpus());
    Analyzer analyzer(analyzer_source);
    std::vector<ScenarioThresholds> scenarios;
    for (const ScenarioSpec &scn : scenarioCatalog())
        scenarios.push_back({scn.name, scn.tFast, scn.tSlow});
    const std::string report =
        buildReport(analyzer, scenarios, ReportOptions{});
    EXPECT_GT(report.size(), 1000u);
    EXPECT_NE(report.find("impact by component"), std::string::npos);
    // All eight scenarios show up.
    for (const ScenarioSpec &scn : scenarioCatalog())
        EXPECT_NE(report.find(scn.name), std::string::npos);
}

} // namespace
} // namespace tracelens
