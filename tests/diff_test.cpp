/**
 * @file
 * Tests for mining-result diffing (regression tracking) and the
 * generator's fleet-distribution knobs.
 */

#include <gtest/gtest.h>

#include "src/core/analyzer.h"
#include "src/mining/diff.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace
{

ContrastPattern
pattern(SymbolTable &sym, std::initializer_list<std::string_view> waits,
        DurationNs cost, std::uint64_t count)
{
    ContrastPattern p;
    for (auto w : waits)
        p.tuple.waits.push_back(sym.internFrame(w));
    p.tuple.normalize();
    p.cost = cost;
    p.count = count;
    p.maxExec = cost;
    return p;
}

TEST(MiningDiff, ClassifiesAppearedDisappearedChangedStable)
{
    // Two corpora intern the same names in different orders.
    SymbolTable before_sym, after_sym;
    after_sym.internFrame("zzz!pad"); // shift ids

    MiningResult before, after;
    before.patterns.push_back(
        pattern(before_sym, {"fs.sys!Read"}, 1000, 1)); // stays stable
    before.patterns.push_back(
        pattern(before_sym, {"net.sys!Send"}, 400, 1)); // disappears
    before.patterns.push_back(
        pattern(before_sym, {"fv.sys!Query"}, 100, 1)); // gets 5x worse

    after.patterns.push_back(
        pattern(after_sym, {"fs.sys!Read"}, 1100, 1)); // ~stable
    after.patterns.push_back(
        pattern(after_sym, {"fv.sys!Query"}, 500, 1)); // changed
    after.patterns.push_back(
        pattern(after_sym, {"graphics.sys!Flip"}, 900, 1)); // new

    const MiningDiff diff = diffMiningResults(before, before_sym,
                                              after, after_sym, 1.5);
    ASSERT_EQ(diff.appeared.size(), 1u);
    EXPECT_EQ(after_sym.frameName(diff.appeared[0].tuple.waits[0]),
              "graphics.sys!Flip");
    ASSERT_EQ(diff.disappeared.size(), 1u);
    EXPECT_EQ(
        before_sym.frameName(diff.disappeared[0].tuple.waits[0]),
        "net.sys!Send");
    ASSERT_EQ(diff.changed.size(), 1u);
    EXPECT_NEAR(diff.changed[0].impactRatio(), 5.0, 1e-9);
    EXPECT_EQ(diff.stable, 1u);

    const std::string text = diff.render(after_sym);
    EXPECT_NE(text.find("appeared=1"), std::string::npos);
    EXPECT_NE(text.find("graphics.sys!Flip"), std::string::npos);
}

TEST(MiningDiff, IdenticalResultsAreAllStable)
{
    SymbolTable sym;
    MiningResult result;
    result.patterns.push_back(pattern(sym, {"a.sys!X"}, 100, 2));
    result.patterns.push_back(pattern(sym, {"b.sys!Y"}, 50, 1));

    const MiningDiff diff =
        diffMiningResults(result, sym, result, sym);
    EXPECT_TRUE(diff.appeared.empty());
    EXPECT_TRUE(diff.disappeared.empty());
    EXPECT_TRUE(diff.changed.empty());
    EXPECT_EQ(diff.stable, 2u);
}

TEST(MiningDiff, MultiSetTuplesMatchAcrossIdSpaces)
{
    SymbolTable a, b;
    // Intern in opposite orders so the sorted-by-id tuples differ.
    const FrameId a1 = a.internFrame("x.sys!P");
    const FrameId a2 = a.internFrame("y.sys!Q");
    const FrameId b2 = b.internFrame("y.sys!Q");
    const FrameId b1 = b.internFrame("x.sys!P");

    ContrastPattern pa;
    pa.tuple.waits = {a1, a2};
    pa.tuple.normalize();
    pa.cost = 100;
    pa.count = 1;
    ContrastPattern pb;
    pb.tuple.waits = {b1, b2};
    pb.tuple.normalize();
    pb.cost = 110;
    pb.count = 1;

    MiningResult before, after;
    before.patterns.push_back(pa);
    after.patterns.push_back(pb);
    const MiningDiff diff = diffMiningResults(before, a, after, b);
    EXPECT_EQ(diff.stable, 1u);
    EXPECT_TRUE(diff.appeared.empty());
}

TEST(GeneratorDistribution, FleetKnobsShapeTheCorpus)
{
    // All-encrypted fleet: every stream mentions se.sys.
    CorpusSpec all_encrypted;
    all_encrypted.machines = 8;
    all_encrypted.seed = 3;
    all_encrypted.encryptedFraction = 1.0;
    const TraceCorpus encrypted = generateCorpus(all_encrypted);
    bool saw_se = false;
    for (FrameId f = 0; f < encrypted.symbols().frameCount(); ++f) {
        saw_se = saw_se ||
                 encrypted.symbols().componentName(f) == "se.sys";
    }
    EXPECT_TRUE(saw_se);

    // No-encryption fleet: se.sys never appears.
    CorpusSpec none;
    none.machines = 8;
    none.seed = 3;
    none.encryptedFraction = 0.0;
    const TraceCorpus plain = generateCorpus(none);
    for (FrameId f = 0; f < plain.symbols().frameCount(); ++f)
        EXPECT_NE(plain.symbols().componentName(f), "se.sys");
}

TEST(MiningDiff, TwoSeedsOfSameWorkloadAreMostlyStable)
{
    // The same fleet spec under two seeds should share most behaviour
    // (patterns), with some churn — the realistic regression baseline.
    auto analyze = [](std::uint64_t seed) {
        CorpusSpec spec;
        spec.machines = 25;
        spec.seed = seed;
        spec.onlyScenarios = {"BrowserTabCreate"};
        return generateCorpus(spec);
    };
    const TraceCorpus a = analyze(100);
    const TraceCorpus b = analyze(200);

    EagerSource source_a(a), source_b(b);
    Analyzer ana_a(source_a), ana_b(source_b);
    const ScenarioAnalysis ra = ana_a.analyzeScenario(
        "BrowserTabCreate", fromMs(300), fromMs(500));
    const ScenarioAnalysis rb = ana_b.analyzeScenario(
        "BrowserTabCreate", fromMs(300), fromMs(500));

    const MiningDiff diff = diffMiningResults(
        ra.mining, a.symbols(), rb.mining, b.symbols(), 3.0);
    // Shared structure exists: at least some patterns match exactly.
    EXPECT_GT(diff.stable + diff.changed.size(), 0u);
}

} // namespace
} // namespace tracelens
