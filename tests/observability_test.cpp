/**
 * @file
 * Distributed-observability tests (docs/TELEMETRY.md "Distributed
 * tracing & metrics"): exact bucket-wise histogram-state merging, the
 * Prometheus text exposition renderer, the metrics/span JSON codecs
 * the `metrics` and `telemetry_pull` protocol methods ship, the
 * multi-node Chrome-trace stitcher (pid namespacing, metadata events,
 * cross-node flow arrows), trace-context propagation through spans,
 * and the per-request flight recorder ring. Built into the "obs"
 * ctest label so the subset runs under both sanitizers
 * (ctest --preset asan-obs / tsan-obs).
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/server/flightrecorder.h"
#include "src/server/protocol.h"
#include "src/util/json.h"
#include "src/util/telemetry.h"

namespace tracelens
{
namespace
{

// ------------------------------------------------- histogram merging

TEST(ObsHistogramState, MergedPercentilesEqualWholePopulation)
{
    // The property the coordinator's metrics aggregation rests on:
    // bucket boundaries are fixed, so merging per-worker states is
    // *exact* — every percentile query answers identically to a
    // histogram that saw the whole population. A skewed quadratic
    // distribution exercises many octaves.
    Histogram whole, workerA, workerB, workerC;
    for (std::uint64_t i = 0; i < 3000; ++i) {
        const std::uint64_t sample = i * i / 7;
        whole.record(sample);
        (i % 3 == 0 ? workerA : i % 3 == 1 ? workerB : workerC)
            .record(sample);
    }

    Histogram merged;
    merged.mergeState(workerA.state());
    merged.mergeState(workerB.state());
    merged.mergeState(workerC.state());

    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.sum(), whole.sum());
    EXPECT_EQ(merged.max(), whole.max());
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0})
        EXPECT_EQ(merged.percentile(q), whole.percentile(q))
            << "quantile " << q;
}

TEST(ObsHistogramState, StateIsSparseAndIgnoresBogusBuckets)
{
    Histogram histogram;
    histogram.record(3);
    histogram.record(3);
    histogram.record(1000);

    const Histogram::State state = histogram.state();
    EXPECT_EQ(state.count, 3u);
    EXPECT_EQ(state.sum, 1006u);
    EXPECT_EQ(state.max, 1000u);
    // Only occupied buckets ship (the wire format stays tiny even
    // though the histogram owns 496 buckets).
    ASSERT_EQ(state.buckets.size(), 2u);
    EXPECT_LT(state.buckets[0].first, state.buckets[1].first);

    // A hostile state with an out-of-range index must not write out
    // of bounds; the bogus bucket is dropped, the scalars still fold.
    Histogram::State hostile;
    hostile.count = 1;
    hostile.sum = 5;
    hostile.max = 5;
    hostile.buckets.emplace_back(1u << 20, 1);
    Histogram victim;
    victim.mergeState(hostile);
    EXPECT_EQ(victim.count(), 1u);
    // No bucket landed, so the quantile scan exhausts the buckets and
    // falls back to the merged max.
    EXPECT_EQ(victim.percentile(0.5), 5u);
}

TEST(ObsHistogramState, RegistrySnapshotMergeIsExact)
{
    MetricsRegistry worker1, worker2, aggregate;
    worker1.counter("server.requests").add(7);
    worker2.counter("server.requests").add(5);
    worker1.gauge("pool.queue_depth").set(3.0);
    for (std::uint64_t i = 0; i < 500; ++i)
        (i % 2 == 0 ? worker1 : worker2)
            .histogram("server.latency_us")
            .record(i * 13);

    aggregate.merge(worker1.snapshot());
    aggregate.merge(worker2.snapshot());

    Histogram whole;
    for (std::uint64_t i = 0; i < 500; ++i)
        whole.record(i * 13);
    EXPECT_EQ(aggregate.counter("server.requests").value(), 12u);
    EXPECT_EQ(aggregate.gauge("pool.queue_depth").value(), 3.0);
    Histogram &merged = aggregate.histogram("server.latency_us");
    EXPECT_EQ(merged.count(), whole.count());
    for (const double q : {0.5, 0.95, 0.99})
        EXPECT_EQ(merged.percentile(q), whole.percentile(q));
}

// --------------------------------------------- Prometheus exposition

TEST(ObsPrometheus, RendersTextExpositionFormat)
{
    MetricsRegistry registry;
    registry.counter("server.requests").add(42);
    registry.gauge("pool.queue_depth").set(2.5);
    registry.histogram("server.latency_us").record(100);
    registry.histogram("server.latency_us").record(200);

    const std::string text = renderPrometheus(
        registry.snapshot(),
        {{"node", "127.0.0.1:7070"}, {"role", "worker"}});

    // Names are prefixed and sanitized, every sample carries the
    // label set, histograms render as summaries with quantiles.
    EXPECT_NE(text.find("# TYPE tracelens_server_requests counter"),
              std::string::npos);
    EXPECT_NE(text.find("tracelens_server_requests{node=\"127.0.0.1:"
                        "7070\",role=\"worker\"} 42"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE tracelens_pool_queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(
        text.find("# TYPE tracelens_server_latency_us summary"),
        std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
    EXPECT_NE(text.find("tracelens_server_latency_us_sum"),
              std::string::npos);
    EXPECT_NE(text.find("tracelens_server_latency_us_count{node="),
              std::string::npos);
    // No un-sanitized dots may survive in metric names.
    EXPECT_EQ(text.find("tracelens_server.requests"),
              std::string::npos);
    EXPECT_EQ(text.back(), '\n');
}

// ------------------------------------------------- wire JSON codecs

TEST(ObsCodec, HexIdRoundTripsAndRejectsMalformed)
{
    // 64-bit ids cross JSON as 16-hex-digit strings (a JSON number is
    // a double — 53 mantissa bits lose the top of the id space).
    const std::uint64_t id = 0xdeadbeefcafebabeull;
    EXPECT_EQ(hexId(id).size(), 16u);
    EXPECT_EQ(parseHexId(hexId(id)), id);
    EXPECT_EQ(parseHexId(hexId(1)), 1u);
    EXPECT_EQ(parseHexId("DEADBEEFCAFEBABE"), id); // case-insensitive
    EXPECT_EQ(parseHexId(""), 0u);
    EXPECT_EQ(parseHexId("xyz"), 0u);
    EXPECT_EQ(parseHexId("00000000000000001"), 0u); // 17 digits
    EXPECT_EQ(parseHexId("12g4"), 0u);
}

TEST(ObsCodec, MetricsSnapshotJsonRoundTrips)
{
    MetricsRegistry registry;
    registry.counter("server.requests").add(9);
    registry.counter("server.errors").add(1);
    registry.gauge("pool.queue_depth").set(1.25);
    for (std::uint64_t i = 1; i <= 100; ++i)
        registry.histogram("server.latency_us").record(i * 31);
    const MetricsSnapshot snapshot = registry.snapshot();

    const MetricsSnapshot back = server::parseMetricsSnapshot(
        server::metricsSnapshotJson(snapshot));

    ASSERT_EQ(back.counters.size(), snapshot.counters.size());
    EXPECT_EQ(back.counters, snapshot.counters);
    ASSERT_EQ(back.gauges.size(), snapshot.gauges.size());
    EXPECT_EQ(back.gauges, snapshot.gauges);
    ASSERT_EQ(back.histograms.size(), 1u);
    const Histogram::State &state = back.histograms[0].second;
    const Histogram::State &original = snapshot.histograms[0].second;
    EXPECT_EQ(state.count, original.count);
    EXPECT_EQ(state.sum, original.sum);
    EXPECT_EQ(state.max, original.max);
    EXPECT_EQ(state.buckets, original.buckets);
}

TEST(ObsCodec, ParseMetricsSnapshotToleratesMissingSections)
{
    // Old peers (or hand-written probes) may ship partial documents;
    // the parser must not require every section.
    const MetricsSnapshot empty =
        server::parseMetricsSnapshot(JsonValue::makeObject());
    EXPECT_TRUE(empty.counters.empty());
    EXPECT_TRUE(empty.gauges.empty());
    EXPECT_TRUE(empty.histograms.empty());
}

TEST(ObsCodec, NodeSpansJsonRoundTripsFullWidthIds)
{
    NodeSpans node;
    node.node = "worker @ 127.0.0.1:7071";
    node.epochUnixUs = 1'700'000'000'000'000ull;
    SpanSnapshot span;
    span.name = "server.request";
    span.category = "server";
    span.tid = 3;
    span.depth = 1;
    span.startUs = 500;
    span.durUs = 1200;
    span.cpuNs = 900'000;
    span.traceId = 0xfedcba9876543210ull;
    span.spanId = 0x0123456789abcdefull;
    span.parentSpanId = 0xaaaabbbbccccddddull;
    span.args.emplace_back("method", "analyze");
    node.spans.push_back(span);
    SpanSnapshot untraced;
    untraced.name = "stage.ingest";
    untraced.category = "pipeline";
    untraced.startUs = 10;
    untraced.durUs = 20;
    node.spans.push_back(untraced);

    const NodeSpans back =
        server::parseNodeSpans(server::nodeSpansJson(node));

    EXPECT_EQ(back.node, node.node);
    EXPECT_EQ(back.epochUnixUs, node.epochUnixUs);
    ASSERT_EQ(back.spans.size(), 2u);
    const SpanSnapshot &traced = back.spans[0];
    EXPECT_EQ(traced.name, "server.request");
    EXPECT_EQ(traced.tid, 3u);
    EXPECT_EQ(traced.depth, 1u);
    EXPECT_EQ(traced.startUs, 500u);
    EXPECT_EQ(traced.durUs, 1200u);
    EXPECT_EQ(traced.cpuNs, 900'000u);
    EXPECT_EQ(traced.traceId, span.traceId);
    EXPECT_EQ(traced.spanId, span.spanId);
    EXPECT_EQ(traced.parentSpanId, span.parentSpanId);
    ASSERT_EQ(traced.args.size(), 1u);
    EXPECT_EQ(traced.args[0].first, "method");
    EXPECT_EQ(traced.args[0].second, "analyze");
    EXPECT_EQ(back.spans[1].traceId, 0u);
}

// -------------------------------------------- multi-node stitching

TEST(ObsChromeMerge, NamespacesPidsAndEmitsMetadata)
{
    // Two nodes whose spans share tid 7 — exactly the collision that
    // used to alias threads when two processes' traces were
    // concatenated. Each node must render under its own pid with
    // process_name/thread_name metadata.
    std::vector<NodeSpans> nodes(2);
    nodes[0].node = "coordinator @ 127.0.0.1:7000";
    nodes[0].pid = 1;
    nodes[0].epochUnixUs = 1000;
    nodes[1].node = "worker @ 127.0.0.1:7001";
    nodes[1].pid = 2;
    nodes[1].epochUnixUs = 1500;
    for (int n = 0; n < 2; ++n) {
        SpanSnapshot span;
        span.name = n == 0 ? "server.request" : "handler.analyze";
        span.category = "server";
        span.tid = 7;
        span.startUs = 100;
        span.durUs = 50;
        span.spanId = static_cast<std::uint64_t>(n + 1);
        nodes[n].spans.push_back(span);
    }

    const std::string trace =
        Telemetry::renderChromeTraceMerged(nodes);
    Expected<JsonValue> parsed = JsonValue::parse(trace);
    ASSERT_TRUE(parsed.ok()) << parsed.error().render();

    EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
    EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(trace.find("coordinator @ 127.0.0.1:7000"),
              std::string::npos);
    EXPECT_NE(trace.find("worker @ 127.0.0.1:7001"),
              std::string::npos);
    // Each node's X event lands in its own pid namespace, and the
    // later node's epoch delta rebases its timestamps (+500 us).
    EXPECT_NE(trace.find("\"ph\": \"X\", \"pid\": 1, \"tid\": 7, "
                         "\"ts\": 100"),
              std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"X\", \"pid\": 2, \"tid\": 7, "
                         "\"ts\": 600"),
              std::string::npos);
}

TEST(ObsChromeMerge, CrossNodeParentEdgesBecomeFlowArrows)
{
    std::vector<NodeSpans> nodes(2);
    nodes[0].node = "coordinator";
    nodes[0].pid = 1;
    nodes[1].node = "worker";
    nodes[1].pid = 2;

    SpanSnapshot parent;
    parent.name = "server.request";
    parent.category = "server";
    parent.tid = 1;
    parent.startUs = 10;
    parent.durUs = 100;
    parent.traceId = 0x42;
    parent.spanId = 0x1001;
    nodes[0].spans.push_back(parent);

    SpanSnapshot child;
    child.name = "server.request";
    child.category = "server";
    child.tid = 9;
    child.startUs = 30;
    child.durUs = 40;
    child.traceId = 0x42;
    child.spanId = 0x2002;
    child.parentSpanId = 0x1001; // lives on the other node
    nodes[1].spans.push_back(child);

    const std::string trace =
        Telemetry::renderChromeTraceMerged(nodes);
    Expected<JsonValue> parsed = JsonValue::parse(trace);
    ASSERT_TRUE(parsed.ok()) << parsed.error().render();

    // One flow start on the parent's node, one flow finish on the
    // child's, bound by the child's span id.
    const std::string flowId = hexId(0x2002);
    EXPECT_NE(trace.find("\"ph\": \"s\", \"id\": \"" + flowId + "\""),
              std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"f\", \"bp\": \"e\", \"id\": \"" +
                         flowId + "\""),
              std::string::npos);
    // A same-node parent edge must NOT draw an arrow: rerender with
    // both spans on one node and the flow events disappear.
    nodes[0].spans.push_back(child);
    nodes[1].spans.clear();
    const std::string sameNode =
        Telemetry::renderChromeTraceMerged(nodes);
    EXPECT_EQ(sameNode.find("\"ph\": \"s\""), std::string::npos);
}

// ------------------------------------------ trace-context plumbing

TEST(ObsSpanContext, ScopeInstallsContextAndSpansInheritIt)
{
    Telemetry::setEnabled(true);
    Telemetry::reset();
    {
        SpanContext incoming;
        incoming.traceId = 0xabcdef0123456789ull;
        incoming.parentSpanId = 0x7777;
        incoming.sampled = true;
        TraceContextScope scope(incoming);
        Span span("server.request", "server");
        ASSERT_TRUE(span.active());
        // Work dispatched from inside the span propagates the trace
        // id with the span itself as the parent.
        const SpanContext outgoing = Telemetry::currentContext();
        EXPECT_EQ(outgoing.traceId, incoming.traceId);
        EXPECT_EQ(outgoing.parentSpanId, span.id());
        EXPECT_TRUE(outgoing.sampled);
    }
    // The scope restored the thread to "no context".
    EXPECT_FALSE(Telemetry::currentContext().valid());

    const std::vector<SpanSnapshot> spans = Telemetry::snapshotSpans();
    ASSERT_EQ(spans.size(), 1u);
    // The root span adopted the remote parent — the receiving half of
    // cross-process propagation.
    EXPECT_EQ(spans[0].traceId, 0xabcdef0123456789ull);
    EXPECT_EQ(spans[0].parentSpanId, 0x7777u);
    EXPECT_NE(spans[0].spanId, 0u);
    Telemetry::setEnabled(false);
    Telemetry::reset();
}

TEST(ObsSpanContext, NewTraceIdsAreNonZeroAndDistinct)
{
    const std::uint64_t a = Telemetry::newTraceId();
    const std::uint64_t b = Telemetry::newTraceId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
}

// --------------------------------------------------- flight recorder

TEST(ObsFlightRecorder, BoundedRingKeepsNewestOldestFirst)
{
    server::FlightRecorder recorder(4);
    EXPECT_EQ(recorder.capacity(), 4u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        server::FlightRecord record;
        record.method = "sleep";
        record.totalUs = i;
        recorder.record(record);
    }
    EXPECT_EQ(recorder.total(), 10u);
    const std::vector<server::FlightRecord> records =
        recorder.snapshot();
    ASSERT_EQ(records.size(), 4u);
    // Oldest-first among the survivors: 6, 7, 8, 9.
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].totalUs, 6u + i);
}

TEST(ObsFlightRecorder, CapacityFloorsAtOne)
{
    server::FlightRecorder recorder(0);
    EXPECT_EQ(recorder.capacity(), 1u);
    server::FlightRecord record;
    record.method = "health";
    recorder.record(record);
    record.method = "stats";
    recorder.record(record);
    const std::vector<server::FlightRecord> records =
        recorder.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].method, "stats");
    EXPECT_EQ(recorder.total(), 2u);
}

} // namespace
} // namespace tracelens
