/**
 * @file
 * Tests for the analysis service (src/server/): the wire protocol
 * against hostile input (malformed JSON, oversized lines, half-closed
 * sockets, clients vanishing mid-response), backpressure and deadline
 * behaviour, the session registry's leak-freedom, warm-query serving
 * from the artifact store (asserted via stage-span outcomes), and
 * graceful drain. Built into the "server" ctest label so the whole
 * file runs under both sanitizers (ctest --preset asan-server /
 * tsan-server).
 */

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/trace/serialize.h"
#include "src/util/json.h"
#include "src/util/telemetry.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace server
{
namespace
{

namespace fs = std::filesystem;

/** Self-cleaning scratch dir (pid-suffixed: binaries run under -j). */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(fs::temp_directory_path() /
                ("tracelens_server_test_" +
                 std::to_string(::getpid()) + "_" + name))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

/** One small corpus file + one running daemon per fixture. */
class ServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        scratch_ = std::make_unique<ScratchDir>(
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
        CorpusSpec spec;
        spec.machines = 8;
        spec.seed = 1337;
        corpusPath_ = (scratch_->path() / "corpus.tlc").string();
        writeCorpusFile(generateCorpus(spec), corpusPath_);
    }

    /** Start a daemon on an ephemeral port with @p config. */
    void
    startServer(ServerConfig config = {})
    {
        config.host = "127.0.0.1";
        config.port = 0;
        config.enableTestMethods = true;
        server_ = std::make_unique<Server>(config);
        Expected<std::uint16_t> port = server_->start();
        ASSERT_TRUE(port.ok()) << port.error().render();
        port_ = port.value();
    }

    Client
    connect()
    {
        Expected<Client> client = Client::connect(
            "127.0.0.1", port_, std::chrono::milliseconds(30000));
        EXPECT_TRUE(client.ok());
        return std::move(client.value());
    }

    JsonValue
    analyzeParams(double top = 5) const
    {
        JsonValue params = JsonValue::makeObject();
        params.set("corpus", JsonValue(corpusPath_));
        params.set("scenario", JsonValue("BrowserTabCreate"));
        params.set("top", JsonValue(top));
        return params;
    }

    void
    TearDown() override
    {
        if (server_ != nullptr && !server_->stopped()) {
            server_->requestStop();
            server_->wait();
        }
        // Leak check on every path out of every test: a request that
        // crashed, timed out, or vanished must still unpin its
        // session.
        if (server_ != nullptr)
            EXPECT_EQ(server_->registry().stats().activeHandles, 0u);
        server_.reset();
        scratch_.reset();
    }

    std::unique_ptr<ScratchDir> scratch_;
    std::string corpusPath_;
    std::unique_ptr<Server> server_;
    std::uint16_t port_ = 0;
};

TEST_F(ServerTest, HealthReportsProtocolVersion)
{
    startServer();
    Client client = connect();
    Expected<CallResult> response =
        client.call("health", JsonValue::makeObject());
    ASSERT_TRUE(response.ok()) << response.error().render();
    ASSERT_TRUE(response.value().ok);
    const JsonValue *protocol =
        response.value().result.find("protocol");
    ASSERT_NE(protocol, nullptr);
    EXPECT_EQ(protocol->asNumber(), kProtocolVersion);
}

TEST_F(ServerTest, MalformedJsonAnswersBadRequestAndKeepsConnection)
{
    startServer();
    Client client = connect();
    const char *garbage[] = {
        "not json at all",
        "{\"method\":}",
        "[1,2,3]",
        "{\"method\":42}",
        "{\"method\":\"\"}",
        "{\"method\":\"analyze\",\"params\":7}",
        "{\"method\":\"analyze\",\"deadline_ms\":-5}",
        "{\"unterminated\":\"",
    };
    for (const char *line : garbage) {
        ASSERT_TRUE(client.sendRaw(std::string(line) + "\n"));
        Expected<std::string> reply = client.readLine();
        ASSERT_TRUE(reply.ok()) << reply.error().render();
        EXPECT_NE(reply.value().find("bad_request"),
                  std::string::npos)
            << "for input: " << line;
    }
    // Deeply nested input must be depth-limited, not stack-overflowed.
    std::string deep(20000, '[');
    ASSERT_TRUE(client.sendRaw(deep + "\n"));
    Expected<std::string> reply = client.readLine();
    ASSERT_TRUE(reply.ok());
    EXPECT_NE(reply.value().find("bad_request"), std::string::npos);

    // The connection survived all of it.
    Expected<CallResult> health =
        client.call("health", JsonValue::makeObject());
    ASSERT_TRUE(health.ok());
    EXPECT_TRUE(health.value().ok);
}

TEST_F(ServerTest, OversizedRequestLineIsRejectedAndConnectionClosed)
{
    ServerConfig config;
    config.maxLineBytes = 256;
    startServer(config);
    Client client = connect();

    // 4 KiB without a newline: the server must bound its buffer, send
    // one bad_request error, and hang up.
    ASSERT_TRUE(client.sendRaw(std::string(4096, 'x')));
    Expected<std::string> reply = client.readLine();
    ASSERT_TRUE(reply.ok()) << reply.error().render();
    EXPECT_NE(reply.value().find("bad_request"), std::string::npos);
    Expected<std::string> eof = client.readLine();
    EXPECT_FALSE(eof.ok()); // connection closed by server

    // The daemon itself is unaffected.
    Client fresh = connect();
    Expected<CallResult> health =
        fresh.call("health", JsonValue::makeObject());
    ASSERT_TRUE(health.ok());
    EXPECT_TRUE(health.value().ok);
}

TEST_F(ServerTest, UnknownMethodAndUnknownCorpusAnswerNotFound)
{
    startServer();
    Client client = connect();

    Expected<CallResult> method =
        client.call("frobnicate", JsonValue::makeObject());
    ASSERT_TRUE(method.ok());
    EXPECT_FALSE(method.value().ok);
    EXPECT_EQ(method.value().errorCode, "not_found");

    JsonValue params = JsonValue::makeObject();
    params.set("corpus",
               JsonValue((scratch_->path() / "nope.tlc").string()));
    Expected<CallResult> corpus = client.call("ingest", params);
    ASSERT_TRUE(corpus.ok());
    EXPECT_FALSE(corpus.value().ok);
    EXPECT_EQ(corpus.value().errorCode, "not_found");

    JsonValue bad = analyzeParams();
    bad.set("scenario", JsonValue("NoSuchScenario"));
    bad.set("tfast_ms", JsonValue(100));
    bad.set("tslow_ms", JsonValue(200));
    Expected<CallResult> scenario = client.call("analyze", bad);
    ASSERT_TRUE(scenario.ok());
    EXPECT_FALSE(scenario.value().ok);
    EXPECT_EQ(scenario.value().errorCode, "not_found");
}

TEST_F(ServerTest, WarmQueriesAreServedFromTheArtifactStore)
{
    startServer();
    Client client = connect();

    Telemetry::setEnabled(true);
    Telemetry::reset();

    // Cold: every pipeline stage builds (outcome "miss").
    Expected<CallResult> cold = client.call("analyze", analyzeParams(3));
    ASSERT_TRUE(cold.ok()) << cold.error().render();
    ASSERT_TRUE(cold.value().ok) << cold.value().errorMessage;
    const std::string coldTrace = Telemetry::renderChromeTrace();
    EXPECT_NE(coldTrace.find("stage."), std::string::npos);
    EXPECT_NE(coldTrace.find("\"outcome\": \"miss\""),
              std::string::npos)
        << coldTrace;

    // Warm, different params (top=5): a different response-cache key
    // but the same underlying artifacts — every stage the pipeline
    // re-enters must be served from the store, nothing recomputed.
    Telemetry::reset();
    Expected<CallResult> warm = client.call("analyze", analyzeParams(5));
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(warm.value().ok);
    const std::string warmTrace = Telemetry::renderChromeTrace();
    EXPECT_NE(warmTrace.find("stage."), std::string::npos);
    EXPECT_EQ(warmTrace.find("\"outcome\": \"miss\""),
              std::string::npos)
        << warmTrace;

    // Warm, identical params: the rendered response itself is cached;
    // the pipeline is not re-entered at all.
    Telemetry::reset();
    Expected<CallResult> repeat =
        client.call("analyze", analyzeParams(5));
    ASSERT_TRUE(repeat.ok());
    ASSERT_TRUE(repeat.value().ok);
    const std::string repeatTrace = Telemetry::renderChromeTrace();
    EXPECT_EQ(repeatTrace.find("stage."), std::string::npos);
    EXPECT_NE(repeatTrace.find("server.response-cache-hit"),
              std::string::npos);
    EXPECT_EQ(repeat.value().result.render(),
              warm.value().result.render());
    Telemetry::setEnabled(false);
    Telemetry::reset();
}

TEST_F(ServerTest, BackpressureRejectsBeyondMaxInflight)
{
    ServerConfig config;
    config.workers = 1;
    config.maxInflight = 1;
    startServer(config);

    // First request occupies the single worker and the single
    // inflight slot...
    Client busy = connect();
    JsonValue sleepLong = JsonValue::makeObject();
    sleepLong.set("ms", JsonValue(500));
    JsonValue request = JsonValue::makeObject();
    request.set("id", JsonValue(1));
    request.set("method", JsonValue("sleep"));
    request.set("params", sleepLong);
    ASSERT_TRUE(busy.sendRaw(request.render() + "\n"));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // ...so a second is rejected with "overloaded" immediately, from
    // the reader thread, without queueing behind the sleeper.
    Client rejected = connect();
    JsonValue sleepShort = JsonValue::makeObject();
    sleepShort.set("ms", JsonValue(1));
    const auto start = std::chrono::steady_clock::now();
    Expected<CallResult> response =
        rejected.call("sleep", sleepShort);
    const auto elapsed =
        std::chrono::steady_clock::now() - start;
    ASSERT_TRUE(response.ok()) << response.error().render();
    EXPECT_FALSE(response.value().ok);
    EXPECT_EQ(response.value().errorCode, "overloaded");
    EXPECT_LT(elapsed, std::chrono::milliseconds(400));

    // Control-plane methods still answer while the queue is full.
    Expected<CallResult> health =
        rejected.call("health", JsonValue::makeObject());
    ASSERT_TRUE(health.ok());
    EXPECT_TRUE(health.value().ok);

    // The sleeper finishes normally.
    Expected<std::string> done = busy.readLine();
    ASSERT_TRUE(done.ok());
    EXPECT_NE(done.value().find("slept_ms"), std::string::npos);
    EXPECT_GE(server_->stats().rejected, 1u);
}

TEST_F(ServerTest, DeadlinesCancelCooperatively)
{
    ServerConfig config;
    config.workers = 1;
    startServer(config);
    Client client = connect();

    // In-handler expiry: the sleep loop checks the deadline and stops
    // early instead of burning the full second.
    JsonValue params = JsonValue::makeObject();
    params.set("ms", JsonValue(1000));
    const auto start = std::chrono::steady_clock::now();
    Expected<CallResult> response = client.call("sleep", params, 50);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_TRUE(response.ok()) << response.error().render();
    EXPECT_FALSE(response.value().ok);
    EXPECT_EQ(response.value().errorCode, "deadline_exceeded");
    EXPECT_LT(elapsed, std::chrono::milliseconds(800));

    // Queue-wait expiry: a request whose deadline elapses while a
    // long request holds the only worker is answered at dequeue, not
    // run.
    Client blocker = connect();
    JsonValue longSleep = JsonValue::makeObject();
    longSleep.set("ms", JsonValue(400));
    JsonValue blockReq = JsonValue::makeObject();
    blockReq.set("id", JsonValue(1));
    blockReq.set("method", JsonValue("sleep"));
    blockReq.set("params", longSleep);
    ASSERT_TRUE(blocker.sendRaw(blockReq.render() + "\n"));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    JsonValue quick = JsonValue::makeObject();
    quick.set("ms", JsonValue(1));
    Expected<CallResult> queued = client.call("sleep", quick, 100);
    ASSERT_TRUE(queued.ok());
    EXPECT_FALSE(queued.value().ok);
    EXPECT_EQ(queued.value().errorCode, "deadline_exceeded");
    Expected<std::string> done = blocker.readLine();
    ASSERT_TRUE(done.ok());
}

TEST_F(ServerTest, HalfClosedSocketStillReceivesItsResponse)
{
    startServer();
    Client client = connect();
    JsonValue request = JsonValue::makeObject();
    request.set("id", JsonValue(9));
    request.set("method", JsonValue("ingest"));
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpusPath_));
    request.set("params", params);
    ASSERT_TRUE(client.sendRaw(request.render() + "\n"));
    client.shutdownWrite(); // half-close: FIN sent, read side open

    Expected<std::string> reply = client.readLine();
    ASSERT_TRUE(reply.ok()) << reply.error().render();
    EXPECT_NE(reply.value().find("\"ok\":true"), std::string::npos);
    EXPECT_NE(reply.value().find("shards"), std::string::npos);
}

TEST_F(ServerTest, ClientDisconnectMidResponseDoesNotCrashOrLeak)
{
    startServer();
    for (int i = 0; i < 5; ++i) {
        Client client = connect();
        JsonValue request = JsonValue::makeObject();
        request.set("id", JsonValue(i));
        request.set("method", JsonValue("sleep"));
        JsonValue params = JsonValue::makeObject();
        params.set("ms", JsonValue(60));
        request.set("params", params);
        ASSERT_TRUE(client.sendRaw(request.render() + "\n"));
        client.close(); // gone before the worker answers
    }
    // Workers must finish the orphaned requests, count the drops, and
    // release every session handle (checked in TearDown, after the
    // drain guarantees the workers retired them).
    Client probe = connect();
    for (int tries = 0; tries < 100; ++tries) {
        if (server_->stats().inflight == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(server_->stats().inflight, 0u);
    Expected<CallResult> health =
        probe.call("health", JsonValue::makeObject());
    ASSERT_TRUE(health.ok());
    EXPECT_TRUE(health.value().ok);
}

TEST_F(ServerTest, ConcurrentClientsAllSucceed)
{
    ServerConfig config;
    config.workers = 4;
    startServer(config);

    constexpr int kClients = 8;
    constexpr int kRequests = 6;
    std::vector<int> failures(kClients, 0);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            Expected<Client> client = Client::connect(
                "127.0.0.1", port_,
                std::chrono::milliseconds(60000));
            if (!client.ok()) {
                failures[static_cast<std::size_t>(c)] = kRequests;
                return;
            }
            for (int r = 0; r < kRequests; ++r) {
                JsonValue params = JsonValue::makeObject();
                params.set("corpus", JsonValue(corpusPath_));
                const char *method = "ingest";
                if (r % 3 == 1) {
                    method = "analyze";
                    params.set("scenario",
                               JsonValue("BrowserTabCreate"));
                } else if (r % 3 == 2) {
                    method = "impact";
                }
                Expected<CallResult> response =
                    client.value().call(method, params);
                if (!response.ok() || !response.value().ok)
                    ++failures[static_cast<std::size_t>(c)];
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0)
            << "client " << c;

    // All clients hit ONE session (same path, same filter): the
    // concurrent first requests shared a single open.
    const RegistryStats registry = server_->registry().stats();
    EXPECT_EQ(registry.opened, 1u);
    EXPECT_GE(registry.reused,
              static_cast<std::uint64_t>(kClients * kRequests - 1));
}

TEST_F(ServerTest, ShutdownDrainsInflightRequestsFirst)
{
    startServer();
    Client client = connect();
    JsonValue request = JsonValue::makeObject();
    request.set("id", JsonValue(1));
    request.set("method", JsonValue("sleep"));
    JsonValue params = JsonValue::makeObject();
    params.set("ms", JsonValue(150));
    request.set("params", params);
    ASSERT_TRUE(client.sendRaw(request.render() + "\n"));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    server_->requestStop();
    // The admitted request still completes and is delivered.
    Expected<std::string> reply = client.readLine();
    ASSERT_TRUE(reply.ok()) << reply.error().render();
    EXPECT_NE(reply.value().find("slept_ms"), std::string::npos);

    server_->wait();
    EXPECT_TRUE(server_->stopped());
    EXPECT_EQ(server_->stats().inflight, 0u);
    EXPECT_GE(server_->stats().ok, 1u);
}

TEST(ServerUtil, ParseHostPort)
{
    auto good = parseHostPort("127.0.0.1:7070");
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value().first, "127.0.0.1");
    EXPECT_EQ(good.value().second, 7070);

    EXPECT_FALSE(parseHostPort("127.0.0.1").ok());
    EXPECT_FALSE(parseHostPort(":7070").ok());
    EXPECT_FALSE(parseHostPort("host:").ok());
    EXPECT_FALSE(parseHostPort("host:99999").ok());
    EXPECT_FALSE(parseHostPort("host:7a").ok());
}

TEST(ServerUtil, ResponseRenderingEchoesIdsAndCodes)
{
    const std::string anonymous =
        renderError(std::nullopt, ErrorCode::Overloaded, "full");
    EXPECT_NE(anonymous.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(anonymous.find("\"code\":\"overloaded\""),
              std::string::npos);
    EXPECT_EQ(anonymous.find("\"id\""), std::string::npos);
    EXPECT_EQ(anonymous.back(), '\n');
    const std::string withId =
        renderError(7.0, ErrorCode::DeadlineExceeded, "late");
    EXPECT_NE(withId.find("\"id\":7"), std::string::npos);
    EXPECT_NE(withId.find("deadline_exceeded"), std::string::npos);
}

} // namespace
} // namespace server
} // namespace tracelens
