/**
 * @file
 * Tests for the analysis service (src/server/): the wire protocol
 * against hostile input (malformed JSON, oversized lines, half-closed
 * sockets, clients vanishing mid-response), backpressure and deadline
 * behaviour, the session registry's leak-freedom, warm-query serving
 * from the artifact store (asserted via stage-span outcomes), and
 * graceful drain. Protocol-v2 framing, negotiation, and corruption
 * handling live in tests/protocol2_test.cpp; this file drives the
 * daemon through the typed Session API (negotiating v2 by default)
 * and through raw v1 lines. Built into the "server" ctest label so
 * the whole file runs under both sanitizers (ctest --preset
 * asan-server / tsan-server).
 */

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/trace/serialize.h"
#include "src/util/json.h"
#include "src/util/telemetry.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace server
{
namespace
{

namespace fs = std::filesystem;

/** Self-cleaning scratch dir (pid-suffixed: binaries run under -j). */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(fs::temp_directory_path() /
                ("tracelens_server_test_" +
                 std::to_string(::getpid()) + "_" + name))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

/** One small corpus file + one running daemon per fixture. */
class ServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        scratch_ = std::make_unique<ScratchDir>(
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
        CorpusSpec spec;
        spec.machines = 8;
        spec.seed = 1337;
        corpusPath_ = (scratch_->path() / "corpus.tlc").string();
        writeCorpusFile(generateCorpus(spec), corpusPath_);
    }

    /** Start a daemon on an ephemeral port with @p config. */
    void
    startServer(ServerConfig config = {})
    {
        config.host = "127.0.0.1";
        config.port = 0;
        config.enableTestMethods = true;
        server_ = std::make_unique<Server>(config);
        Expected<std::uint16_t> port = server_->start();
        ASSERT_TRUE(port.ok()) << port.error().render();
        port_ = port.value();
    }

    Session
    connect(SessionOptions options = {})
    {
        Expected<Session> session =
            Session::connect("127.0.0.1", port_, options);
        EXPECT_TRUE(session.ok());
        return std::move(session.value());
    }

    RawConn
    connectRaw()
    {
        Expected<RawConn> conn = RawConn::connect(
            "127.0.0.1", port_, std::chrono::milliseconds(30000));
        EXPECT_TRUE(conn.ok());
        return std::move(conn.value());
    }

    /** One raw v1 request/response round trip on @p conn. */
    std::string
    rawCall(RawConn &conn, const std::string &method,
            const JsonValue &params, double id = 1)
    {
        JsonValue request = JsonValue::makeObject();
        request.set("id", JsonValue(id));
        request.set("method", JsonValue(method));
        request.set("params", params);
        EXPECT_TRUE(conn.sendRaw(request.render() + "\n"));
        Expected<std::string> reply = conn.readLine();
        EXPECT_TRUE(reply.ok());
        return reply.ok() ? reply.value() : std::string();
    }

    AnalyzeRequest
    analyzeRequest(std::size_t top = 5) const
    {
        AnalyzeRequest request;
        request.corpus = corpusPath_;
        request.scenario = "BrowserTabCreate";
        request.top = top;
        return request;
    }

    void
    TearDown() override
    {
        if (server_ != nullptr && !server_->stopped()) {
            server_->requestStop();
            server_->wait();
        }
        // Leak check on every path out of every test: a request that
        // crashed, timed out, or vanished must still unpin its
        // session.
        if (server_ != nullptr)
            EXPECT_EQ(server_->registry().stats().activeHandles, 0u);
        server_.reset();
        scratch_.reset();
    }

    std::unique_ptr<ScratchDir> scratch_;
    std::string corpusPath_;
    std::unique_ptr<Server> server_;
    std::uint16_t port_ = 0;
};

TEST_F(ServerTest, HealthReportsProtocolVersions)
{
    startServer();
    Session session = connect();
    // Auto-negotiation against a current server lands on v2.
    EXPECT_EQ(session.protocolVersion(), kProtocolVersionV2);
    Expected<Response> response = session.health();
    ASSERT_TRUE(response.ok()) << response.error().render();
    ASSERT_TRUE(response.value().ok);
    const JsonValue *protocol =
        response.value().result.find("protocol");
    ASSERT_NE(protocol, nullptr);
    EXPECT_EQ(protocol->asNumber(), kProtocolVersion);
    const JsonValue *protocols =
        response.value().result.find("protocols");
    ASSERT_NE(protocols, nullptr);
    ASSERT_TRUE(protocols->isArray());
    ASSERT_EQ(protocols->asArray().size(),
              supportedProtocolVersions().size());
    EXPECT_EQ(protocols->asArray()[0].asNumber(), kProtocolVersionV1);
    EXPECT_EQ(protocols->asArray()[1].asNumber(), kProtocolVersionV2);
}

TEST_F(ServerTest, MalformedJsonAnswersBadRequestAndKeepsConnection)
{
    startServer();
    RawConn client = connectRaw();
    const char *garbage[] = {
        "not json at all",
        "{\"method\":}",
        "[1,2,3]",
        "{\"method\":42}",
        "{\"method\":\"\"}",
        "{\"method\":\"analyze\",\"params\":7}",
        "{\"method\":\"analyze\",\"deadline_ms\":-5}",
        "{\"unterminated\":\"",
    };
    for (const char *line : garbage) {
        ASSERT_TRUE(client.sendRaw(std::string(line) + "\n"));
        Expected<std::string> reply = client.readLine();
        ASSERT_TRUE(reply.ok()) << reply.error().render();
        EXPECT_NE(reply.value().find("bad_request"),
                  std::string::npos)
            << "for input: " << line;
    }
    // Deeply nested input must be depth-limited, not stack-overflowed.
    std::string deep(20000, '[');
    ASSERT_TRUE(client.sendRaw(deep + "\n"));
    Expected<std::string> reply = client.readLine();
    ASSERT_TRUE(reply.ok());
    EXPECT_NE(reply.value().find("bad_request"), std::string::npos);

    // The connection survived all of it.
    const std::string health =
        rawCall(client, "health", JsonValue::makeObject());
    EXPECT_NE(health.find("\"ok\":true"), std::string::npos);
}

TEST_F(ServerTest, OversizedRequestLineAnswersProtocolErrorAndRecovers)
{
    ServerConfig config;
    config.maxLineBytes = 256;
    startServer(config);
    RawConn client = connectRaw();

    // 4 KiB without a newline: the server must bound its buffer and
    // answer one structured protocol_error carrying the byte offset
    // of the offending line...
    ASSERT_TRUE(client.sendRaw(std::string(4096, 'x')));
    Expected<std::string> reply = client.readLine();
    ASSERT_TRUE(reply.ok()) << reply.error().render();
    Expected<Response> parsed = parseResponseLine(reply.value());
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(parsed.value().ok);
    EXPECT_EQ(parsed.value().error.code, ErrorCode::ProtocolError);
    EXPECT_EQ(parsed.value().error.offset, 0u)
        << "offending line started at byte 0 of the connection";

    // ...and the connection must survive: terminating the discarded
    // line resumes normal service on the same socket.
    ASSERT_TRUE(client.sendRaw("\n"));
    const std::string health =
        rawCall(client, "health", JsonValue::makeObject());
    EXPECT_NE(health.find("\"ok\":true"), std::string::npos);

    // A second violation mid-connection reports a nonzero offset.
    ASSERT_TRUE(client.sendRaw(std::string(4096, 'y')));
    Expected<std::string> again = client.readLine();
    ASSERT_TRUE(again.ok());
    Expected<Response> parsedAgain = parseResponseLine(again.value());
    ASSERT_TRUE(parsedAgain.ok());
    EXPECT_EQ(parsedAgain.value().error.code,
              ErrorCode::ProtocolError);
    EXPECT_GT(parsedAgain.value().error.offset, 0u);
    EXPECT_GE(server_->stats().protocolErrors, 2u);
}

TEST_F(ServerTest, UnknownMethodAndUnknownCorpusAnswerNotFound)
{
    startServer();
    Session session = connect();

    // Unknown method names can only exist over v1 (v2 transits a
    // method byte), so drive that case with a raw line.
    RawConn raw = connectRaw();
    const std::string unknown =
        rawCall(raw, "frobnicate", JsonValue::makeObject());
    EXPECT_NE(unknown.find("not_found"), std::string::npos);

    IngestRequest missing;
    missing.corpus = (scratch_->path() / "nope.tlc").string();
    Expected<Response> corpus = session.ingest(missing);
    ASSERT_TRUE(corpus.ok());
    EXPECT_FALSE(corpus.value().ok);
    EXPECT_EQ(corpus.value().error.code, ErrorCode::NotFound);

    AnalyzeRequest bad = analyzeRequest();
    bad.scenario = "NoSuchScenario";
    bad.tfastMs = 100;
    bad.tslowMs = 200;
    Expected<Response> scenario = session.analyze(bad);
    ASSERT_TRUE(scenario.ok());
    EXPECT_FALSE(scenario.value().ok);
    EXPECT_EQ(scenario.value().error.code, ErrorCode::NotFound);
}

TEST_F(ServerTest, WarmQueriesAreServedFromTheArtifactStore)
{
    startServer();
    Session session = connect();

    Telemetry::setEnabled(true);
    Telemetry::reset();

    // Cold: every pipeline stage builds (outcome "miss").
    Expected<Response> cold = session.analyze(analyzeRequest(3));
    ASSERT_TRUE(cold.ok()) << cold.error().render();
    ASSERT_TRUE(cold.value().ok) << cold.value().error.message;
    const std::string coldTrace = Telemetry::renderChromeTrace();
    EXPECT_NE(coldTrace.find("stage."), std::string::npos);
    EXPECT_NE(coldTrace.find("\"outcome\": \"miss\""),
              std::string::npos)
        << coldTrace;

    // Warm, different params (top=5): a different response-cache key
    // but the same underlying artifacts — every stage the pipeline
    // re-enters must be served from the store, nothing recomputed.
    Telemetry::reset();
    Expected<Response> warm = session.analyze(analyzeRequest(5));
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(warm.value().ok);
    const std::string warmTrace = Telemetry::renderChromeTrace();
    EXPECT_NE(warmTrace.find("stage."), std::string::npos);
    EXPECT_EQ(warmTrace.find("\"outcome\": \"miss\""),
              std::string::npos)
        << warmTrace;

    // Warm, identical params: the rendered response itself is cached;
    // the pipeline is not re-entered at all.
    Telemetry::reset();
    Expected<Response> repeat = session.analyze(analyzeRequest(5));
    ASSERT_TRUE(repeat.ok());
    ASSERT_TRUE(repeat.value().ok);
    const std::string repeatTrace = Telemetry::renderChromeTrace();
    EXPECT_EQ(repeatTrace.find("stage."), std::string::npos);
    EXPECT_NE(repeatTrace.find("server.response-cache-hit"),
              std::string::npos);
    EXPECT_EQ(repeat.value().result.render(),
              warm.value().result.render());
    Telemetry::setEnabled(false);
    Telemetry::reset();
}

TEST_F(ServerTest, BackpressureRejectsBeyondMaxInflight)
{
    ServerConfig config;
    config.workers = 1;
    config.maxInflight = 1;
    startServer(config);

    // First request occupies the single worker and the single
    // inflight slot...
    RawConn busy = connectRaw();
    JsonValue sleepLong = JsonValue::makeObject();
    sleepLong.set("ms", JsonValue(500));
    JsonValue request = JsonValue::makeObject();
    request.set("id", JsonValue(1));
    request.set("method", JsonValue("sleep"));
    request.set("params", sleepLong);
    ASSERT_TRUE(busy.sendRaw(request.render() + "\n"));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // ...so a second is rejected with "overloaded" immediately, from
    // the reader thread, without queueing behind the sleeper.
    Session rejected = connect();
    SleepRequest sleepShort;
    sleepShort.ms = 1;
    const auto start = std::chrono::steady_clock::now();
    Expected<Response> response = rejected.sleep(sleepShort);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_TRUE(response.ok()) << response.error().render();
    EXPECT_FALSE(response.value().ok);
    EXPECT_EQ(response.value().error.code, ErrorCode::Overloaded);
    EXPECT_LT(elapsed, std::chrono::milliseconds(400));

    // Control-plane methods still answer while the queue is full.
    Expected<Response> health = rejected.health();
    ASSERT_TRUE(health.ok());
    EXPECT_TRUE(health.value().ok);

    // The sleeper finishes normally.
    Expected<std::string> done = busy.readLine();
    ASSERT_TRUE(done.ok());
    EXPECT_NE(done.value().find("slept_ms"), std::string::npos);
    EXPECT_GE(server_->stats().rejected, 1u);
}

TEST_F(ServerTest, DeadlinesCancelCooperatively)
{
    ServerConfig config;
    config.workers = 1;
    startServer(config);
    Session session = connect();

    // In-handler expiry: the sleep loop checks the deadline and stops
    // early instead of burning the full second.
    SleepRequest longSleep;
    longSleep.ms = 1000;
    CallOptions tight;
    tight.deadlineMs = 50;
    const auto start = std::chrono::steady_clock::now();
    Expected<Response> response = session.sleep(longSleep, tight);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_TRUE(response.ok()) << response.error().render();
    EXPECT_FALSE(response.value().ok);
    EXPECT_EQ(response.value().error.code,
              ErrorCode::DeadlineExceeded);
    EXPECT_LT(elapsed, std::chrono::milliseconds(800));

    // Queue-wait expiry: a request whose deadline elapses while a
    // long request holds the only worker is answered at dequeue, not
    // run.
    RawConn blocker = connectRaw();
    JsonValue longParams = JsonValue::makeObject();
    longParams.set("ms", JsonValue(400));
    JsonValue blockReq = JsonValue::makeObject();
    blockReq.set("id", JsonValue(1));
    blockReq.set("method", JsonValue("sleep"));
    blockReq.set("params", longParams);
    ASSERT_TRUE(blocker.sendRaw(blockReq.render() + "\n"));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    SleepRequest quick;
    quick.ms = 1;
    CallOptions queuedDeadline;
    queuedDeadline.deadlineMs = 100;
    Expected<Response> queued = session.sleep(quick, queuedDeadline);
    ASSERT_TRUE(queued.ok());
    EXPECT_FALSE(queued.value().ok);
    EXPECT_EQ(queued.value().error.code, ErrorCode::DeadlineExceeded);
    Expected<std::string> done = blocker.readLine();
    ASSERT_TRUE(done.ok());
}

TEST_F(ServerTest, HalfClosedSocketStillReceivesItsResponse)
{
    startServer();
    RawConn client = connectRaw();
    JsonValue request = JsonValue::makeObject();
    request.set("id", JsonValue(9));
    request.set("method", JsonValue("ingest"));
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpusPath_));
    request.set("params", params);
    ASSERT_TRUE(client.sendRaw(request.render() + "\n"));
    client.shutdownWrite(); // half-close: FIN sent, read side open

    Expected<std::string> reply = client.readLine();
    ASSERT_TRUE(reply.ok()) << reply.error().render();
    EXPECT_NE(reply.value().find("\"ok\":true"), std::string::npos);
    EXPECT_NE(reply.value().find("shards"), std::string::npos);
}

TEST_F(ServerTest, ClientDisconnectMidResponseDoesNotCrashOrLeak)
{
    startServer();
    for (int i = 0; i < 5; ++i) {
        RawConn client = connectRaw();
        JsonValue request = JsonValue::makeObject();
        request.set("id", JsonValue(i));
        request.set("method", JsonValue("sleep"));
        JsonValue params = JsonValue::makeObject();
        params.set("ms", JsonValue(60));
        request.set("params", params);
        ASSERT_TRUE(client.sendRaw(request.render() + "\n"));
        client.close(); // gone before the worker answers
    }
    // Workers must finish the orphaned requests, count the drops, and
    // release every session handle (checked in TearDown, after the
    // drain guarantees the workers retired them).
    Session probe = connect();
    for (int tries = 0; tries < 100; ++tries) {
        if (server_->stats().inflight == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(server_->stats().inflight, 0u);
    Expected<Response> health = probe.health();
    ASSERT_TRUE(health.ok());
    EXPECT_TRUE(health.value().ok);
}

TEST_F(ServerTest, ConcurrentClientsAllSucceed)
{
    ServerConfig config;
    config.workers = 4;
    startServer(config);

    constexpr int kClients = 8;
    constexpr int kRequests = 6;
    std::vector<int> failures(kClients, 0);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            SessionOptions options;
            options.ioTimeout = std::chrono::milliseconds(60000);
            // Half the fleet negotiates v2, half stays on v1: both
            // transports hammer the same daemon concurrently.
            options.prefer = (c % 2 == 0) ? ProtocolPreference::Auto
                                          : ProtocolPreference::V1;
            Expected<Session> session =
                Session::connect("127.0.0.1", port_, options);
            if (!session.ok()) {
                failures[static_cast<std::size_t>(c)] = kRequests;
                return;
            }
            for (int r = 0; r < kRequests; ++r) {
                Expected<Response> response = [&]() {
                    if (r % 3 == 1) {
                        AnalyzeRequest request;
                        request.corpus = corpusPath_;
                        request.scenario = "BrowserTabCreate";
                        return session.value().analyze(request);
                    }
                    if (r % 3 == 2) {
                        ImpactRequest request;
                        request.corpus = corpusPath_;
                        return session.value().impact(request);
                    }
                    IngestRequest request;
                    request.corpus = corpusPath_;
                    return session.value().ingest(request);
                }();
                if (!response.ok() || !response.value().ok)
                    ++failures[static_cast<std::size_t>(c)];
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0)
            << "client " << c;

    // All clients hit ONE session (same path, same filter): the
    // concurrent first requests shared a single open.
    const RegistryStats registry = server_->registry().stats();
    EXPECT_EQ(registry.opened, 1u);
    EXPECT_GE(registry.reused,
              static_cast<std::uint64_t>(kClients * kRequests - 1));
    EXPECT_GE(server_->stats().v2Connections, 4u);
}

TEST_F(ServerTest, ShutdownDrainsInflightRequestsFirst)
{
    startServer();
    RawConn client = connectRaw();
    JsonValue request = JsonValue::makeObject();
    request.set("id", JsonValue(1));
    request.set("method", JsonValue("sleep"));
    JsonValue params = JsonValue::makeObject();
    params.set("ms", JsonValue(150));
    request.set("params", params);
    ASSERT_TRUE(client.sendRaw(request.render() + "\n"));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    server_->requestStop();
    // The admitted request still completes and is delivered.
    Expected<std::string> reply = client.readLine();
    ASSERT_TRUE(reply.ok()) << reply.error().render();
    EXPECT_NE(reply.value().find("slept_ms"), std::string::npos);

    server_->wait();
    EXPECT_TRUE(server_->stopped());
    EXPECT_EQ(server_->stats().inflight, 0u);
    EXPECT_GE(server_->stats().ok, 1u);
}

TEST_F(ServerTest, RegistryEvictionSurvivesConcurrentHandleChurn)
{
    // No daemon here: hammer the registry directly. A tiny resident
    // bound plus a zero idle timeout makes eviction fire constantly
    // while handles are being acquired and released, which is exactly
    // the race the ref-counting must survive (run under tsan-server).
    RegistryConfig config;
    config.maxSessions = 1;
    config.idleTimeout = std::chrono::seconds(0);
    SessionRegistry registry(config);

    // A second corpus so the LRU bound actually evicts.
    const std::string otherPath =
        (scratch_->path() / "other.tlc").string();
    CorpusSpec spec;
    spec.machines = 2;
    spec.seed = 99;
    writeCorpusFile(generateCorpus(spec), otherPath);

    constexpr int kThreads = 4;
    constexpr int kIterations = 40;
    std::vector<std::thread> churn;
    churn.reserve(kThreads + 1);
    for (int t = 0; t < kThreads; ++t) {
        churn.emplace_back([&, t] {
            for (int i = 0; i < kIterations; ++i) {
                const std::string &path =
                    ((t + i) % 2 == 0) ? corpusPath_ : otherPath;
                Expected<SessionRegistry::Handle> handle =
                    registry.acquire(path);
                ASSERT_TRUE(handle.ok())
                    << handle.error().render();
                // Touch the session while eviction races us: the
                // handle pins it, so this can never dangle.
                EXPECT_FALSE(
                    handle.value()->ingestInfo().describe.empty());
            }
        });
    }
    churn.emplace_back([&] {
        for (int i = 0; i < kThreads * kIterations; ++i) {
            registry.evictIdle();
            std::this_thread::yield();
        }
    });
    for (std::thread &t : churn)
        t.join();

    const RegistryStats stats = registry.stats();
    EXPECT_EQ(stats.activeHandles, 0u);
    EXPECT_LE(stats.openSessions, config.maxSessions);
    EXPECT_GE(stats.evicted, 1u)
        << "zero idle timeout + LRU bound of one must have evicted";
    registry.evictAll();
    EXPECT_EQ(registry.stats().openSessions, 0u);
}

TEST(ServerUtil, ParseHostPort)
{
    auto good = parseHostPort("127.0.0.1:7070");
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value().first, "127.0.0.1");
    EXPECT_EQ(good.value().second, 7070);

    EXPECT_FALSE(parseHostPort("127.0.0.1").ok());
    EXPECT_FALSE(parseHostPort(":7070").ok());
    EXPECT_FALSE(parseHostPort("host:").ok());
    EXPECT_FALSE(parseHostPort("host:99999").ok());
    EXPECT_FALSE(parseHostPort("host:7a").ok());
}

TEST(ServerUtil, ResponseRenderingEchoesIdsAndCodes)
{
    const std::string anonymous =
        renderError(std::nullopt, ErrorCode::Overloaded, "full");
    EXPECT_NE(anonymous.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(anonymous.find("\"code\":\"overloaded\""),
              std::string::npos);
    EXPECT_EQ(anonymous.find("\"id\""), std::string::npos);
    EXPECT_EQ(anonymous.back(), '\n');
    const std::string withId =
        renderError(7.0, ErrorCode::DeadlineExceeded, "late");
    EXPECT_NE(withId.find("\"id\":7"), std::string::npos);
    EXPECT_NE(withId.find("deadline_exceeded"), std::string::npos);

    const std::string withOffset = renderError(
        std::nullopt, ErrorCode::ProtocolError, "desync", 1234);
    EXPECT_NE(withOffset.find("protocol_error"), std::string::npos);
    EXPECT_NE(withOffset.find("\"offset\":1234"), std::string::npos);
    Expected<Response> parsed = parseResponseLine(withOffset);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().error.code, ErrorCode::ProtocolError);
    EXPECT_EQ(parsed.value().error.offset, 1234u);
}

TEST(ServerUtil, MethodAndErrorCodeVocabularyRoundTrips)
{
    for (const Method method :
         {Method::Health, Method::Stats, Method::Shutdown,
          Method::Analyze, Method::Impact, Method::Mine,
          Method::Ingest, Method::Sleep}) {
        EXPECT_EQ(parseMethod(methodName(method)), method);
        EXPECT_EQ(methodFromWireByte(methodWireByte(method)), method);
    }
    EXPECT_FALSE(parseMethod("frobnicate").has_value());
    EXPECT_FALSE(methodFromWireByte(200).has_value());
    for (const ErrorCode code :
         {ErrorCode::BadRequest, ErrorCode::Overloaded,
          ErrorCode::DeadlineExceeded, ErrorCode::NotFound,
          ErrorCode::ShuttingDown, ErrorCode::ProtocolError,
          ErrorCode::Internal}) {
        EXPECT_EQ(parseErrorCode(errorCodeName(code)), code);
    }
    EXPECT_FALSE(parseErrorCode("no_such_code").has_value());
}

} // namespace
} // namespace server
} // namespace tracelens
