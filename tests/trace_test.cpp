/**
 * @file
 * Unit tests for src/trace: events, symbols, streams, builder,
 * serialization round-trips, and validation.
 */

#include <algorithm>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/trace/builder.h"
#include "src/trace/serialize.h"
#include "src/trace/stream.h"
#include "src/trace/symbols.h"
#include "src/trace/validate.h"

namespace tracelens
{
namespace
{

TEST(Event, EndIsStartPlusCost)
{
    Event e;
    e.timestamp = 100;
    e.cost = 25;
    EXPECT_EQ(e.end(), 125);
}

TEST(Event, TypeNames)
{
    EXPECT_EQ(eventTypeName(EventType::Running), "Running");
    EXPECT_EQ(eventTypeName(EventType::Wait), "Wait");
    EXPECT_EQ(eventTypeName(EventType::Unwait), "Unwait");
    EXPECT_EQ(eventTypeName(EventType::HardwareService),
              "HardwareService");
}

TEST(EventRef, EqualityAndHash)
{
    EventRef a{1, 2}, b{1, 2}, c{1, 3};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EventRefHash h;
    EXPECT_EQ(h(a), h(b));
    EXPECT_NE(h(a), h(c));
}

TEST(EventRef, HashMixesStreamIntoLowBits)
{
    // Refs that differ only in the stream must differ in the *low 32
    // bits* of the hash: a 32-bit size_t keeps only those, and the old
    // `stream << 32` packing collapsed every stream onto one bucket
    // there (and was UB when size_t itself is 32 bits wide).
    EventRefHash h;
    const std::uint64_t mask = 0xffffffffu;
    std::size_t distinct = 0;
    std::vector<std::uint64_t> seen;
    for (std::uint32_t stream = 0; stream < 64; ++stream) {
        const std::uint64_t low =
            static_cast<std::uint64_t>(h(EventRef{stream, 7})) & mask;
        if (std::find(seen.begin(), seen.end(), low) == seen.end()) {
            seen.push_back(low);
            ++distinct;
        }
    }
    // splitmix64 makes 64 collisions in 2^32 astronomically unlikely;
    // demand near-perfect spread to catch any truncating regression.
    EXPECT_GE(distinct, 63u);
}

TEST(SymbolTable, FrameInterningAndComponents)
{
    SymbolTable sym;
    const FrameId f1 = sym.internFrame("fv.sys!QueryFileTable");
    const FrameId f2 = sym.internFrame("fv.sys!Dispatch");
    const FrameId f3 = sym.internFrame("DiskService");

    EXPECT_EQ(sym.internFrame("fv.sys!QueryFileTable"), f1);
    EXPECT_EQ(sym.frameName(f1), "fv.sys!QueryFileTable");
    EXPECT_EQ(sym.componentName(f1), "fv.sys");
    EXPECT_EQ(sym.componentId(f1), sym.componentId(f2));
    EXPECT_EQ(sym.componentName(f3), "DiskService");
    EXPECT_EQ(sym.frameCount(), 3u);
}

TEST(SymbolTable, StackInterningDeduplicates)
{
    SymbolTable sym;
    const FrameId a = sym.internFrame("app.exe!main");
    const FrameId b = sym.internFrame("fs.sys!Read");

    const std::vector<FrameId> s1 = {a, b};
    const std::vector<FrameId> s2 = {a, b};
    const std::vector<FrameId> s3 = {b, a};

    EXPECT_EQ(sym.internStack(s1), sym.internStack(s2));
    EXPECT_NE(sym.internStack(s1), sym.internStack(s3));
    EXPECT_EQ(sym.stackCount(), 2u);

    const auto frames = sym.stackFrames(sym.internStack(s1));
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0], a);
    EXPECT_EQ(frames[1], b);
}

TEST(SymbolTable, EmptyStackInterns)
{
    SymbolTable sym;
    const CallstackId s = sym.internStack({});
    EXPECT_EQ(sym.stackFrames(s).size(), 0u);
    EXPECT_EQ(sym.internStack({}), s);
}

TEST(SymbolTable, TopMatchingFrameIsTopmost)
{
    SymbolTable sym;
    const FrameId app = sym.internFrame("browser.exe!TabCreate");
    const FrameId fv = sym.internFrame("fv.sys!QueryFileTable");
    const FrameId fs = sym.internFrame("fs.sys!AcquireMDU");
    const FrameId kernel = sym.internFrame("kernel!WaitForObject");

    // Bottom-to-top: app -> fv -> fs -> kernel.
    const CallstackId stack =
        sym.internStack(std::vector<FrameId>{app, fv, fs, kernel});

    NameFilter drivers({"*.sys"});
    EXPECT_EQ(sym.topMatchingFrame(stack, drivers), fs);
    EXPECT_TRUE(sym.stackTouches(stack, drivers));

    NameFilter fvOnly({"fv.sys"});
    EXPECT_EQ(sym.topMatchingFrame(stack, fvOnly), fv);

    NameFilter none({"net.sys"});
    EXPECT_EQ(sym.topMatchingFrame(stack, none), kNoFrame);
    EXPECT_FALSE(sym.stackTouches(stack, none));
}

TEST(SymbolTable, FilterCacheExtendsAfterNewFrames)
{
    SymbolTable sym;
    NameFilter drivers({"*.sys"});
    const FrameId f1 = sym.internFrame("a.sys!F");
    const CallstackId s1 = sym.internStack(std::vector<FrameId>{f1});
    EXPECT_EQ(sym.topMatchingFrame(s1, drivers), f1);

    // Intern a new frame after the filter was first used.
    const FrameId f2 = sym.internFrame("b.sys!G");
    const CallstackId s2 = sym.internStack(std::vector<FrameId>{f2});
    EXPECT_EQ(sym.topMatchingFrame(s2, drivers), f2);
}

TEST(TraceStream, AppendsInOrderAndTracksEnd)
{
    TraceCorpus corpus;
    const auto idx = corpus.addStream("s");
    TraceStream &s = corpus.stream(idx);

    Event a;
    a.timestamp = 10;
    a.cost = 5;
    s.append(a);
    Event b;
    b.timestamp = 12;
    b.cost = 100;
    s.append(b);

    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.endTime(), 112);
    EXPECT_EQ(s.event(0).timestamp, 10);
}

TEST(TraceCorpus, ScenarioInterningAndLookup)
{
    TraceCorpus corpus;
    const auto a = corpus.internScenario("BrowserTabCreate");
    const auto b = corpus.internScenario("MenuDisplay");
    EXPECT_EQ(corpus.internScenario("BrowserTabCreate"), a);
    EXPECT_EQ(corpus.scenarioName(b), "MenuDisplay");
    EXPECT_EQ(corpus.findScenario("MenuDisplay"), b);
    EXPECT_EQ(corpus.findScenario("nope"), UINT32_MAX);
}

TEST(TraceCorpus, InstancesOfScenario)
{
    TraceCorpus corpus;
    StreamBuilder builder(corpus, "s");
    builder.instance("A", 1, 0, 10);
    builder.instance("B", 2, 0, 10);
    builder.instance("A", 3, 5, 20);
    builder.finish();

    const auto a = corpus.findScenario("A");
    const auto hits = corpus.instancesOfScenario(a);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(corpus.instances()[hits[0]].tid, 1u);
    EXPECT_EQ(corpus.instances()[hits[1]].tid, 3u);
}

TEST(StreamBuilder, SortsEventsByTimestamp)
{
    TraceCorpus corpus;
    StreamBuilder builder(corpus, "s");
    const CallstackId st = builder.stack({"app.exe!main"});
    builder.running(1, 30, 10, st);
    builder.wait(1, 10, st);
    builder.unwait(2, 20, 1, st);
    builder.finish();

    const TraceStream &s = corpus.stream(0);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s.event(0).type, EventType::Wait);
    EXPECT_EQ(s.event(1).type, EventType::Unwait);
    EXPECT_EQ(s.event(1).wtid, 1u);
    EXPECT_EQ(s.event(2).type, EventType::Running);
}

TraceCorpus
makeSmallCorpus()
{
    TraceCorpus corpus;
    StreamBuilder builder(corpus, "machine-0");
    const CallstackId app = builder.stack(
        {"browser.exe!TabCreate", "fv.sys!QueryFileTable",
         "kernel!AcquireLock"});
    const CallstackId worker =
        builder.stack({"browser.exe!Worker", "fv.sys!QueryFileTable"});
    const CallstackId disk = builder.stack({"DiskService"});

    builder.wait(1, 100, app);
    builder.running(2, 100, fromMs(1), worker);
    builder.hardware(9, 120, fromMs(3), disk);
    builder.unwait(2, 4100, 1, worker);
    builder.running(1, 4100, fromMs(1), app);
    builder.instance("BrowserTabCreate", 1, 100, fromMs(3));
    builder.finish();
    return corpus;
}

TEST(Serialize, RoundTripPreservesEverything)
{
    const TraceCorpus original = makeSmallCorpus();

    std::stringstream buffer;
    writeCorpus(original, buffer);
    const TraceCorpus copy = readCorpus(buffer);

    ASSERT_EQ(copy.streamCount(), original.streamCount());
    ASSERT_EQ(copy.totalEvents(), original.totalEvents());
    ASSERT_EQ(copy.instances().size(), original.instances().size());
    EXPECT_EQ(copy.stream(0).name, "machine-0");
    EXPECT_EQ(copy.symbols().frameCount(),
              original.symbols().frameCount());
    EXPECT_EQ(copy.symbols().stackCount(),
              original.symbols().stackCount());

    for (std::size_t i = 0; i < original.stream(0).size(); ++i) {
        const Event &a = original.stream(0).event(i);
        const Event &b = copy.stream(0).event(i);
        EXPECT_EQ(a.timestamp, b.timestamp);
        EXPECT_EQ(a.cost, b.cost);
        EXPECT_EQ(a.tid, b.tid);
        EXPECT_EQ(a.wtid, b.wtid);
        EXPECT_EQ(a.stack, b.stack);
        EXPECT_EQ(a.type, b.type);
    }

    const ScenarioInstance &inst = copy.instances()[0];
    EXPECT_EQ(copy.scenarioName(inst.scenario), "BrowserTabCreate");
    EXPECT_EQ(inst.tid, 1u);

    // Frame names survive.
    NameFilter drivers({"*.sys"});
    EXPECT_TRUE(copy.symbols().stackTouches(0, drivers));
}

TEST(Serialize, DoubleRoundTripIsIdentical)
{
    const TraceCorpus original = makeSmallCorpus();
    std::stringstream b1, b2;
    writeCorpus(original, b1);
    const std::string first = b1.str();
    writeCorpus(readCorpus(b1), b2);
    EXPECT_EQ(first, b2.str());
}

TEST(Serialize, CompressedRoundTripPreservesEverything)
{
    const TraceCorpus original = makeSmallCorpus();

    std::stringstream buffer;
    CorpusWriteOptions options;
    options.compressEvents = true;
    writeCorpus(original, buffer, options);
    const TraceCorpus copy = readCorpus(buffer);

    ASSERT_EQ(copy.streamCount(), original.streamCount());
    ASSERT_EQ(copy.totalEvents(), original.totalEvents());
    ASSERT_EQ(copy.instances().size(), original.instances().size());
    for (std::size_t s = 0; s < original.streamCount(); ++s) {
        for (std::size_t i = 0; i < original.stream(s).size(); ++i) {
            const Event &a = original.stream(s).event(i);
            const Event &b = copy.stream(s).event(i);
            EXPECT_EQ(a.timestamp, b.timestamp);
            EXPECT_EQ(a.cost, b.cost);
            EXPECT_EQ(a.tid, b.tid);
            EXPECT_EQ(a.wtid, b.wtid);
            EXPECT_EQ(a.stack, b.stack);
            EXPECT_EQ(a.type, b.type);
        }
    }
}

TEST(Serialize, CompressedWriteIsSmallerAndRawStaysByteStable)
{
    const TraceCorpus corpus = makeSmallCorpus();
    std::stringstream raw, rawExplicit, packed;
    writeCorpus(corpus, raw);
    writeCorpus(corpus, rawExplicit, CorpusWriteOptions{});
    CorpusWriteOptions options;
    options.compressEvents = true;
    writeCorpus(corpus, packed, options);

    // Delta-varint events beat 32-byte raw records even on a corpus
    // this small.
    EXPECT_LT(packed.str().size(), raw.str().size());
    // Not compressing must keep the historical byte layout — the
    // corpus digest (and with it every artifact-cache key) depends on
    // it.
    EXPECT_EQ(raw.str(), rawExplicit.str());

    // Re-serializing the decoded compressed corpus uncompressed
    // reproduces the raw bytes exactly: nothing was lost in delta
    // space.
    std::stringstream again;
    writeCorpus(readCorpus(packed), again);
    EXPECT_EQ(raw.str(), again.str());
}

TEST(Serialize, DumpStreamMentionsEvents)
{
    const TraceCorpus corpus = makeSmallCorpus();
    const std::string dump = dumpStream(corpus, 0);
    EXPECT_NE(dump.find("Wait"), std::string::npos);
    EXPECT_NE(dump.find("HardwareService"), std::string::npos);
    EXPECT_NE(dump.find("DiskService"), std::string::npos);
}

TEST(Validate, CleanCorpus)
{
    const TraceCorpus corpus = makeSmallCorpus();
    const ValidationReport report = validateCorpus(corpus);
    EXPECT_TRUE(report.clean()) << report.render();
    EXPECT_EQ(report.events, 5u);
    EXPECT_EQ(report.instances, 1u);
}

TEST(Validate, DetectsUnpairedWait)
{
    TraceCorpus corpus;
    StreamBuilder builder(corpus, "s");
    const CallstackId st = builder.stack({"a.sys!F"});
    builder.wait(1, 10, st);
    builder.finish();
    EXPECT_EQ(validateCorpus(corpus).unpairedWaits, 1u);
}

TEST(Validate, DetectsStrayAndSelfUnwaits)
{
    TraceCorpus corpus;
    StreamBuilder builder(corpus, "s");
    const CallstackId st = builder.stack({"a.sys!F"});
    builder.unwait(1, 10, 2, st); // nobody waiting
    builder.unwait(3, 11, 3, st); // self-unwait
    builder.finish();
    const auto report = validateCorpus(corpus);
    EXPECT_EQ(report.strayUnwaits, 1u);
    EXPECT_EQ(report.selfUnwaits, 1u);
}

TEST(Validate, DetectsOverrunInstance)
{
    TraceCorpus corpus;
    StreamBuilder builder(corpus, "s");
    const CallstackId st = builder.stack({"a.sys!F"});
    builder.running(1, 0, 10, st);
    builder.instance("S", 1, 0, 1000);
    builder.finish();
    EXPECT_EQ(validateCorpus(corpus).overrunInstances, 1u);
}

} // namespace
} // namespace tracelens
