/**
 * @file
 * Tests for stream tags and cohort analysis.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "src/impact/cohorts.h"
#include "src/trace/builder.h"
#include "src/trace/merge.h"
#include "src/trace/serialize.h"
#include "src/waitgraph/waitgraph.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace
{

TEST(StreamTags, LookupWithFallback)
{
    TraceCorpus corpus;
    const auto i = corpus.addStream("s");
    corpus.stream(i).tags["disk"] = "hdd";
    EXPECT_EQ(corpus.stream(i).tag("disk"), "hdd");
    EXPECT_EQ(corpus.stream(i).tag("missing"), "unknown");
    EXPECT_EQ(corpus.stream(i).tag("missing", "x"), "x");
}

TEST(StreamTags, SurviveSerialization)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a!x"});
    b.running(1, 0, 10, st);
    b.finish();
    corpus.stream(0).tags["encrypted"] = "1";
    corpus.stream(0).tags["disk"] = "ssd";

    std::stringstream buffer;
    writeCorpus(corpus, buffer);
    const TraceCorpus copy = readCorpus(buffer);
    EXPECT_EQ(copy.stream(0).tag("encrypted"), "1");
    EXPECT_EQ(copy.stream(0).tag("disk"), "ssd");
}

TEST(StreamTags, SurviveMerge)
{
    TraceCorpus part;
    part.addStream("s");
    part.stream(0).tags["stressed"] = "1";
    TraceCorpus target;
    appendCorpus(target, part);
    EXPECT_EQ(target.stream(0).tag("stressed"), "1");
}

TEST(StreamTags, GeneratorTagsEveryStream)
{
    CorpusSpec spec;
    spec.machines = 5;
    spec.seed = 4;
    const TraceCorpus corpus = generateCorpus(spec);
    for (std::uint32_t i = 0; i < corpus.streamCount(); ++i) {
        const TraceStream &stream = corpus.stream(i);
        EXPECT_NE(stream.tag("encrypted"), "unknown");
        EXPECT_NE(stream.tag("disk"), "unknown");
        EXPECT_NE(stream.tag("stressed"), "unknown");
        EXPECT_NE(stream.tag("cores"), "unknown");
    }
}

TEST(Cohorts, SplitsInstancesByTag)
{
    TraceCorpus corpus;
    // Stream 0: tagged "a", one driver wait of 400.
    {
        StreamBuilder b(corpus, "s0");
        const CallstackId drv = b.stack({"app!x", "fs.sys!Read"});
        b.wait(1, 0, drv);
        b.unwait(9, 400, 1, drv);
        b.instance("S", 1, 0, 500);
        b.finish();
        corpus.stream(0).tags["env"] = "a";
    }
    // Stream 1: tagged "b", one driver wait of 100.
    {
        StreamBuilder b(corpus, "s1");
        const CallstackId drv = b.stack({"app!x", "fs.sys!Read"});
        b.wait(1, 0, drv);
        b.unwait(9, 100, 1, drv);
        b.instance("S", 1, 0, 500);
        b.finish();
        corpus.stream(1).tags["env"] = "b";
    }

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    const auto cohorts = impactByCohort(corpus, graphs,
                                        NameFilter({"*.sys"}), "env");
    ASSERT_EQ(cohorts.size(), 2u);
    EXPECT_EQ(cohorts[0].value, "a");
    EXPECT_EQ(cohorts[0].impact.dWait, 400);
    EXPECT_EQ(cohorts[1].value, "b");
    EXPECT_EQ(cohorts[1].impact.dWait, 100);
    EXPECT_DOUBLE_EQ(cohorts[0].meanDurationMs, toMs(500));
}

TEST(Cohorts, UntaggedStreamsFormUnknownCohort)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a!x"});
    b.running(1, 0, 10, st);
    b.instance("S", 1, 0, 100);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    const auto cohorts = impactByCohort(corpus, graphs,
                                        NameFilter({"*.sys"}), "env");
    ASSERT_EQ(cohorts.size(), 1u);
    EXPECT_EQ(cohorts[0].value, "unknown");
    EXPECT_EQ(cohorts[0].impact.instances, 1u);
}

TEST(Cohorts, EncryptionCohortShowsHigherDriverWait)
{
    // The quantified version of the paper's observation: encrypted
    // machines wait more on drivers than unencrypted ones.
    CorpusSpec spec;
    spec.machines = 60;
    spec.seed = 9;
    spec.encryptedFraction = 0.5;
    const TraceCorpus corpus = generateCorpus(spec);

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    const auto cohorts = impactByCohort(
        corpus, graphs, NameFilter({"*.sys"}), "encrypted");

    double encrypted_wait = -1, plain_wait = -1;
    for (const CohortImpact &cohort : cohorts) {
        if (cohort.value == "1")
            encrypted_wait = cohort.impact.iaWait();
        if (cohort.value == "0")
            plain_wait = cohort.impact.iaWait();
    }
    ASSERT_GE(encrypted_wait, 0.0);
    ASSERT_GE(plain_wait, 0.0);
    EXPECT_GT(encrypted_wait, plain_wait);
}

} // namespace
} // namespace tracelens
