/**
 * @file
 * Tests for the partial-result merge layer (src/core/partial.h): the
 * scatter/gather contract behind coordinator mode. Per-shard partials
 * — produced by independent analyzers, round-tripped through the TLP1
 * wire encoding, merged in shard order, and finalized once — must be
 * byte-identical to a single-node analysis of the merged corpus. Also
 * covers the hostile-input side of the codec: truncation, corruption,
 * kind confusion, and the encoding-revision handshake.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/analyzer.h"
#include "src/core/partial.h"
#include "src/mining/coverage.h"
#include "src/trace/merge.h"
#include "src/trace/source.h"
#include "src/workload/generator.h"
#include "src/workload/scenarios.h"

namespace tracelens
{
namespace
{

CorpusSpec
smallSpec()
{
    CorpusSpec spec;
    spec.machines = 12;
    spec.seed = 7171;
    return spec;
}

/** First catalog scenario present in @p corpus, with thresholds. */
ScenarioThresholds
pickScenario(const TraceCorpus &corpus)
{
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.selected &&
            corpus.findScenario(spec.name) != UINT32_MAX)
            return {spec.name, spec.tFast, spec.tSlow};
    }
    ADD_FAILURE() << "no catalog scenario in generated corpus";
    return {};
}

/** The coordinator's gather state for one scenario query. */
struct Gathered
{
    SymbolTable symbols;
    PartialClasses classes;
    PartialImpact slowImpact;
    PartialAwg awgFast;
    PartialAwg awgSlow;
    std::uint32_t streams = 0;

    /** Fold the next shard's partial, in global shard order. */
    void
    fold(ScenarioPartial partial)
    {
        partial.remapFrames(symbols);
        classes.merge(partial.classes);
        partial.slowImpact.rebaseStreams(streams);
        slowImpact.merge(partial.slowImpact);
        awgFast.merge(partial.awgFast);
        awgSlow.merge(partial.awgSlow);
        streams += partial.streamCount;
    }
};

/** One shard's scenario partial, optionally through the wire codec. */
ScenarioPartial
shardPartial(const TraceCorpus &part, const ScenarioThresholds &scn,
             unsigned threads, bool through_wire)
{
    AnalyzerConfig config;
    config.threads = threads;
    EagerSource source(part);
    Analyzer analyzer(source, config);
    ScenarioPartial partial =
        analyzer.scenarioPartial(scn.name, scn.tFast, scn.tSlow);
    if (!through_wire)
        return partial;

    // The full coordinator transport: TLP1 bytes inside base64 (the
    // JSON carrier of protocol v2 responses).
    const std::string bytes = encodeScenarioPartial(partial);
    const std::optional<std::string> raw =
        base64Decode(base64Encode(bytes));
    EXPECT_TRUE(raw.has_value());
    EXPECT_EQ(*raw, bytes);
    Expected<ScenarioPartial> decoded = decodeScenarioPartial(*raw);
    EXPECT_TRUE(decoded.ok()) << decoded.error().render();
    return std::move(decoded.value());
}

TEST(Partial, ScatterGatherMatchesSingleNodeByteForByte)
{
    const TraceCorpus corpus = generateCorpus(smallSpec());
    const ScenarioThresholds scn = pickScenario(corpus);
    const std::vector<TraceCorpus> parts = splitCorpus(corpus, 4);
    ASSERT_EQ(parts.size(), 4u);

    // The single-node reference over the merged corpus.
    TraceCorpus merged;
    for (const TraceCorpus &part : parts)
        appendCorpus(merged, part);
    AnalyzerConfig config;
    config.threads = 1;
    EagerSource source(merged);
    Analyzer single(source, config);
    const ScenarioAnalysis full =
        single.analyzeScenario(scn.name, scn.tFast, scn.tSlow);

    for (const bool through_wire : {false, true}) {
        for (const unsigned threads : {1u, 3u}) {
            Gathered g;
            for (const TraceCorpus &part : parts)
                g.fold(shardPartial(part, scn, threads, through_wire));

            EXPECT_EQ(g.classes.fast, full.classes.fast.size());
            EXPECT_EQ(g.classes.middle, full.classes.middle.size());
            EXPECT_EQ(g.classes.slow, full.classes.slow.size());
            EXPECT_EQ(g.classes.slowDuration, full.slowDuration);

            const ImpactResult impact = g.slowImpact.finalize();
            EXPECT_EQ(impact.render(), full.slowImpact.render());
            EXPECT_EQ(impact.dWaitDist, full.slowImpact.dWaitDist);
            EXPECT_EQ(impact.instances, full.slowImpact.instances);

            const AggregatedWaitGraph awgFast =
                g.awgFast.finalize(true);
            const AggregatedWaitGraph awgSlow =
                g.awgSlow.finalize(true);
            EXPECT_EQ(awgFast.renderText(g.symbols),
                      full.awgFast.renderText(merged.symbols()));
            EXPECT_EQ(awgSlow.renderText(g.symbols),
                      full.awgSlow.renderText(merged.symbols()));
            EXPECT_EQ(awgSlow.reducedCost(),
                      full.awgSlow.reducedCost());
            EXPECT_EQ(awgSlow.reducedNodes(),
                      full.awgSlow.reducedNodes());
            EXPECT_EQ(awgSlow.sourceGraphs(),
                      full.awgSlow.sourceGraphs());

            // Mining + coverage, exactly as the coordinator runs them
            // over the gathered AWGs.
            MiningOptions mining_options;
            mining_options.tFast = scn.tFast;
            mining_options.tSlow = scn.tSlow;
            TraceCorpus dummy;
            ContrastMiner miner(dummy, mining_options);
            const MiningResult mining = miner.mine(awgFast, awgSlow, 1);
            ASSERT_EQ(mining.patterns.size(),
                      full.mining.patterns.size());
            for (std::size_t i = 0; i < mining.patterns.size(); ++i) {
                const ContrastPattern &a = mining.patterns[i];
                const ContrastPattern &b = full.mining.patterns[i];
                EXPECT_EQ(a.cost, b.cost) << "pattern " << i;
                EXPECT_EQ(a.count, b.count) << "pattern " << i;
                EXPECT_EQ(a.maxExec, b.maxExec) << "pattern " << i;
                EXPECT_EQ(a.tuple.waits, b.tuple.waits);
                EXPECT_EQ(a.tuple.unwaits, b.tuple.unwaits);
                EXPECT_EQ(a.tuple.runnings, b.tuple.runnings);
            }
            EXPECT_EQ(mining.stats.render(),
                      full.mining.stats.render());

            const CoverageResult coverage = computeCoverage(
                mining,
                awgSlow.reducedCost() + awgSlow.totalRootCost(),
                scn.tSlow);
            EXPECT_EQ(coverage.render(), full.coverage.render());
        }
    }
}

TEST(Partial, MergeIsAssociativeAcrossGroupings)
{
    const TraceCorpus corpus = generateCorpus(smallSpec());
    const ScenarioThresholds scn = pickScenario(corpus);
    const std::vector<TraceCorpus> parts = splitCorpus(corpus, 3);
    ASSERT_EQ(parts.size(), 3u);

    std::vector<ScenarioPartial> partials;
    for (const TraceCorpus &part : parts)
        partials.push_back(shardPartial(part, scn, 1, false));

    // (A + B) + C.
    Gathered left;
    for (const ScenarioPartial &p : partials)
        left.fold(p);

    // A + (B + C): pre-merge the tail pair's AWG fragments before the
    // final fold. (Frame remapping still happens in global shard
    // order, which is the coordinator's contract.)
    Gathered right;
    right.fold(partials[0]);
    ScenarioPartial tail = partials[1];
    ScenarioPartial last = partials[2];
    // Bring the last shard onto the tail's frame/stream numbering
    // first, exactly as a two-level gather tree would.
    SymbolTable tail_symbols;
    for (const std::string &name : tail.frames)
        tail_symbols.internFrame(name);
    ScenarioPartial pair;
    pair.classes = tail.classes;
    pair.classes.merge(last.classes);
    pair.slowImpact = tail.slowImpact;
    last.slowImpact.rebaseStreams(tail.streamCount);
    pair.slowImpact.merge(last.slowImpact);
    pair.awgFast = tail.awgFast;
    pair.awgSlow = tail.awgSlow;
    last.remapFrames(tail_symbols);
    pair.awgFast.merge(last.awgFast);
    pair.awgSlow.merge(last.awgSlow);
    pair.streamCount = tail.streamCount + last.streamCount;
    pair.frames.clear();
    for (FrameId f = 0; f < tail_symbols.frameCount(); ++f)
        pair.frames.push_back(tail_symbols.frameName(f));
    right.fold(std::move(pair));

    EXPECT_EQ(left.classes.slow, right.classes.slow);
    EXPECT_EQ(left.slowImpact.finalize().render(),
              right.slowImpact.finalize().render());
    EXPECT_EQ(left.awgSlow.finalize(true).renderText(left.symbols),
              right.awgSlow.finalize(true).renderText(right.symbols));
}

TEST(Partial, AbsentScenarioYieldsAnEmptyMergeablePartial)
{
    const TraceCorpus corpus = generateCorpus(smallSpec());
    const ScenarioThresholds scn = pickScenario(corpus);

    AnalyzerConfig config;
    config.threads = 1;
    EagerSource source(corpus);
    Analyzer analyzer(source, config);

    ScenarioPartial absent =
        analyzer.scenarioPartial("no-such-scenario", scn.tFast,
                                 scn.tSlow);
    EXPECT_EQ(absent.classes.fast + absent.classes.middle +
                  absent.classes.slow,
              0u);
    // The frame table still rides along: the coordinator interns every
    // shard's frames to reproduce single-node interning order.
    EXPECT_EQ(absent.frames.size(), corpus.symbols().frameCount());
    EXPECT_GT(absent.streamCount, 0u);

    // Folding an empty partial is a no-op on the analysis content.
    ScenarioPartial present =
        analyzer.scenarioPartial(scn.name, scn.tFast, scn.tSlow);
    Gathered with, without;
    without.fold(present);
    with.fold(absent);
    with.fold(std::move(present));
    EXPECT_EQ(with.classes.slow, without.classes.slow);
    EXPECT_EQ(with.awgSlow.finalize(true).renderText(with.symbols),
              without.awgSlow.finalize(true).renderText(
                  without.symbols));
}

TEST(Partial, ImpactGatherMatchesSingleNode)
{
    const TraceCorpus corpus = generateCorpus(smallSpec());
    const std::vector<TraceCorpus> parts = splitCorpus(corpus, 3);
    ASSERT_EQ(parts.size(), 3u);

    TraceCorpus merged;
    for (const TraceCorpus &part : parts)
        appendCorpus(merged, part);
    AnalyzerConfig config;
    config.threads = 1;
    EagerSource source(merged);
    Analyzer single(source, config);
    const ImpactResult all = single.impactAll();
    const auto per_scenario = single.impactPerScenario();

    PartialImpact gathered_all;
    std::vector<std::pair<std::string, PartialImpact>> gathered_scn;
    std::uint32_t streams = 0;
    for (const TraceCorpus &part : parts) {
        EagerSource part_source(part);
        Analyzer analyzer(part_source, config);
        ImpactPartial partial = analyzer.impactPartial();

        // Through the wire, as the coordinator receives it.
        Expected<ImpactPartial> decoded =
            decodeImpactPartial(encodeImpactPartial(partial));
        ASSERT_TRUE(decoded.ok()) << decoded.error().render();
        ImpactPartial wire = std::move(decoded.value());

        wire.rebaseStreams(streams);
        streams += wire.streamCount;
        gathered_all.merge(wire.all);
        for (auto &[name, acc] : wire.perScenario) {
            auto it = std::find_if(
                gathered_scn.begin(), gathered_scn.end(),
                [&](const auto &e) { return e.first == name; });
            if (it == gathered_scn.end())
                gathered_scn.emplace_back(name, std::move(acc));
            else
                it->second.merge(acc);
        }
    }

    EXPECT_EQ(gathered_all.finalize().render(), all.render());
    EXPECT_EQ(gathered_scn.size(), per_scenario.size());
    for (const auto &[name, acc] : gathered_scn) {
        const std::uint32_t id = merged.findScenario(name);
        ASSERT_NE(id, UINT32_MAX) << name;
        const auto it = per_scenario.find(id);
        ASSERT_NE(it, per_scenario.end()) << name;
        EXPECT_EQ(acc.finalize().render(), it->second.render())
            << name;
    }
}

TEST(Partial, DecodeRejectsHostileInput)
{
    const TraceCorpus corpus = generateCorpus(smallSpec());
    const ScenarioThresholds scn = pickScenario(corpus);
    AnalyzerConfig config;
    config.threads = 1;
    EagerSource source(corpus);
    Analyzer analyzer(source, config);
    const ScenarioPartial partial =
        analyzer.scenarioPartial(scn.name, scn.tFast, scn.tSlow);
    const std::string good = encodeScenarioPartial(partial);

    // Sanity: the good bytes round-trip.
    ASSERT_TRUE(decodeScenarioPartial(good).ok());

    // Garbage and empty input.
    EXPECT_FALSE(decodeScenarioPartial("").ok());
    EXPECT_FALSE(decodeScenarioPartial("hello, world").ok());

    // Wrong magic.
    std::string bad_magic = good;
    bad_magic[0] = 'X';
    EXPECT_FALSE(decodeScenarioPartial(bad_magic).ok());

    // Foreign revision: the mixed-version backstop, with a message
    // that names both sides.
    std::string future = good;
    future[4] = static_cast<char>(0xEE);
    const Expected<ScenarioPartial> mismatch =
        decodeScenarioPartial(future);
    ASSERT_FALSE(mismatch.ok());
    EXPECT_NE(mismatch.error().reason.find("revision mismatch"),
              std::string::npos)
        << mismatch.error().reason;

    // Kind confusion: an impact envelope is not a scenario envelope.
    const std::string impact_bytes =
        encodeImpactPartial(ImpactPartial{});
    EXPECT_FALSE(decodeScenarioPartial(impact_bytes).ok());
    EXPECT_FALSE(decodeImpactPartial(good).ok());

    // Every truncation of a valid encoding must fail cleanly, never
    // crash or mis-decode (sampled for speed).
    const std::size_t step = std::max<std::size_t>(good.size() / 64, 1);
    for (std::size_t len = 0; len < good.size(); len += step)
        EXPECT_FALSE(decodeScenarioPartial(good.substr(0, len)).ok())
            << "truncated at " << len;

    // Trailing junk after a valid payload is rejected too.
    EXPECT_FALSE(decodeScenarioPartial(good + "x").ok());
}

TEST(Partial, Base64RoundTripsArbitraryBytes)
{
    std::string bytes;
    for (int i = 0; i < 300; ++i)
        bytes.push_back(static_cast<char>((i * 37 + 11) & 0xFF));
    for (std::size_t len = 0; len <= 8; ++len) {
        const std::string sub = bytes.substr(0, len);
        const std::optional<std::string> back =
            base64Decode(base64Encode(sub));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, sub);
    }
    const std::optional<std::string> full =
        base64Decode(base64Encode(bytes));
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(*full, bytes);

    EXPECT_FALSE(base64Decode("!!!!").has_value());
    EXPECT_FALSE(base64Decode("AB").has_value());
    EXPECT_FALSE(base64Decode("A===").has_value());
    EXPECT_EQ(base64Encode(""), "");
    ASSERT_TRUE(base64Decode("").has_value());
}

} // namespace
} // namespace tracelens
