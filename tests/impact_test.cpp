/**
 * @file
 * Unit tests for the impact analysis (Section 3 metrics) with
 * hand-computed expectations.
 */

#include <gtest/gtest.h>

#include "src/impact/impact.h"
#include "src/trace/builder.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens
{
namespace
{

TEST(ImpactResult, RatiosAndRendering)
{
    ImpactResult r;
    r.dScn = 1000;
    r.dWait = 364;
    r.dRun = 16;
    r.dWaitDist = 104;
    EXPECT_DOUBLE_EQ(r.iaWait(), 0.364);
    EXPECT_DOUBLE_EQ(r.iaRun(), 0.016);
    EXPECT_DOUBLE_EQ(r.iaOpt(), 0.26);
    EXPECT_NEAR(r.waitAmplification(), 3.5, 0.001);
    EXPECT_NE(r.render().find("36.4%"), std::string::npos);
}

TEST(ImpactResult, EmptyIsAllZero)
{
    ImpactResult r;
    EXPECT_DOUBLE_EQ(r.iaWait(), 0.0);
    EXPECT_DOUBLE_EQ(r.iaRun(), 0.0);
    EXPECT_DOUBLE_EQ(r.iaOpt(), 0.0);
    EXPECT_DOUBLE_EQ(r.waitAmplification(), 0.0);
}

TEST(Impact, CountsTopLevelDriverWaitOnly)
{
    // A driver wait nested inside another driver wait must not be
    // double counted.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId outer = b.stack({"app!U", "fv.sys!Query"});
    const CallstackId inner = b.stack({"app!W", "fs.sys!Acquire"});
    const CallstackId plain = b.stack({"app!W"});

    b.wait(1, 0, outer);          // driver wait, cost 1000
    b.wait(2, 100, inner);        // nested driver wait, cost 400
    b.unwait(3, 500, 2, plain);
    b.running(2, 500, 100, plain);
    b.unwait(2, 1000, 1, plain);
    b.running(1, 1000, 200, plain);
    b.instance("S", 1, 0, 1200);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    ImpactAnalysis impact(corpus, NameFilter({"*.sys"}));
    const ImpactResult r = impact.analyze(graphs);

    EXPECT_EQ(r.dScn, 1200); // wait 1000 + running 200
    EXPECT_EQ(r.dWait, 1000);
    EXPECT_EQ(r.dWaitDist, 1000);
    EXPECT_EQ(r.dRun, 0); // no driver frames on running stacks
    EXPECT_EQ(r.instances, 1u);
}

TEST(Impact, DescendsThroughNonDriverWaits)
{
    // A non-driver wait whose child is a driver wait: the child counts.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId appwait = b.stack({"app!U", "kernel!Wait"});
    const CallstackId drvwait = b.stack({"app!W", "fs.sys!Acquire"});
    const CallstackId plain = b.stack({"app!W"});

    b.wait(1, 0, appwait);        // non-driver wait, cost 1000
    b.wait(2, 100, drvwait);      // driver wait, cost 400
    b.unwait(3, 500, 2, plain);
    b.unwait(2, 1000, 1, plain);
    b.instance("S", 1, 0, 1100);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    ImpactAnalysis impact(corpus, NameFilter({"*.sys"}));
    const ImpactResult r = impact.analyze(graphs);

    EXPECT_EQ(r.dScn, 1000);
    EXPECT_EQ(r.dWait, 400);
}

TEST(Impact, RunningTimeCountsDriverStacksAnywhere)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId appwait = b.stack({"app!U", "kernel!Wait"});
    const CallstackId drvrun = b.stack({"app!W", "se.sys!Decrypt"});
    const CallstackId apprun = b.stack({"app!W", "app!Compute"});

    b.running(1, 0, 100, apprun);    // root running, not driver
    b.wait(1, 100, appwait);
    b.running(2, 200, 300, drvrun);  // nested driver running
    b.running(2, 500, 100, apprun);  // nested non-driver running
    b.unwait(2, 700, 1, apprun);
    b.instance("S", 1, 0, 800);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    ImpactAnalysis impact(corpus, NameFilter({"*.sys"}));
    const ImpactResult r = impact.analyze(graphs);

    EXPECT_EQ(r.dScn, 700); // 100 running + 600 wait
    EXPECT_EQ(r.dRun, 300);
    EXPECT_EQ(r.dWait, 0); // the wait stack has no driver frame
}

TEST(Impact, DistinctWaitDeduplicatesAcrossInstances)
{
    // Two instances blocked by the same shared worker wait; the shared
    // wait is counted twice in D_wait, once in D_waitdist.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId drv = b.stack({"app!X", "fs.sys!Acquire"});

    b.wait(1, 100, drv);  // instance 1's own (top-level driver wait)
    b.wait(2, 100, drv);  // instance 2's own
    b.unwait(3, 600, 1, drv);
    b.unwait(3, 600, 2, drv);
    b.instance("S", 1, 0, 700);
    b.instance("T", 2, 0, 700);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    ImpactAnalysis impact(corpus, NameFilter({"*.sys"}));
    const ImpactResult r = impact.analyze(graphs);

    // Each instance has its own distinct wait: no dedup here.
    EXPECT_EQ(r.dWait, 1000);
    EXPECT_EQ(r.dWaitDist, 1000);

    // Now the *same* nested wait under both: build a corpus where both
    // instances' waits expand to one shared child wait.
    TraceCorpus corpus2;
    StreamBuilder b2(corpus2, "s");
    const CallstackId app = b2.stack({"app!X", "kernel!Wait"});
    const CallstackId drv2 = b2.stack({"app!Y", "fs.sys!Acquire"});
    b2.wait(1, 100, app);   // non-driver: analysis descends
    b2.wait(2, 110, app);   // non-driver: analysis descends
    b2.wait(3, 120, drv2);  // shared driver wait, cost 380
    b2.unwait(4, 500, 3, drv2);
    b2.unwait(3, 600, 1, app);
    b2.unwait(3, 610, 2, app);
    b2.instance("S", 1, 0, 700);
    b2.instance("T", 2, 0, 700);
    b2.finish();

    WaitGraphBuilder builder2(corpus2);
    const auto graphs2 = builder2.buildAll();
    ImpactAnalysis impact2(corpus2, NameFilter({"*.sys"}));
    const ImpactResult r2 = impact2.analyze(graphs2);

    EXPECT_EQ(r2.dWait, 760);     // 380 counted in both graphs
    EXPECT_EQ(r2.dWaitDist, 380); // but only once distinctly
    EXPECT_DOUBLE_EQ(r2.waitAmplification(), 2.0);
}

TEST(Impact, PerScenarioSplitsMetrics)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId drv = b.stack({"app!X", "fs.sys!Acquire"});
    b.wait(1, 0, drv);
    b.unwait(9, 100, 1, drv);
    b.wait(2, 0, drv);
    b.unwait(9, 300, 2, drv);
    b.instance("Fast", 1, 0, 150);
    b.instance("Slow", 2, 0, 350);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    ImpactAnalysis impact(corpus, NameFilter({"*.sys"}));
    const auto per = impact.analyzePerScenario(graphs);

    ASSERT_EQ(per.size(), 2u);
    const auto fast = corpus.findScenario("Fast");
    const auto slow = corpus.findScenario("Slow");
    EXPECT_EQ(per.at(fast).dWait, 100);
    EXPECT_EQ(per.at(slow).dWait, 300);
    EXPECT_EQ(per.at(fast).instances, 1u);
}

TEST(Impact, ComponentFilterScopesMeasurement)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fs = b.stack({"app!X", "fs.sys!Acquire"});
    const CallstackId net = b.stack({"app!Y", "net.sys!Send"});
    b.wait(1, 0, fs);
    b.unwait(9, 100, 1, fs);
    b.wait(1, 200, net);
    b.unwait(9, 500, 1, net);
    b.instance("S", 1, 0, 600);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();

    ImpactAnalysis all(corpus, NameFilter({"*.sys"}));
    EXPECT_EQ(all.analyze(graphs).dWait, 400);

    ImpactAnalysis fsOnly(corpus, NameFilter({"fs.sys"}));
    EXPECT_EQ(fsOnly.analyze(graphs).dWait, 100);

    ImpactAnalysis netOnly(corpus, NameFilter({"net.sys"}));
    EXPECT_EQ(netOnly.analyze(graphs).dWait, 300);
}

} // namespace
} // namespace tracelens
