/**
 * @file
 * Tests for the CSV trace interchange format.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "src/trace/builder.h"
#include "src/trace/csv.h"
#include "src/trace/serialize.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace
{

TraceCorpus
sampleCorpus()
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s0");
    const CallstackId st =
        b.stack({"app.exe!main", "fs.sys!Read"});
    const CallstackId hw = b.stack({"DiskService"});
    b.running(1, 0, fromMs(1), st);
    b.wait(1, fromMs(1), st);
    b.hardware(9, fromMs(1), fromMs(3), hw);
    b.unwait(9, fromMs(4), 1, hw);
    b.instance("Scenario A", 1, 0, fromMs(5));
    b.finish();
    StreamBuilder b2(corpus, "s1");
    const CallstackId st2 = b2.stack({"other.exe!go"});
    b2.running(7, 10, fromMs(1), st2);
    b2.instance("B", 7, 0, fromMs(2));
    b2.finish();
    return corpus;
}

TEST(Csv, EventsHeaderAndRows)
{
    const TraceCorpus corpus = sampleCorpus();
    std::ostringstream out;
    writeEventsCsv(corpus, out);
    const std::string text = out.str();
    EXPECT_EQ(text.find("stream,type,timestamp,cost,tid,wtid,stack"),
              0u);
    EXPECT_NE(text.find("running"), std::string::npos);
    EXPECT_NE(text.find("app.exe!main;fs.sys!Read"),
              std::string::npos);
    EXPECT_NE(text.find("hardware"), std::string::npos);
}

TEST(Csv, RoundTripPreservesCorpus)
{
    const TraceCorpus original = sampleCorpus();

    std::ostringstream events, instances;
    writeEventsCsv(original, events);
    writeInstancesCsv(original, instances);

    std::istringstream events_in(events.str());
    std::istringstream instances_in(instances.str());
    const TraceCorpus copy = readCorpusCsv(events_in, instances_in);

    ASSERT_EQ(copy.streamCount(), original.streamCount());
    ASSERT_EQ(copy.totalEvents(), original.totalEvents());
    ASSERT_EQ(copy.instances().size(), original.instances().size());

    for (std::uint32_t s = 0; s < original.streamCount(); ++s) {
        const auto &a = original.stream(s);
        const auto &b = copy.stream(s);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a.event(static_cast<std::uint32_t>(i)).timestamp,
                      b.event(static_cast<std::uint32_t>(i)).timestamp);
            EXPECT_EQ(a.event(static_cast<std::uint32_t>(i)).type,
                      b.event(static_cast<std::uint32_t>(i)).type);
            EXPECT_EQ(a.event(static_cast<std::uint32_t>(i)).cost,
                      b.event(static_cast<std::uint32_t>(i)).cost);
        }
    }
    EXPECT_EQ(copy.scenarioName(copy.instances()[0].scenario),
              "Scenario A");
}

TEST(Csv, GeneratedCorpusSurvivesCsvRoundTrip)
{
    CorpusSpec spec;
    spec.machines = 3;
    spec.seed = 17;
    const TraceCorpus original = generateCorpus(spec);

    std::ostringstream events, instances;
    writeEventsCsv(original, events);
    writeInstancesCsv(original, instances);
    std::istringstream events_in(events.str());
    std::istringstream instances_in(instances.str());
    const TraceCorpus copy = readCorpusCsv(events_in, instances_in);

    // Semantically identical: the binary serializations of original
    // and copy differ only in stream names, so compare event payloads
    // through a second CSV pass, which must be byte-identical.
    std::ostringstream events2;
    writeEventsCsv(copy, events2);
    EXPECT_EQ(events.str(), events2.str());
    std::ostringstream instances2;
    writeInstancesCsv(copy, instances2);
    EXPECT_EQ(instances.str(), instances2.str());
}

TEST(Csv, EmptyStacksRoundTrip)
{
    TraceCorpus corpus;
    const auto s = corpus.addStream("s");
    Event e;
    e.type = EventType::Running;
    e.timestamp = 5;
    e.cost = 10;
    e.tid = 1;
    e.stack = kNoCallstack;
    corpus.stream(s).append(e);

    std::ostringstream events, instances;
    writeEventsCsv(corpus, events);
    writeInstancesCsv(corpus, instances);
    std::istringstream ein(events.str()), iin(instances.str());
    const TraceCorpus copy = readCorpusCsv(ein, iin);
    ASSERT_EQ(copy.totalEvents(), 1u);
    EXPECT_EQ(copy.stream(0).event(0).stack, kNoCallstack);
}

TEST(CsvDeath, RejectsBadType)
{
    const std::string events =
        "stream,type,timestamp,cost,tid,wtid,stack\n"
        "0,explode,1,2,3,,a!b\n";
    const std::string instances = "stream,scenario,tid,t0,t1\n";
    EXPECT_EXIT(
        {
            std::istringstream ein(events);
            std::istringstream iin(instances);
            readCorpusCsv(ein, iin);
        },
        testing::ExitedWithCode(1), "unknown event type");
}

TEST(CsvDeath, RejectsWrongColumnCount)
{
    const std::string events =
        "stream,type,timestamp,cost,tid,wtid,stack\n"
        "0,running,1,2\n";
    const std::string instances = "stream,scenario,tid,t0,t1\n";
    EXPECT_EXIT(
        {
            std::istringstream ein(events);
            std::istringstream iin(instances);
            readCorpusCsv(ein, iin);
        },
        testing::ExitedWithCode(1), "expected 7 columns");
}

TEST(CsvDeath, RejectsBadNumber)
{
    const std::string events =
        "stream,type,timestamp,cost,tid,wtid,stack\n"
        "0,running,xyz,2,3,,a!b\n";
    const std::string instances = "stream,scenario,tid,t0,t1\n";
    EXPECT_EXIT(
        {
            std::istringstream ein(events);
            std::istringstream iin(instances);
            readCorpusCsv(ein, iin);
        },
        testing::ExitedWithCode(1), "bad number");
}

TEST(CsvDeath, RejectsInstanceForUnknownStream)
{
    const std::string events =
        "stream,type,timestamp,cost,tid,wtid,stack\n"
        "0,running,1,2,3,,a!b\n";
    const std::string instances =
        "stream,scenario,tid,t0,t1\n"
        "7,S,1,0,10\n";
    EXPECT_EXIT(
        {
            std::istringstream ein(events);
            std::istringstream iin(instances);
            readCorpusCsv(ein, iin);
        },
        testing::ExitedWithCode(1), "unknown stream");
}

} // namespace
} // namespace tracelens
