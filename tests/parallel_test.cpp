/**
 * @file
 * Determinism and safety tests for the corpus-parallel pipeline.
 *
 * The contract under test: every analysis stage produces bit-identical
 * results for threads=1 and threads=hardware_concurrency (the parallel
 * paths shard only order-insensitive work and keep every
 * order-sensitive fold serial). Plus ThreadSanitizer-friendly smoke
 * tests of the work-stealing pool itself — run these under the tsan
 * CMake preset: ctest --preset tsan -L tsan.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/core/analyzer.h"
#include "src/util/parallel.h"
#include "src/waitgraph/waitgraph.h"
#include "src/workload/generator.h"
#include "src/workload/scenarios.h"

namespace tracelens
{
namespace
{

unsigned
manyThreads()
{
    // At least 4 so the pool, the steals, and the shard merges are
    // genuinely exercised even on single-core CI machines.
    return std::max(4u, std::thread::hardware_concurrency());
}

// ---------------------------------------------------------------- pool

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    ThreadPool pool(manyThreads());
    pool.parallelFor(0, n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(manyThreads());
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::int64_t> sum{0};
        pool.parallelFor(0, 1000, [&](std::size_t i) {
            sum.fetch_add(static_cast<std::int64_t>(i),
                          std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 999 * 1000 / 2);
    }
}

TEST(ThreadPool, StealsUnbalancedWork)
{
    // Front-loaded shard sizes: worker 0 owns indices that each spin,
    // the rest finish instantly and must steal to keep the wall time
    // bounded. Correctness (full coverage) is what we assert.
    const std::size_t n = 256;
    std::vector<std::atomic<int>> hits(n);
    ThreadPool pool(manyThreads());
    pool.parallelFor(0, n, [&](std::size_t i) {
        if (i < n / 8) { // heavy head
            volatile std::uint64_t x = 0;
            for (int k = 0; k < 20000; ++k)
                x = x + static_cast<std::uint64_t>(k);
        }
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    const std::thread::id self = std::this_thread::get_id();
    pool.parallelFor(5, 8, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), self);
    });
}

TEST(ThreadPool, PropagatesBodyException)
{
    ThreadPool pool(manyThreads());
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<int> count{0};
    pool.parallelFor(0, 10, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 10);
}

TEST(ParallelMap, ResultsInIndexOrder)
{
    const auto squares = parallelMap<std::size_t>(
        manyThreads(), 5000, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 5000u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelFor, RespectsBeginOffset)
{
    std::atomic<std::int64_t> sum{0};
    parallelFor(manyThreads(), 100, 200, [&](std::size_t i) {
        sum.fetch_add(static_cast<std::int64_t>(i),
                      std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

// ------------------------------------------------------- determinism

CorpusSpec
smallFleet()
{
    CorpusSpec spec;
    spec.machines = 30;
    spec.seed = 0xC0FFEE;
    return spec;
}

void
expectSameImpact(const ImpactResult &a, const ImpactResult &b)
{
    EXPECT_EQ(a.dScn, b.dScn);
    EXPECT_EQ(a.dWait, b.dWait);
    EXPECT_EQ(a.dRun, b.dRun);
    EXPECT_EQ(a.dWaitDist, b.dWaitDist);
    EXPECT_EQ(a.instances, b.instances);
}

TEST(ParallelDeterminism, WaitGraphsIdentical)
{
    const TraceCorpus corpus = generateCorpus(smallFleet());
    WaitGraphBuilder builder(corpus);
    const std::vector<WaitGraph> serial = builder.buildAll();
    const std::vector<WaitGraph> parallel =
        builder.buildAllParallel(manyThreads());

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t g = 0; g < serial.size(); ++g) {
        ASSERT_EQ(serial[g].size(), parallel[g].size()) << "graph " << g;
        ASSERT_EQ(serial[g].roots(), parallel[g].roots());
        for (std::size_t n = 0; n < serial[g].size(); ++n) {
            const auto &sn = serial[g].nodes()[n];
            const auto &pn = parallel[g].nodes()[n];
            EXPECT_EQ(sn.ref, pn.ref);
            EXPECT_EQ(sn.event.cost, pn.event.cost);
            const auto sc = serial[g].children(sn);
            const auto pc = parallel[g].children(pn);
            EXPECT_TRUE(std::equal(sc.begin(), sc.end(), pc.begin(),
                                   pc.end()));
            EXPECT_EQ(sn.unwaitStack, pn.unwaitStack);
        }
    }
}

TEST(ParallelDeterminism, ImpactAllIdentical)
{
    const TraceCorpus corpus = generateCorpus(smallFleet());

    AnalyzerConfig serial_config;
    serial_config.threads = 1;
    EagerSource serial_source(corpus);
    Analyzer serial(serial_source, serial_config);

    AnalyzerConfig parallel_config;
    parallel_config.threads = manyThreads();
    EagerSource parallel_source(corpus);
    Analyzer parallel(parallel_source, parallel_config);

    expectSameImpact(serial.impactAll(), parallel.impactAll());

    const auto serial_per = serial.impactPerScenario();
    const auto parallel_per = parallel.impactPerScenario();
    ASSERT_EQ(serial_per.size(), parallel_per.size());
    for (const auto &[scenario, impact] : serial_per) {
        auto it = parallel_per.find(scenario);
        ASSERT_NE(it, parallel_per.end());
        expectSameImpact(impact, it->second);
    }
}

TEST(ParallelDeterminism, ScenarioAnalysisIdentical)
{
    const TraceCorpus corpus = generateCorpus(smallFleet());

    AnalyzerConfig serial_config;
    serial_config.threads = 1;
    EagerSource serial_source(corpus);
    Analyzer serial(serial_source, serial_config);

    AnalyzerConfig parallel_config;
    parallel_config.threads = manyThreads();
    EagerSource parallel_source(corpus);
    Analyzer parallel(parallel_source, parallel_config);

    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (!spec.selected ||
            corpus.findScenario(spec.name) == UINT32_MAX)
            continue;
        SCOPED_TRACE(spec.name);
        const ScenarioAnalysis a =
            serial.analyzeScenario(spec.name, spec.tFast, spec.tSlow);
        const ScenarioAnalysis b =
            parallel.analyzeScenario(spec.name, spec.tFast, spec.tSlow);

        EXPECT_EQ(a.classes.fast, b.classes.fast);
        EXPECT_EQ(a.classes.slow, b.classes.slow);
        EXPECT_EQ(a.classes.middle, b.classes.middle);
        expectSameImpact(a.slowImpact, b.slowImpact);
        EXPECT_EQ(a.slowDuration, b.slowDuration);

        // AWGs: identical structure including node order (the trie
        // fold is serial and ordered in both paths).
        EXPECT_EQ(a.awgSlow.reducedCost(), b.awgSlow.reducedCost());
        EXPECT_EQ(a.awgSlow.totalRootCost(), b.awgSlow.totalRootCost());
        EXPECT_EQ(a.awgFast.renderText(corpus.symbols(), 10000),
                  b.awgFast.renderText(corpus.symbols(), 10000));
        EXPECT_EQ(a.awgSlow.renderText(corpus.symbols(), 10000),
                  b.awgSlow.renderText(corpus.symbols(), 10000));

        // Mined pattern ranking: identical order and contents.
        ASSERT_EQ(a.mining.patterns.size(), b.mining.patterns.size());
        for (std::size_t i = 0; i < a.mining.patterns.size(); ++i) {
            const ContrastPattern &pa = a.mining.patterns[i];
            const ContrastPattern &pb = b.mining.patterns[i];
            EXPECT_EQ(pa.cost, pb.cost) << "pattern " << i;
            EXPECT_EQ(pa.count, pb.count) << "pattern " << i;
            EXPECT_EQ(pa.maxExec, pb.maxExec) << "pattern " << i;
            EXPECT_EQ(pa.tuple.waits, pb.tuple.waits);
            EXPECT_EQ(pa.tuple.unwaits, pb.tuple.unwaits);
            EXPECT_EQ(pa.tuple.runnings, pb.tuple.runnings);
        }
        EXPECT_EQ(a.mining.stats.fullPaths, b.mining.stats.fullPaths);
        EXPECT_EQ(a.mining.stats.selectedPaths,
                  b.mining.stats.selectedPaths);

        EXPECT_EQ(a.coverage.componentCost, b.coverage.componentCost);
        EXPECT_EQ(a.coverage.impactfulCost, b.coverage.impactfulCost);
        EXPECT_EQ(a.coverage.totalCost, b.coverage.totalCost);
        EXPECT_EQ(a.coverage.patternCount, b.coverage.patternCount);
    }
}

TEST(ParallelDeterminism, ScenarioFanOutMatchesSequentialCalls)
{
    const TraceCorpus corpus = generateCorpus(smallFleet());
    AnalyzerConfig config;
    config.threads = manyThreads();
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source, config);

    std::vector<ScenarioThresholds> requests;
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.selected &&
            corpus.findScenario(spec.name) != UINT32_MAX)
            requests.push_back({spec.name, spec.tFast, spec.tSlow});
    }
    ASSERT_FALSE(requests.empty());

    const std::vector<ScenarioAnalysis> fanned =
        analyzer.analyzeScenarios(requests);
    ASSERT_EQ(fanned.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const ScenarioAnalysis direct = analyzer.analyzeScenario(
            requests[i].name, requests[i].tFast, requests[i].tSlow);
        EXPECT_EQ(fanned[i].name, direct.name);
        EXPECT_EQ(fanned[i].classes.slow, direct.classes.slow);
        expectSameImpact(fanned[i].slowImpact, direct.slowImpact);
        ASSERT_EQ(fanned[i].mining.patterns.size(),
                  direct.mining.patterns.size());
        for (std::size_t p = 0; p < direct.mining.patterns.size(); ++p) {
            EXPECT_EQ(fanned[i].mining.patterns[p].cost,
                      direct.mining.patterns[p].cost);
            EXPECT_EQ(fanned[i].mining.patterns[p].count,
                      direct.mining.patterns[p].count);
        }
    }
}

} // namespace
} // namespace tracelens
