/**
 * @file
 * Unit tests for src/util: RNG, interner, stats, wildcard, table.
 */

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/interner.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/types.h"
#include "src/util/wildcard.h"

namespace tracelens
{
namespace
{

TEST(Types, MillisecondConversionRoundTrips)
{
    EXPECT_EQ(fromMs(1.0), kMillisecond);
    EXPECT_DOUBLE_EQ(toMs(kMillisecond), 1.0);
    EXPECT_DOUBLE_EQ(toMs(fromMs(123.5)), 123.5);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, LogNormalMedianApproximatelyCorrect)
{
    Rng rng(13);
    std::vector<double> xs;
    const int n = 20001;
    for (int i = 0; i < n; ++i)
        xs.push_back(rng.logNormal(10.0, 0.8));
    std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
    EXPECT_NEAR(xs[n / 2], 10.0, 0.5);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, BoundedParetoStaysInSupport)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.boundedPareto(1.5, 1.0, 100.0);
        EXPECT_GE(x, 1.0);
        EXPECT_LE(x, 100.0);
    }
}

TEST(Rng, PickWeightedRespectsZeroWeights)
{
    Rng rng(5);
    const std::vector<double> weights = {0.0, 1.0, 0.0};
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(rng.pickWeighted(weights), 1u);
}

TEST(Rng, PickWeightedApproximatesRatios)
{
    Rng rng(9);
    const std::vector<double> weights = {1.0, 3.0};
    int hits1 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits1 += rng.pickWeighted(weights) == 1;
    EXPECT_NEAR(static_cast<double>(hits1) / n, 0.75, 0.03);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(42);
    Rng child = a.fork();
    // The fork consumes one value; a forked generator must not mirror
    // the parent's subsequent outputs.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == child());
    EXPECT_LT(same, 3);
}

TEST(Interner, AssignsDenseIdsInFirstSeenOrder)
{
    StringInterner interner;
    EXPECT_EQ(interner.intern("alpha"), 0u);
    EXPECT_EQ(interner.intern("beta"), 1u);
    EXPECT_EQ(interner.intern("alpha"), 0u);
    EXPECT_EQ(interner.size(), 2u);
    EXPECT_EQ(interner.lookup(1), "beta");
}

TEST(Interner, FindDoesNotAllocate)
{
    StringInterner interner;
    interner.intern("x");
    EXPECT_EQ(interner.find("x"), 0u);
    EXPECT_EQ(interner.find("missing"), UINT32_MAX);
    EXPECT_EQ(interner.size(), 1u);
}

TEST(Interner, SurvivesManyInsertions)
{
    StringInterner interner;
    for (int i = 0; i < 10000; ++i)
        interner.intern("sym" + std::to_string(i));
    // Views must stay valid after growth.
    EXPECT_EQ(interner.find("sym0"), 0u);
    EXPECT_EQ(interner.find("sym9999"), 9999u);
    EXPECT_EQ(interner.lookup(1234), "sym1234");
}

TEST(Accumulator, BasicMoments)
{
    Accumulator acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, MergeMatchesSequential)
{
    Accumulator a, b, whole;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10;
        (i % 2 ? a : b).add(x);
        whole.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(SampleSet, QuantilesExact)
{
    SampleSet s;
    for (int i = 10; i >= 1; --i)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

TEST(LogHistogram, BucketsAndOverflow)
{
    LogHistogram h(1.0, 4); // [1,2) [2,4) [4,8) [8,inf clamp)
    h.add(0.5);
    h.add(1.5);
    h.add(3.0);
    h.add(100.0);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucketValue(0), 2u); // 0.5 clamps down, 1.5 in range
    EXPECT_EQ(h.bucketValue(1), 1u);
    EXPECT_EQ(h.bucketValue(3), 1u);
}

TEST(Wildcard, LiteralAndCase)
{
    EXPECT_TRUE(wildcardMatch("fs.sys", "fs.sys"));
    EXPECT_TRUE(wildcardMatch("FS.SYS", "fs.sys"));
    EXPECT_FALSE(wildcardMatch("fs.sys", "fv.sys"));
}

TEST(Wildcard, StarPatterns)
{
    EXPECT_TRUE(wildcardMatch("*.sys", "fv.sys"));
    EXPECT_TRUE(wildcardMatch("*.sys", ".sys"));
    EXPECT_FALSE(wildcardMatch("*.sys", "browser.exe"));
    EXPECT_TRUE(wildcardMatch("*", ""));
    EXPECT_TRUE(wildcardMatch("fs*", "fs.sys"));
    EXPECT_TRUE(wildcardMatch("*sys*", "fs.sys"));
}

TEST(Wildcard, QuestionMark)
{
    EXPECT_TRUE(wildcardMatch("f?.sys", "fv.sys"));
    EXPECT_TRUE(wildcardMatch("f?.sys", "fs.sys"));
    EXPECT_FALSE(wildcardMatch("f?.sys", "fxx.sys"));
}

TEST(Wildcard, EmptyPatternMatchesOnlyEmpty)
{
    EXPECT_TRUE(wildcardMatch("", ""));
    EXPECT_FALSE(wildcardMatch("", "x"));
}

TEST(NameFilter, AnyOfSemantics)
{
    NameFilter filter({"*.sys", "hal.dll"});
    EXPECT_TRUE(filter.matches("fv.sys"));
    EXPECT_TRUE(filter.matches("HAL.DLL"));
    EXPECT_FALSE(filter.matches("browser.exe"));
    EXPECT_FALSE(NameFilter{}.matches("anything"));
}

TEST(TextTable, RendersAlignedRows)
{
    TextTable t({"Name", "Value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| Name"), std::string::npos);
    EXPECT_NE(out.find("| longer | 2"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::pct(0.364), "36.4%");
    EXPECT_EQ(TextTable::num(3.456, 2), "3.46");
    EXPECT_EQ(TextTable::ms(12.3), "12.3ms");
}

} // namespace
} // namespace tracelens
