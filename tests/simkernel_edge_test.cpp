/**
 * @file
 * Edge-case and misuse tests for the simulator: invariant violations
 * die loudly, DPC completion contexts, nested jobs, and scheduling
 * corner cases.
 */

#include <gtest/gtest.h>

#include "src/simkernel/engine.h"
#include "src/simkernel/kernel.h"
#include "src/trace/validate.h"

namespace tracelens
{
namespace
{

TEST(SimEngineDeath, SchedulingIntoThePastPanics)
{
    SimEngine engine;
    engine.scheduleAt(100, [] {});
    engine.run();
    EXPECT_DEATH(engine.scheduleAt(50, [] {}), "past");
}

TEST(SimKernelDeath, ReleaseByNonOwnerPanics)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const LockId lock = sim.createLock();
    const FrameId f = sim.frame("a.sys!F");
    sim.spawnThread({actPush(f), actAcquire(lock), actPop()});
    sim.spawnThread({actPush(f), actRelease(lock), actPop()},
                    fromMs(1));
    EXPECT_DEATH(sim.run(), "non-owner");
}

TEST(SimKernelDeath, RecursiveAcquirePanics)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const LockId lock = sim.createLock();
    sim.spawnThread({actAcquire(lock), actAcquire(lock)});
    EXPECT_DEATH(sim.run(), "recursive");
}

TEST(SimKernelDeath, PopOnEmptyStackPanics)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    sim.spawnThread({actPop()});
    EXPECT_DEATH(sim.run(), "empty stack");
}

TEST(SimKernelDeath, EndInstanceWithoutBeginPanics)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    sim.spawnThread({actEndInstance()});
    EXPECT_DEATH(sim.run(), "EndInstance");
}

TEST(SimKernelDeath, UnclosedInstancePanics)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const auto scn = sim.scenario("S");
    sim.spawnThread({actBeginInstance(scn)});
    EXPECT_DEATH(sim.run(), "open scenario instance");
}

TEST(SimKernelDeath, RunTwicePanics)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    sim.run();
    EXPECT_DEATH(sim.run(), "twice");
}

TEST(SimKernel, DeviceDpcContextUsedForUnwait)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const DeviceId net =
        sim.createDevice("NetworkService", "ndis.sys!ReceiveDpc");
    const FrameId f = sim.frame("net.sys!Send");
    sim.spawnThread({actPush(f), actHardware(net, fromMs(2)),
                     actPop()});
    const auto stream_idx = sim.run();

    bool saw_hw = false, saw_unwait = false;
    for (const Event &e : corpus.stream(stream_idx).events()) {
        const auto frames = corpus.symbols().stackFrames(e.stack);
        ASSERT_FALSE(frames.empty());
        const std::string &top =
            corpus.symbols().frameName(frames.back());
        if (e.type == EventType::HardwareService) {
            EXPECT_EQ(top, "NetworkService"); // dummy service stack
            saw_hw = true;
        } else if (e.type == EventType::Unwait) {
            EXPECT_EQ(top, "ndis.sys!ReceiveDpc"); // DPC context
            saw_unwait = true;
        }
    }
    EXPECT_TRUE(saw_hw);
    EXPECT_TRUE(saw_unwait);
}

TEST(SimKernel, DeviceWithoutDpcUsesServiceStackForUnwait)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const DeviceId disk = sim.createDevice("DiskService");
    sim.spawnThread({actPush(sim.frame("fs.sys!Read")),
                     actHardware(disk, fromMs(1)), actPop()});
    const auto stream_idx = sim.run();
    for (const Event &e : corpus.stream(stream_idx).events()) {
        if (e.type != EventType::Unwait)
            continue;
        const auto frames = corpus.symbols().stackFrames(e.stack);
        EXPECT_EQ(corpus.symbols().frameName(frames.back()),
                  "DiskService");
    }
}

TEST(SimKernel, NestedSynchronousJobs)
{
    // A service job that itself submits a synchronous job to another
    // pool (the fs -> se system-service chain shape).
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const ChannelId outer = sim.createChannel();
    const ChannelId inner = sim.createChannel();

    sim.spawnThread({actPush(sim.frame("kernel!OuterWorker")),
                     actReceiveJob(outer), actJump(1)});
    sim.spawnThread({actPush(sim.frame("kernel!InnerWorker")),
                     actReceiveJob(inner), actJump(1)});

    auto inner_job = std::make_shared<const Script>(Script{
        actPush(sim.frame("se.sys!Decrypt")), actCompute(fromMs(2))});
    auto outer_job = std::make_shared<const Script>(Script{
        actPush(sim.frame("fs.sys!Read")),
        actSubmitJob(inner, inner_job, /*wait=*/true),
        actCompute(fromMs(1))});

    sim.spawnThread({actPush(sim.frame("app.exe!Main")),
                     actSubmitJob(outer, outer_job, /*wait=*/true),
                     actPop()},
                    fromMs(1));
    sim.run();
    EXPECT_EQ(sim.now(), fromMs(4));

    const ValidationReport report = validateCorpus(corpus);
    EXPECT_EQ(report.strayUnwaits, 0u) << report.render();
}

TEST(SimKernel, JobsQueueFifoAcrossManyClients)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const ChannelId chan = sim.createChannel();
    sim.spawnThread({actPush(sim.frame("kernel!Worker")),
                     actReceiveJob(chan), actJump(1)});

    auto job = std::make_shared<const Script>(
        Script{actCompute(fromMs(2))});
    for (int i = 0; i < 4; ++i) {
        sim.spawnThread({actPush(sim.frame("app.exe!Main")),
                         actSubmitJob(chan, job, /*wait=*/true),
                         actPop()},
                        fromMs(i) / 10);
    }
    sim.run();
    // Four serialized 2 ms jobs, the first starting at t=0.
    EXPECT_EQ(sim.now(), fromMs(8));
}

TEST(SimKernel, ZeroDurationComputeIsLegal)
{
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    sim.spawnThread({actPush(sim.frame("a.exe!F")), actCompute(0),
                     actPop()});
    const auto stream_idx = sim.run();
    EXPECT_EQ(corpus.stream(stream_idx).size(), 0u);
    EXPECT_EQ(sim.completedThreads(), 1u);
}

TEST(SimKernel, HorizonStopsRunawaySimulation)
{
    TraceCorpus corpus;
    SimConfig config;
    config.horizon = fromMs(10);
    SimKernel sim(corpus, "m", config);
    // Two threads ping-ponging jobs forever would never drain; the
    // Sleep loop keeps the event queue alive past the horizon.
    sim.spawnThread({actSleep(fromMs(3)), actJump(0)});
    sim.run();
    EXPECT_LE(sim.now(), fromMs(10));
}

TEST(SimKernel, ManyThreadsManyLocksComplete)
{
    TraceCorpus corpus;
    SimConfig config;
    config.cores = 2;
    SimKernel sim(corpus, "m", config);
    std::vector<LockId> locks;
    for (int i = 0; i < 4; ++i)
        locks.push_back(sim.createLock());
    const FrameId f = sim.frame("x.sys!Op");

    // 16 threads acquiring locks in a consistent global order.
    for (ThreadId t = 0; t < 16; ++t) {
        Script s;
        s.push_back(actPush(f));
        for (std::size_t l = t % 2; l < locks.size(); l += 2) {
            s.push_back(actAcquire(locks[l]));
            s.push_back(actCompute(fromMs(1)));
        }
        for (std::size_t l = locks.size(); l-- > 0;) {
            if (l % 2 == t % 2)
                s.push_back(actRelease(locks[l]));
        }
        s.push_back(actPop());
        sim.spawnThread(std::move(s), fromMs(t) / 4);
    }
    sim.run();
    EXPECT_EQ(sim.completedThreads(), 16u);
    const ValidationReport report = validateCorpus(corpus);
    EXPECT_EQ(report.unpairedWaits, 0u) << report.render();
}

} // namespace
} // namespace tracelens
