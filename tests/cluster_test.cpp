/**
 * @file
 * Tests for the sharded-cluster layer (src/server/coordinator.h): the
 * consistent-hash ring, shard enumeration (which must mirror the
 * single-node ingest order exactly), the coordinator's scatter/gather
 * byte-identity contract against a single-node daemon, worker-failure
 * semantics (replica retry, degraded responses under a deadline), the
 * mixed-revision handshake, and the worker-side `*_partial` methods.
 * Built into the "server" ctest label so the whole file runs under
 * both sanitizers (ctest --preset asan-server / tsan-server).
 */

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/partial.h"
#include "src/server/client.h"
#include "src/server/coordinator.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/trace/serialize.h"
#include "src/util/json.h"
#include "src/util/telemetry.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace server
{
namespace
{

namespace fs = std::filesystem;

/** Self-cleaning scratch dir (pid-suffixed: binaries run under -j). */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(fs::temp_directory_path() /
                ("tracelens_cluster_test_" +
                 std::to_string(::getpid()) + "_" + name))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

// ---------------------------------------------------------- hash ring

TEST(HashRing, PlacementIsDeterministicAndCoversEveryWorker)
{
    const std::vector<std::string> workers = {"a:1", "b:2", "c:3"};
    HashRing ring(workers);
    HashRing again(workers);

    std::set<std::uint32_t> owners;
    for (int i = 0; i < 1000; ++i) {
        const std::string key = "shard-" + std::to_string(i) + ".tlc";
        const std::uint32_t primary = ring.primary(key);
        ASSERT_LT(primary, workers.size());
        // Placement is a pure function of the worker list.
        EXPECT_EQ(primary, again.primary(key));
        owners.insert(primary);

        const auto replica = ring.replica(key);
        ASSERT_TRUE(replica.has_value());
        EXPECT_NE(*replica, primary)
            << "replica must be a distinct worker for " << key;
    }
    // 64 virtual nodes per worker: 1000 keys cannot all miss a worker.
    EXPECT_EQ(owners.size(), workers.size());
}

TEST(HashRing, SingleWorkerOwnsEverythingAndHasNoReplica)
{
    HashRing ring({"only:1"});
    for (int i = 0; i < 100; ++i) {
        std::string key = "k";
        key += std::to_string(i);
        EXPECT_EQ(ring.primary(key), 0u);
        EXPECT_FALSE(ring.replica(key).has_value());
    }
}

// ---------------------------------------------------- shard enumeration

TEST(EnumerateShards, MirrorsSingleNodeIngestOrder)
{
    ScratchDir scratch("enumerate");
    CorpusSpec spec;
    spec.machines = 4;
    spec.seed = 7;
    const std::string dir = (scratch.path() / "corpus").string();
    const std::vector<std::string> written =
        writeShardedCorpusDir(generateCorpus(spec), dir, 3);
    ASSERT_EQ(written.size(), 3u);

    // Non-shard clutter must be ignored, exactly as openSource does.
    std::ofstream(scratch.path() / "corpus" / "README.txt") << "hi";
    fs::create_directories(scratch.path() / "corpus" / "sub");

    Expected<std::vector<std::string>> shards =
        Coordinator::enumerateShards(dir);
    ASSERT_TRUE(shards.ok()) << shards.error().render();
    std::vector<std::string> expected = written;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(shards.value(), expected);

    // A plain corpus file enumerates to itself.
    Expected<std::vector<std::string>> single =
        Coordinator::enumerateShards(written[0]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(single.value(),
              std::vector<std::string>{written[0]});
}

TEST(EnumerateShards, EmptyDirAndMissingPathFail)
{
    ScratchDir scratch("enumerate_bad");
    const std::string empty = (scratch.path() / "empty").string();
    fs::create_directories(empty);
    Expected<std::vector<std::string>> none =
        Coordinator::enumerateShards(empty);
    ASSERT_FALSE(none.ok());
    EXPECT_NE(none.error().render().find("*.tlc"), std::string::npos);

    Expected<std::vector<std::string>> missing =
        Coordinator::enumerateShards(
            (scratch.path() / "nope").string());
    EXPECT_FALSE(missing.ok());
}

// ----------------------------------------------------- cluster fixture

/** A sharded corpus + helpers to start workers and a coordinator. */
class ClusterTest : public ::testing::Test
{
  protected:
    struct Daemon
    {
        std::unique_ptr<Server> server;
        std::uint16_t port = 0;

        std::string
        address() const
        {
            return "127.0.0.1:" + std::to_string(port);
        }
    };

    void
    SetUp() override
    {
        scratch_ = std::make_unique<ScratchDir>(
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
        CorpusSpec spec;
        spec.machines = 8;
        spec.seed = 1337;
        corpusDir_ = (scratch_->path() / "corpus").string();
        writeShardedCorpusDir(generateCorpus(spec), corpusDir_, 4);
    }

    Daemon
    startDaemon(ServerConfig config = {})
    {
        config.host = "127.0.0.1";
        config.port = 0;
        Daemon daemon;
        daemon.server = std::make_unique<Server>(config);
        Expected<std::uint16_t> port = daemon.server->start();
        EXPECT_TRUE(port.ok()) << port.error().render();
        daemon.port = port.ok() ? port.value() : 0;
        return daemon;
    }

    Daemon
    startWorker()
    {
        return startDaemon();
    }

    Daemon
    startCoordinator(const std::vector<std::string> &workers,
                     std::uint64_t shardDeadlineMs = 10000)
    {
        ServerConfig config;
        config.coordinator = true;
        config.workerAddrs = workers;
        config.shardDeadlineMs = shardDeadlineMs;
        return startDaemon(config);
    }

    static void
    stopDaemon(Daemon &daemon)
    {
        daemon.server->requestStop();
        daemon.server->wait();
    }

    static Session
    connect(const Daemon &daemon)
    {
        SessionOptions options;
        options.ioTimeout = std::chrono::milliseconds(60000);
        Expected<Session> session =
            Session::connect("127.0.0.1", daemon.port, options);
        EXPECT_TRUE(session.ok());
        return std::move(session.value());
    }

    AnalyzeRequest
    analyzeRequest() const
    {
        AnalyzeRequest request;
        request.corpus = corpusDir_;
        request.scenario = "BrowserTabCreate";
        return request;
    }

    void
    TearDown() override
    {
        scratch_.reset();
    }

    // Daemons are test-body locals: ~Server stops and joins on
    // destruction, so scope exit is the cleanup. TearDown must not
    // touch them — it runs after the body's locals are gone.

    std::unique_ptr<ScratchDir> scratch_;
    std::string corpusDir_;
};

// -------------------------------------------------------- byte identity

TEST_F(ClusterTest, CoordinatorReportsAreByteIdenticalToSingleNode)
{
    Daemon worker1 = startWorker();
    Daemon worker2 = startWorker();
    Daemon coord = startCoordinator(
        {worker1.address(), worker2.address()});
    Daemon single = startWorker();

    Session coordSession = connect(coord);
    Session singleSession = connect(single);

    // analyze
    Expected<Response> coordAnalyze =
        coordSession.analyze(analyzeRequest());
    Expected<Response> singleAnalyze =
        singleSession.analyze(analyzeRequest());
    ASSERT_TRUE(coordAnalyze.ok()) << coordAnalyze.error().render();
    ASSERT_TRUE(singleAnalyze.ok());
    ASSERT_TRUE(coordAnalyze.value().ok)
        << coordAnalyze.value().error.message;
    ASSERT_TRUE(singleAnalyze.value().ok)
        << singleAnalyze.value().error.message;
    EXPECT_EQ(coordAnalyze.value().result.render(),
              singleAnalyze.value().result.render());
    // A full gather carries no degradation markers at all.
    EXPECT_EQ(coordAnalyze.value().result.find("partial_results"),
              nullptr);

    // impact
    ImpactRequest impact;
    impact.corpus = corpusDir_;
    Expected<Response> coordImpact = coordSession.impact(impact);
    Expected<Response> singleImpact = singleSession.impact(impact);
    ASSERT_TRUE(coordImpact.ok());
    ASSERT_TRUE(singleImpact.ok());
    ASSERT_TRUE(coordImpact.value().ok)
        << coordImpact.value().error.message;
    ASSERT_TRUE(singleImpact.value().ok);
    EXPECT_EQ(coordImpact.value().result.render(),
              singleImpact.value().result.render());

    // mine
    MineRequest mine;
    mine.corpus = corpusDir_;
    mine.scenario = "BrowserTabCreate";
    Expected<Response> coordMine = coordSession.mine(mine);
    Expected<Response> singleMine = singleSession.mine(mine);
    ASSERT_TRUE(coordMine.ok());
    ASSERT_TRUE(singleMine.ok());
    ASSERT_TRUE(coordMine.value().ok)
        << coordMine.value().error.message;
    ASSERT_TRUE(singleMine.value().ok);
    EXPECT_EQ(coordMine.value().result.render(),
              singleMine.value().result.render());
}

// ------------------------------------------------------ failure handling

TEST_F(ClusterTest, StoppedWorkerIsRetriedOnItsReplica)
{
    Daemon worker1 = startWorker();
    Daemon worker2 = startWorker();
    Daemon coord = startCoordinator(
        {worker1.address(), worker2.address()});

    Session before = connect(coord);
    Expected<Response> baseline = before.analyze(analyzeRequest());
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(baseline.value().ok)
        << baseline.value().error.message;

    // Kill one worker; its shards must be answered by the survivor.
    stopDaemon(worker1);

    Session after = connect(coord);
    Expected<Response> retried = after.analyze(analyzeRequest());
    ASSERT_TRUE(retried.ok()) << retried.error().render();
    ASSERT_TRUE(retried.value().ok)
        << retried.value().error.message;
    // The retried gather is still a *full* gather: byte-identical,
    // no degradation markers.
    EXPECT_EQ(retried.value().result.render(),
              baseline.value().result.render());
    EXPECT_EQ(retried.value().result.find("partial_results"), nullptr);
}

TEST_F(ClusterTest, SoleWorkerDownDegradesInsideTheDeadline)
{
    // Grab a port that is guaranteed closed by starting and stopping
    // a real daemon on it.
    Daemon doomed = startWorker();
    const std::string deadAddr = doomed.address();
    stopDaemon(doomed);

    Daemon coord = startCoordinator({deadAddr}, 2000);
    Session session = connect(coord);

    CallOptions options;
    options.deadlineMs = 30000;
    const auto start = std::chrono::steady_clock::now();
    Expected<Response> response =
        session.call(Method::Analyze, analyzeRequest().toParams(),
                     options);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_TRUE(response.ok()) << response.error().render();
    // Connection refused on every shard, no replica to retry: the
    // query degrades instead of failing or hanging.
    EXPECT_LT(elapsed, std::chrono::seconds(20));
    ASSERT_TRUE(response.value().ok)
        << response.value().error.message;
    const JsonValue *partial =
        response.value().result.find("partial_results");
    ASSERT_NE(partial, nullptr);
    EXPECT_TRUE(partial->asBool());
    const JsonValue *missing =
        response.value().result.find("missing_shards");
    ASSERT_NE(missing, nullptr);
    ASSERT_TRUE(missing->isArray());
    EXPECT_EQ(missing->asArray().size(), 4u)
        << "all four shards were unreachable";
}

// -------------------------------------------------- revision handshake

/**
 * A fake pre-partial-encoding daemon: speaks protocol v1 only and
 * answers `health` without the "partial_encoding" field, exactly like
 * a build that predates the partial-result layer. The coordinator's
 * handshake must reject it up front.
 */
class FakeOldWorker
{
  public:
    FakeOldWorker()
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(fd_, 4), 0);
        socklen_t len = sizeof(addr);
        EXPECT_EQ(::getsockname(fd_,
                                reinterpret_cast<sockaddr *>(&addr),
                                &len),
                  0);
        port_ = ntohs(addr.sin_port);
        thread_ = std::thread([this] { serve(); });
    }

    ~FakeOldWorker()
    {
        if (fd_ >= 0)
            ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        if (thread_.joinable())
            thread_.join();
    }

    std::uint16_t port() const { return port_; }
    std::string
    address() const
    {
        return "127.0.0.1:" + std::to_string(port_);
    }

  private:
    void
    serve()
    {
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client < 0)
            return;
        std::string buffer;
        // Line 1 is the v2 preface: answer a JSON line so the client
        // falls back to v1. Line 2 is the v1 health request: answer
        // ok *without* "partial_encoding" (and echo id 1 — the first
        // id a fresh Session assigns).
        static const char *replies[] = {
            "{\"ok\":false,\"error\":{\"code\":\"bad_request\","
            "\"message\":\"parse error\"}}\n",
            "{\"id\":1,\"ok\":true,\"result\":{\"protocol\":1,"
            "\"protocols\":[1],\"status\":\"ok\"}}\n",
        };
        for (const char *reply : replies) {
            while (buffer.find('\n') == std::string::npos) {
                char chunk[512];
                const ssize_t n =
                    ::recv(client, chunk, sizeof(chunk), 0);
                if (n <= 0) {
                    ::close(client);
                    return;
                }
                buffer.append(chunk, static_cast<std::size_t>(n));
            }
            buffer.erase(0, buffer.find('\n') + 1);
            const std::size_t length = std::strlen(reply);
            if (::send(client, reply, length, 0) !=
                static_cast<ssize_t>(length))
                break;
        }
        // Hold the socket open until the test tears us down, so the
        // coordinator's error is the handshake's, not a reset.
        char sink[512];
        while (::recv(client, sink, sizeof(sink), 0) > 0) {
        }
        ::close(client);
    }

    int fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
};

TEST_F(ClusterTest, MixedRevisionWorkerIsRejectedUpFront)
{
    FakeOldWorker old;
    Daemon coord = startCoordinator({old.address()});
    Session session = connect(coord);

    Expected<Response> response = session.analyze(analyzeRequest());
    ASSERT_TRUE(response.ok()) << response.error().render();
    EXPECT_FALSE(response.value().ok);
    EXPECT_EQ(response.value().error.code, ErrorCode::BadRequest);
    EXPECT_NE(
        response.value().error.message.find("revision mismatch"),
        std::string::npos)
        << response.value().error.message;
}

// ------------------------------------------------- worker-side partials

TEST_F(ClusterTest, PartialMethodsRequireExplicitThresholds)
{
    Daemon worker = startWorker();
    Session session = connect(worker);

    // Thresholds are mandatory on the partial plane: workers never
    // resolve catalog defaults (the coordinator resolves them once).
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpusDir_));
    params.set("scenario", JsonValue("BrowserTabCreate"));
    Expected<Response> bare =
        session.call(Method::AnalyzePartial, params);
    ASSERT_TRUE(bare.ok());
    EXPECT_FALSE(bare.value().ok);
    EXPECT_EQ(bare.value().error.code, ErrorCode::BadRequest);

    params.set("tfast_ms", JsonValue(100.0));
    params.set("tslow_ms", JsonValue(500.0));
    Expected<Response> full =
        session.call(Method::AnalyzePartial, params);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(full.value().ok) << full.value().error.message;
    const JsonValue *revision =
        full.value().result.find("encoding_revision");
    ASSERT_NE(revision, nullptr);
    EXPECT_EQ(revision->asNumber(), partialEncodingRevision());
    const JsonValue *partial = full.value().result.find("partial");
    ASSERT_NE(partial, nullptr);
    EXPECT_FALSE(partial->asString().empty());

    // mine_partial is the same payload and the same handler.
    Expected<Response> mined =
        session.call(Method::MinePartial, params);
    ASSERT_TRUE(mined.ok());
    EXPECT_TRUE(mined.value().ok) << mined.value().error.message;
}

TEST_F(ClusterTest, RoleMismatchedMethodsAreRejected)
{
    Daemon worker = startWorker();
    Daemon coord = startCoordinator({worker.address()});

    // cluster_status is a coordinator method...
    Session workerSession = connect(worker);
    Expected<Response> status = workerSession.call(
        Method::ClusterStatus, JsonValue::makeObject());
    ASSERT_TRUE(status.ok());
    EXPECT_FALSE(status.value().ok);
    EXPECT_EQ(status.value().error.code, ErrorCode::BadRequest);

    // ...while ingest and the partial plane live on the workers.
    Session coordSession = connect(coord);
    IngestRequest ingest;
    ingest.corpus = corpusDir_;
    Expected<Response> ingested = coordSession.ingest(ingest);
    ASSERT_TRUE(ingested.ok());
    EXPECT_FALSE(ingested.value().ok);
    EXPECT_EQ(ingested.value().error.code, ErrorCode::BadRequest);

    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpusDir_));
    params.set("scenario", JsonValue("BrowserTabCreate"));
    params.set("tfast_ms", JsonValue(100.0));
    params.set("tslow_ms", JsonValue(500.0));
    Expected<Response> partial =
        coordSession.call(Method::AnalyzePartial, params);
    ASSERT_TRUE(partial.ok());
    EXPECT_FALSE(partial.value().ok);
    EXPECT_EQ(partial.value().error.code, ErrorCode::BadRequest);
}

TEST_F(ClusterTest, ClusterStatusReportsTopologyAndHealth)
{
    Daemon worker = startWorker();
    Daemon doomed = startWorker();
    const std::string deadAddr = doomed.address();
    stopDaemon(doomed);
    Daemon coord =
        startCoordinator({worker.address(), deadAddr});

    Session session = connect(coord);
    Expected<Response> response =
        session.call(Method::ClusterStatus, JsonValue::makeObject());
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response.value().ok)
        << response.value().error.message;
    const JsonValue &result = response.value().result;
    const JsonValue *revision = result.find("partial_encoding");
    ASSERT_NE(revision, nullptr);
    EXPECT_EQ(revision->asNumber(), partialEncodingRevision());
    const JsonValue *workers = result.find("workers");
    ASSERT_NE(workers, nullptr);
    ASSERT_TRUE(workers->isArray());
    ASSERT_EQ(workers->asArray().size(), 2u);

    bool sawOk = false;
    bool sawUnreachable = false;
    for (const JsonValue &entry : workers->asArray()) {
        const JsonValue *status = entry.find("status");
        ASSERT_NE(status, nullptr);
        if (status->asString() == "ok") {
            sawOk = true;
            const JsonValue *compatible = entry.find("compatible");
            ASSERT_NE(compatible, nullptr);
            EXPECT_TRUE(compatible->asBool());
        } else {
            sawUnreachable = true;
            EXPECT_EQ(status->asString(), "unreachable");
        }
    }
    EXPECT_TRUE(sawOk);
    EXPECT_TRUE(sawUnreachable);

    // Workers advertise the partial-encoding revision in health too —
    // the field the coordinator's handshake keys on.
    Session workerSession = connect(worker);
    Expected<Response> health = workerSession.health();
    ASSERT_TRUE(health.ok());
    ASSERT_TRUE(health.value().ok);
    const JsonValue *advertised =
        health.value().result.find("partial_encoding");
    ASSERT_NE(advertised, nullptr);
    EXPECT_EQ(advertised->asNumber(), partialEncodingRevision());
}

// ----------------------------------------------- distributed tracing

TEST_F(ClusterTest, OneTraceIdSpansCoordinatorAndWorkers)
{
    Daemon worker1 = startWorker();
    Daemon worker2 = startWorker();
    Daemon coord = startCoordinator(
        {worker1.address(), worker2.address()});

    Telemetry::setEnabled(true);
    Telemetry::reset();

    // Root a trace at the client; the coordinator adopts it and the
    // scatter propagates it over real TCP to every worker, so every
    // server.request span in the gather carries the one trace id.
    const std::uint64_t traceId = 0x1ce7ea5eb0b5ca1eull;
    Session session = connect(coord);
    ASSERT_TRUE(session.tracingNegotiated());
    CallOptions options;
    options.traceContext.traceId = traceId;
    options.traceContext.parentSpanId = 0xbeef;
    options.traceContext.sampled = true;
    Expected<Response> response =
        session.analyze(analyzeRequest(), options);
    ASSERT_TRUE(response.ok()) << response.error().render();
    ASSERT_TRUE(response.value().ok)
        << response.value().error.message;

    // Spans commit when their scopes close (after the responses are
    // sent), so poll. Every daemon runs in this process, so the
    // process-wide buffer holds all three nodes' spans.
    std::vector<SpanSnapshot> traced;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    std::size_t partials = 0;
    while (std::chrono::steady_clock::now() < deadline) {
        traced.clear();
        partials = 0;
        for (SpanSnapshot &span : Telemetry::snapshotSpans())
            if (span.traceId == traceId)
                traced.push_back(std::move(span));
        for (const SpanSnapshot &span : traced)
            for (const auto &[key, value] : span.args)
                if (key == "method" && value == "analyze_partial")
                    ++partials;
        if (partials >= 2)
            break;
        ::usleep(20'000);
    }

    // The coordinator's request span is the root: it adopted the
    // client's parent id.
    std::map<std::uint64_t, const SpanSnapshot *> byId;
    const SpanSnapshot *root = nullptr;
    for (const SpanSnapshot &span : traced) {
        if (span.spanId != 0)
            byId[span.spanId] = &span;
        for (const auto &[key, value] : span.args)
            if (key == "method" && value == "analyze" &&
                span.name == "server.request")
                root = &span;
    }
    ASSERT_NE(root, nullptr) << "no coordinator request span";
    EXPECT_EQ(root->parentSpanId, 0xbeefu);

    // Every worker-side partial span must chain back to that root
    // through resolvable parent edges — the property the stitcher's
    // flow arrows render. 4 shards over 2 workers means at least two
    // partial requests crossed the wire.
    EXPECT_GE(partials, 2u);
    std::size_t chained = 0;
    for (const SpanSnapshot &span : traced) {
        bool isPartial = false;
        for (const auto &[key, value] : span.args)
            if (key == "method" && value == "analyze_partial")
                isPartial = true;
        if (!isPartial)
            continue;
        const SpanSnapshot *hop = &span;
        for (int depth = 0; depth < 16 && hop != nullptr &&
                            hop != root;
             ++depth) {
            const auto parent = byId.find(hop->parentSpanId);
            hop = parent == byId.end() ? nullptr : parent->second;
        }
        EXPECT_EQ(hop, root)
            << "partial span does not chain to the root";
        if (hop == root)
            ++chained;
    }
    EXPECT_EQ(chained, partials);

    Telemetry::setEnabled(false);
    Telemetry::reset();
}

TEST_F(ClusterTest, ClusterTraceStitchesEveryNode)
{
    Daemon worker1 = startWorker();
    Daemon worker2 = startWorker();
    Daemon coord = startCoordinator(
        {worker1.address(), worker2.address()});

    Telemetry::setEnabled(true);
    Telemetry::reset();

    Session session = connect(coord);
    Expected<Response> analyzed =
        session.analyze(analyzeRequest());
    ASSERT_TRUE(analyzed.ok());
    ASSERT_TRUE(analyzed.value().ok);

    Expected<Response> stitched = session.call(
        Method::ClusterTrace, JsonValue::makeObject(), {});
    ASSERT_TRUE(stitched.ok()) << stitched.error().render();
    ASSERT_TRUE(stitched.value().ok)
        << stitched.value().error.message;
    const JsonValue &result = stitched.value().result;
    const JsonValue *nodes = result.find("nodes");
    ASSERT_NE(nodes, nullptr);
    EXPECT_EQ(nodes->asNumber(), 3.0); // coordinator + 2 workers
    const JsonValue *trace = result.find("trace");
    ASSERT_NE(trace, nullptr);
    ASSERT_TRUE(trace->isString());

    // The stitched document is valid Chrome-trace JSON with one pid
    // namespace per node (metadata events name them).
    Expected<JsonValue> parsed = JsonValue::parse(trace->asString());
    ASSERT_TRUE(parsed.ok()) << parsed.error().render();
    EXPECT_NE(trace->asString().find("\"process_name\""),
              std::string::npos);
    EXPECT_NE(trace->asString().find("coordinator @"),
              std::string::npos);
    EXPECT_NE(trace->asString().find("worker @"),
              std::string::npos);

    // A worker must refuse the coordinator-only method.
    Session workerSession = connect(worker1);
    Expected<Response> refused = workerSession.call(
        Method::ClusterTrace, JsonValue::makeObject(), {});
    ASSERT_TRUE(refused.ok());
    EXPECT_FALSE(refused.value().ok);

    Telemetry::setEnabled(false);
    Telemetry::reset();
}

} // namespace
} // namespace server
} // namespace tracelens
