/**
 * @file
 * Tests for the workload substrate: driver zoo, machine ops, scenario
 * catalog, corpus generator, and the deterministic case studies.
 */

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "src/trace/serialize.h"
#include "src/trace/validate.h"
#include "src/waitgraph/waitgraph.h"
#include "src/workload/driverzoo.h"
#include "src/workload/generator.h"
#include "src/workload/machine.h"
#include "src/workload/motivating.h"
#include "src/workload/scenarios.h"

namespace tracelens
{
namespace
{

TEST(DriverZoo, ClassifiesKnownModules)
{
    EXPECT_EQ(classifyModule("fs.sys"), DriverType::FileSystem);
    EXPECT_EQ(classifyModule("fv.sys"), DriverType::FileSystemFilter);
    EXPECT_EQ(classifyModule("av_flt.sys"),
              DriverType::FileSystemFilter);
    EXPECT_EQ(classifyModule("net.sys"), DriverType::Network);
    EXPECT_EQ(classifyModule("se.sys"), DriverType::StorageEncryption);
    EXPECT_EQ(classifyModule("dp.sys"), DriverType::DiskProtection);
    EXPECT_EQ(classifyModule("graphics.sys"), DriverType::Graphics);
    EXPECT_EQ(classifyModule("bk.sys"), DriverType::StorageBackup);
    EXPECT_EQ(classifyModule("iocache.sys"), DriverType::IoCache);
    EXPECT_EQ(classifyModule("mou.sys"), DriverType::Mouse);
    EXPECT_EQ(classifyModule("acpi.sys"), DriverType::Acpi);
    EXPECT_FALSE(classifyModule("browser.exe").has_value());
    EXPECT_FALSE(classifyModule("unknown.sys").has_value());
}

TEST(DriverZoo, ClassifiesSignatures)
{
    EXPECT_EQ(classifySignature("fs.sys!Read"), DriverType::FileSystem);
    EXPECT_FALSE(classifySignature("DiskService").has_value());
    EXPECT_FALSE(classifySignature("app.exe!Main").has_value());
}

TEST(DriverZoo, TypeNamesAndOrder)
{
    EXPECT_EQ(allDriverTypes().size(), kDriverTypeCount);
    std::set<std::string_view> names;
    for (DriverType t : allDriverTypes())
        names.insert(driverTypeName(t));
    EXPECT_EQ(names.size(), kDriverTypeCount);
}

TEST(Machine, FileReadProducesDriverStackEvents)
{
    TraceCorpus corpus;
    MachineConfig config;
    config.storageEncryption = true;
    config.cacheHitRate = 0.0; // force the disk path
    Machine machine(corpus, "m", config, 42);

    Script body;
    machine.appendFileRead(body);
    machine.spawnInstance("Test", "app.exe!Main", std::move(body), 0);
    const auto stream_idx = machine.run();

    // The stream must mention the storage tail of the driver chain.
    const std::string dump = dumpStream(corpus, stream_idx, 1000);
    EXPECT_NE(dump.find("fs.sys!"), std::string::npos);
    EXPECT_NE(dump.find("se.sys!ReadDecrypt"), std::string::npos);
    EXPECT_NE(dump.find("DiskService"), std::string::npos);
    ASSERT_EQ(corpus.instances().size(), 1u);

    // The client's wait (on the system-service call) carries the full
    // filter -> FS stack.
    bool saw_client_wait = false;
    for (const Event &e : corpus.stream(stream_idx).events()) {
        if (e.type != EventType::Wait || e.stack == kNoCallstack)
            continue;
        const std::string stack =
            corpus.symbols().renderStack(e.stack);
        if (stack.find("fs.sys!") == std::string::npos ||
            stack.find("fs.sys!AcquireMDU") == std::string::npos)
            continue;
        EXPECT_NE(stack.find("fv.sys!"), std::string::npos);
        saw_client_wait = true;
    }
    EXPECT_TRUE(saw_client_wait);
}

TEST(Machine, UnencryptedReadSkipsSe)
{
    TraceCorpus corpus;
    MachineConfig config;
    config.storageEncryption = false;
    config.cacheHitRate = 0.0;
    Machine machine(corpus, "m", config, 42);

    Script body;
    machine.appendFileRead(body);
    machine.spawnInstance("Test", "app.exe!Main", std::move(body), 0);
    const auto stream_idx = machine.run();
    const std::string dump = dumpStream(corpus, stream_idx, 1000);
    EXPECT_EQ(dump.find("se.sys"), std::string::npos);
    EXPECT_NE(dump.find("DiskService"), std::string::npos);
}

TEST(Machine, AccessCheckRunsOnServiceThread)
{
    TraceCorpus corpus;
    MachineConfig config;
    config.cacheHitRate = 1.0; // keep the inspection read cheap
    Machine machine(corpus, "m", config, 7);

    Script body;
    machine.appendAccessCheck(body);
    machine.spawnInstance("Test", "app.exe!Main", std::move(body), 0);
    const auto stream_idx = machine.run();

    const std::string dump = dumpStream(corpus, stream_idx, 2000);
    EXPECT_NE(dump.find("av_flt.sys!InspectRequest"),
              std::string::npos);
    EXPECT_NE(dump.find("rpc!SendRequest"), std::string::npos);
}

TEST(Machine, DiskProtectionBurstBlocksReads)
{
    TraceCorpus corpus;
    MachineConfig config;
    config.diskProtection = true;
    config.storageEncryption = false;
    config.ioCache = false;
    Machine machine(corpus, "m", config, 11);

    machine.spawnDiskProtectionBurst(0, fromMs(100));
    Script body;
    machine.appendFileRead(body);
    machine.spawnInstance("Test", "app.exe!Main", std::move(body),
                          fromMs(5));
    machine.run();

    // The read must have been delayed past the 100 ms burst.
    ASSERT_EQ(corpus.instances().size(), 1u);
    EXPECT_GT(corpus.instances()[0].t1, fromMs(100));
}

TEST(Scenarios, CatalogHasEightSelectedEntriesWithSaneThresholds)
{
    const auto &catalog = scenarioCatalog();
    ASSERT_GE(catalog.size(), 8u);
    std::set<std::string> names;
    for (const ScenarioSpec &spec : catalog) {
        EXPECT_GT(spec.tFast, 0) << spec.name;
        EXPECT_GT(spec.tSlow, spec.tFast) << spec.name;
        EXPECT_GT(spec.weight, 0.0) << spec.name;
        EXPECT_TRUE(spec.build != nullptr) << spec.name;
        names.insert(spec.name);
    }
    EXPECT_EQ(names.size(), catalog.size()); // unique names

    // Exactly the paper's eight scenarios are selected for analysis.
    const auto selected = selectedScenarios();
    ASSERT_EQ(selected.size(), 8u);
    EXPECT_EQ(selected.front()->name, "AppAccessControl");
    EXPECT_EQ(selected.back()->name, "WebPageNavigation");
    EXPECT_TRUE(names.count("BrowserTabCreate"));
}

TEST(Scenarios, LookupByNameWorks)
{
    EXPECT_EQ(scenarioByName("MenuDisplay").name, "MenuDisplay");
    EXPECT_EQ(scenarioByName("BrowserTabCreate").tFast, fromMs(300));
    EXPECT_EQ(scenarioByName("BrowserTabCreate").tSlow, fromMs(500));
}

TEST(Scenarios, ScaledOpsRespectsBounds)
{
    Rng rng(5);
    for (double severity : {0.0, 0.5, 1.0}) {
        for (int i = 0; i < 100; ++i) {
            const int n = scaledOps(rng, severity, 2, 6);
            EXPECT_GE(n, 2);
            EXPECT_LE(n, 7); // +0.5 jitter rounds at most one above
        }
    }
}

TEST(Scenarios, EveryBuilderProducesRunnableScript)
{
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        TraceCorpus corpus;
        MachineConfig config;
        Machine machine(corpus, "m", config, 99);
        Script body = spec.build(machine, 0.5);
        EXPECT_FALSE(body.empty()) << spec.name;
        machine.spawnInstance(spec.name, spec.processFrame,
                              std::move(body), 0);
        machine.run();
        ASSERT_EQ(corpus.instances().size(), 1u) << spec.name;
        EXPECT_GT(corpus.instances()[0].duration(), 0) << spec.name;
    }
}

TEST(Generator, SmallCorpusIsDeterministic)
{
    CorpusSpec spec;
    spec.machines = 4;
    spec.seed = 123;

    auto serialize = [&] {
        const TraceCorpus corpus = generateCorpus(spec);
        std::ostringstream buffer;
        writeCorpus(corpus, buffer);
        return buffer.str();
    };
    EXPECT_EQ(serialize(), serialize());
}

TEST(Generator, ProducesInstancesOfRequestedScenarios)
{
    CorpusSpec spec;
    spec.machines = 6;
    spec.onlyScenarios = {"MenuDisplay"};
    const TraceCorpus corpus = generateCorpus(spec);

    EXPECT_EQ(corpus.streamCount(), 6u);
    EXPECT_GE(corpus.instances().size(),
              6u * spec.minInstancesPerMachine);
    const auto menu = corpus.findScenario("MenuDisplay");
    ASSERT_NE(menu, UINT32_MAX);
    for (const ScenarioInstance &inst : corpus.instances())
        EXPECT_EQ(inst.scenario, menu);
}

TEST(Generator, TracesAreStructurallySound)
{
    CorpusSpec spec;
    spec.machines = 5;
    const TraceCorpus corpus = generateCorpus(spec);
    const ValidationReport report = validateCorpus(corpus);

    EXPECT_EQ(report.strayUnwaits, 0u) << report.render();
    EXPECT_EQ(report.selfUnwaits, 0u) << report.render();
    EXPECT_EQ(report.stacklessEvents, 0u) << report.render();
    // Idle service threads legitimately end blocked; bound the rest.
    EXPECT_LE(report.unpairedWaits, 6u * corpus.streamCount())
        << report.render();
    EXPECT_GT(report.events, 100u);
}

TEST(Motivating, Figure1CaseExceeds800Ms)
{
    TraceCorpus corpus;
    const CaseHandles handles = buildMotivatingExample(corpus);

    const ScenarioInstance &inst =
        corpus.instances()[handles.instance];
    EXPECT_EQ(corpus.scenarioName(inst.scenario), "BrowserTabCreate");
    EXPECT_GT(inst.duration(), fromMs(800));
    EXPECT_LT(inst.duration(), fromMs(1200));
    EXPECT_EQ(inst.tid, handles.initiatingThread);
}

TEST(Motivating, Figure1PropagationChainIsVisibleInWaitGraph)
{
    TraceCorpus corpus;
    const CaseHandles handles = buildMotivatingExample(corpus);

    WaitGraphBuilder builder(corpus);
    const WaitGraph graph =
        builder.build(corpus.instances()[handles.instance]);
    ASSERT_FALSE(graph.empty());

    // Walk the graph and collect the driver signatures seen on wait
    // nodes: the full fv -> fs chain plus the se.sys leaf must appear.
    std::set<std::string> wait_modules;
    bool saw_disk = false;
    bool saw_se_running = false;
    const SymbolTable &sym = corpus.symbols();
    NameFilter drivers({"*.sys"});
    for (const auto &node : graph.nodes()) {
        const Event &e = node.event;
        if (e.stack == kNoCallstack)
            continue;
        if (e.type == EventType::Wait) {
            const FrameId top = sym.topMatchingFrame(e.stack, drivers);
            if (top != kNoFrame)
                wait_modules.insert(sym.componentName(top));
        } else if (e.type == EventType::HardwareService) {
            saw_disk = true;
        } else if (e.type == EventType::Running) {
            const FrameId top = sym.topMatchingFrame(e.stack, drivers);
            if (top != kNoFrame && sym.componentName(top) == "se.sys")
                saw_se_running = true;
        }
    }
    EXPECT_TRUE(wait_modules.count("fv.sys"));
    EXPECT_TRUE(wait_modules.count("fs.sys"));
    EXPECT_TRUE(wait_modules.count("se.sys"));
    EXPECT_TRUE(saw_disk);
    EXPECT_TRUE(saw_se_running);
}

TEST(Motivating, GraphicsHardFaultFreezesUiForSeconds)
{
    TraceCorpus corpus;
    const CaseHandles handles = buildGraphicsHardFaultCase(corpus);
    const ScenarioInstance &inst =
        corpus.instances()[handles.instance];
    EXPECT_EQ(corpus.scenarioName(inst.scenario), "AppNonResponsive");
    EXPECT_GT(inst.duration(), fromMs(4500));

    const std::string dump = dumpStream(corpus, handles.stream, 2000);
    EXPECT_NE(dump.find("graphics.sys"), std::string::npos);
    EXPECT_NE(dump.find("se.sys!ReadDecrypt"), std::string::npos);
}

} // namespace
} // namespace tracelens
