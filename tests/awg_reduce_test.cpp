/**
 * @file
 * Focused tests for the non-optimizable reduction rule: which root
 * waiting structures count as direct hardware time (pruned) versus
 * propagated time (kept).
 */

#include <gtest/gtest.h>

#include "src/awg/awg.h"
#include "src/simkernel/kernel.h"
#include "src/trace/builder.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens
{
namespace
{

NameFilter
drivers()
{
    return NameFilter({"*.sys"});
}

AggregatedWaitGraph
aggregate(const TraceCorpus &corpus, AwgOptions options = {})
{
    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    return AwgBuilder(corpus, drivers(), options).aggregate(graphs);
}

TEST(AwgReduce, DeviceReadiedWaitWithQueueMatesIsPruned)
{
    // Two disk requests: the second's wait window overlaps both
    // service intervals (queue-mates) — still pure hardware time.
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const DeviceId disk = sim.createDevice("DiskService");
    const FrameId f = sim.frame("stor.sys!Read");
    sim.spawnThread({actPush(f), actHardware(disk, fromMs(4)),
                     actPop()});
    const auto scn = sim.scenario("S");
    sim.spawnThread({actPush(f), actBeginInstance(scn),
                     actHardware(disk, fromMs(4)), actEndInstance(),
                     actPop()},
                    fromMs(1));
    sim.run();

    const AggregatedWaitGraph awg = aggregate(corpus);
    // Everything the instance waited on was direct hardware: pruned.
    EXPECT_TRUE(awg.empty());
    EXPECT_GT(awg.reducedCost(), 0);
}

TEST(AwgReduce, DpcReadiedWaitSurvives)
{
    // Network-style completion: the unwait carries a driver frame, so
    // the structure is kept (that time is attributable to the driver
    // stack and participates in patterns).
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const DeviceId net =
        sim.createDevice("NetworkService", "ndis.sys!ReceiveDpc");
    const FrameId f = sim.frame("net.sys!Send");
    const auto scn = sim.scenario("S");
    sim.spawnThread({actPush(f), actBeginInstance(scn),
                     actHardware(net, fromMs(5)), actEndInstance(),
                     actPop()});
    sim.run();

    const AggregatedWaitGraph awg = aggregate(corpus);
    ASSERT_EQ(awg.roots().size(), 1u);
    const auto &root = awg.node(awg.roots()[0]);
    EXPECT_EQ(root.key.status, AwgStatus::Waiting);
    EXPECT_EQ(corpus.symbols().frameName(root.key.secondary),
              "ndis.sys!ReceiveDpc");
    EXPECT_EQ(awg.reducedCost(), 0);
}

TEST(AwgReduce, LockWaitOverHardwareSurvives)
{
    // A contender blocked on a lock whose holder was doing hardware
    // I/O: the contender's time propagated through the lock and must
    // be kept even though hardware sits underneath.
    TraceCorpus corpus;
    SimKernel sim(corpus, "m");
    const DeviceId disk = sim.createDevice("DiskService");
    const LockId lock = sim.createLock();
    const FrameId f = sim.frame("stor.sys!Read");
    sim.spawnThread({actPush(f), actAcquire(lock),
                     actHardware(disk, fromMs(6)), actRelease(lock),
                     actPop()});
    const auto scn = sim.scenario("S");
    sim.spawnThread({actPush(f), actBeginInstance(scn),
                     actAcquire(lock), actRelease(lock),
                     actEndInstance(), actPop()},
                    fromMs(1));
    sim.run();

    const AggregatedWaitGraph awg = aggregate(corpus);
    ASSERT_FALSE(awg.empty());
    const auto &root = awg.node(awg.roots()[0]);
    // The root is the lock wait, signalled from the holder's driver
    // frame — propagation, not direct hardware.
    EXPECT_EQ(root.key.status, AwgStatus::Waiting);
    EXPECT_NE(root.key.secondary, kNoFrame);
}

TEST(AwgReduce, ChildlessDeviceReadiedWaitIsPruned)
{
    // Two instances wait on the same disk request window; the second
    // graph's wait finds its hardware event already claimed and ends
    // up childless — still direct hardware time.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId drv = b.stack({"app!x", "stor.sys!Read"});
    const CallstackId hw = b.stack({"DiskService"});
    b.wait(1, 0, drv);
    b.hardware(9, 0, 400, hw);
    b.unwait(9, 400, 1, hw);
    b.instance("S", 1, 0, 500);
    b.finish();

    const AggregatedWaitGraph awg = aggregate(corpus);
    EXPECT_TRUE(awg.empty());
    EXPECT_EQ(awg.reducedCost(), 400);
}

TEST(AwgReduce, ReducedCostFeedsNonOptimizableAccounting)
{
    // Mixed structure: one direct-hardware root and one propagated
    // root; reducedCost + totalRootCost partitions the aggregate.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId drv = b.stack({"app!x", "stor.sys!Read"});
    const CallstackId hw = b.stack({"DiskService"});
    const CallstackId fv = b.stack({"app!x", "fv.sys!Query"});

    b.wait(1, 0, drv); // direct hw wait, 300
    b.hardware(9, 0, 300, hw);
    b.unwait(9, 300, 1, hw);
    b.wait(1, 400, fv); // propagated wait, 200
    b.running(2, 450, 100, fv);
    b.unwait(2, 600, 1, fv);
    b.instance("S", 1, 0, 700);
    b.finish();

    const AggregatedWaitGraph awg = aggregate(corpus);
    EXPECT_EQ(awg.reducedCost(), 300);
    EXPECT_EQ(awg.totalRootCost(), 200);
}

} // namespace
} // namespace tracelens
