/**
 * @file
 * Protocol-v2 tests (src/server/wire.h, the Session negotiation in
 * src/server/client.cpp, and the frame path in src/server/server.cpp):
 * the transport-free codecs against hostile bytes, the cross-version
 * interop matrix, frame-level corruption (truncated headers, insane
 * lengths, bogus stream ids, dictionary desync), symbol-dictionary
 * round-trips on seeded-corpus results, flow-control chunking,
 * priority scheduling, and pipelining. Built into the "server" ctest
 * label next to server_test.cpp so all of it runs under both
 * sanitizers (ctest --preset asan-server / tsan-server).
 */

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/server/wire.h"
#include "src/trace/serialize.h"
#include "src/util/json.h"
#include "src/util/telemetry.h"
#include "src/util/varint.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace server
{
namespace
{

namespace fs = std::filesystem;

using std::chrono::steady_clock;

std::uint64_t
msSince(steady_clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            steady_clock::now() - start)
            .count());
}

// --------------------------------------------- codec tests (no server)

TEST(WireCodec, FrameHeaderRoundTripsAndRejectsShortBuffers)
{
    std::string out;
    wire::appendFrame(out, wire::FrameType::Response,
                      wire::kFlagEndStream | wire::kFlagError,
                      0x01234567u, "abc");
    ASSERT_EQ(out.size(), wire::kFrameHeaderBytes + 3);

    wire::FrameHeader header;
    ASSERT_TRUE(wire::decodeFrameHeader(out, header));
    EXPECT_EQ(header.length, 3u);
    EXPECT_EQ(header.type,
              static_cast<std::uint8_t>(wire::FrameType::Response));
    EXPECT_EQ(header.flags, wire::kFlagEndStream | wire::kFlagError);
    EXPECT_EQ(header.stream, 0x01234567u);
    EXPECT_EQ(out.substr(wire::kFrameHeaderBytes), "abc");

    for (std::size_t n = 0; n < wire::kFrameHeaderBytes; ++n) {
        wire::FrameHeader ignored;
        EXPECT_FALSE(wire::decodeFrameHeader(
            std::string_view(out).substr(0, n), ignored));
    }
}

TEST(WireCodec, ControlPayloadsRoundTrip)
{
    wire::Settings settings;
    settings.maxFramePayload = 512;
    settings.initialWindow = 1024;
    Expected<wire::Settings> back =
        wire::decodeSettings(wire::encodeSettings(settings));
    ASSERT_TRUE(back.ok()) << back.error().render();
    EXPECT_EQ(back.value().protocolVersion, kProtocolVersionV2);
    EXPECT_EQ(back.value().maxFramePayload, 512u);
    EXPECT_EQ(back.value().initialWindow, 1024u);
    EXPECT_FALSE(wire::decodeSettings("\x01").ok()); // truncated pair

    Expected<wire::GoawayInfo> goaway = wire::decodeGoaway(
        wire::encodeGoaway(4096, "dictionary desync"));
    ASSERT_TRUE(goaway.ok());
    EXPECT_EQ(goaway.value().offset, 4096u);
    EXPECT_EQ(goaway.value().message, "dictionary desync");

    Expected<std::uint64_t> credit =
        wire::decodeWindowUpdate(wire::encodeWindowUpdate(65536));
    ASSERT_TRUE(credit.ok());
    EXPECT_EQ(credit.value(), 65536u);
    EXPECT_FALSE(wire::decodeWindowUpdate("").ok());
    std::string zero;
    putVarint(zero, 0);
    EXPECT_FALSE(wire::decodeWindowUpdate(zero).ok());
}

TEST(WireCodec, SymbolDictShrinksRepeatedSymbolsAndRoundTrips)
{
    // A result-shaped document heavy on module!Function strings — the
    // shape the dictionary exists for.
    JsonValue doc = JsonValue::makeObject();
    JsonValue frames = JsonValue::makeArray();
    const char *symbols[] = {
        "ntoskrnl.exe!KeWaitForSingleObject",
        "storqosflt.sys!QosFilterCompletion",
        "ndis.sys!NdisMIndicateReceiveNetBufferLists",
        "app.exe!BrowserTab::Create",
    };
    for (int rep = 0; rep < 6; ++rep)
        for (const char *symbol : symbols)
            frames.push(JsonValue(symbol));
    doc.set("frames", frames);
    doc.set("scenario", JsonValue("BrowserTabCreate"));
    const std::string json = doc.render();

    wire::SymbolDict encoder, decoder;
    std::string first, second;
    encoder.encode(json, first);
    Expected<std::string> back1 = decoder.decode(first);
    ASSERT_TRUE(back1.ok()) << back1.error().render();
    EXPECT_EQ(back1.value(), json);

    // Second transit of the same document: every symbol is a table
    // reference now, so the encoding collapses.
    encoder.encode(json, second);
    Expected<std::string> back2 = decoder.decode(second);
    ASSERT_TRUE(back2.ok()) << back2.error().render();
    EXPECT_EQ(back2.value(), json);
    EXPECT_LT(second.size(), first.size());
    EXPECT_LT(second.size(), json.size() / 3);
}

TEST(WireCodec, SymbolDictRejectsHostileBytes)
{
    // Reference past the table.
    std::string bogusRef;
    bogusRef.push_back('\x01');
    putVarint(bogusRef, 1u << 20);
    wire::SymbolDict dict1;
    EXPECT_FALSE(dict1.decode(bogusRef).ok());

    // Insert whose length prefix outruns the payload.
    std::string truncated;
    truncated.push_back('\x02');
    putVarint(truncated, 100);
    truncated += "abc";
    wire::SymbolDict dict2;
    EXPECT_FALSE(dict2.decode(truncated).ok());

    // Instruction byte with nothing after it.
    wire::SymbolDict dict3;
    EXPECT_FALSE(dict3.decode("\x01").ok());
}

// ----------------------------------------------------- server fixture

/** Self-cleaning scratch dir (pid-suffixed: binaries run under -j). */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(fs::temp_directory_path() /
                ("tracelens_proto2_test_" +
                 std::to_string(::getpid()) + "_" + name))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }

    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

/** One decoded raw frame. */
struct RawFrame
{
    wire::FrameHeader header;
    std::string payload;
};

/** A RawConn that completed the v2 preface + SETTINGS exchange, with
 *  mirror dictionaries so tests can speak (and corrupt) v2 by hand. */
struct RawV2
{
    RawConn conn;
    wire::Settings server;
    wire::SymbolDict sendDict; //!< mirrors the server's receive table
    wire::SymbolDict recvDict; //!< mirrors the server's send table
};

/** A fully reassembled response from raw frames. */
struct RawResponse
{
    bool isError = false;
    std::uint64_t frames = 0;
    JsonValue body; //!< result object, or the error object.
};

class Protocol2Test : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        scratch_ = std::make_unique<ScratchDir>(
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
        CorpusSpec spec;
        spec.machines = 8;
        spec.seed = 1337;
        corpusPath_ = (scratch_->path() / "corpus.tlc").string();
        writeCorpusFile(generateCorpus(spec), corpusPath_);
    }

    void
    startServer(ServerConfig config = {})
    {
        config.host = "127.0.0.1";
        config.port = 0;
        config.enableTestMethods = true;
        server_ = std::make_unique<Server>(config);
        Expected<std::uint16_t> port = server_->start();
        ASSERT_TRUE(port.ok()) << port.error().render();
        port_ = port.value();
    }

    Session
    connect(SessionOptions options = {})
    {
        Expected<Session> session =
            Session::connect("127.0.0.1", port_, options);
        EXPECT_TRUE(session.ok())
            << (session.ok() ? "" : session.error().render());
        return session.ok() ? std::move(session.value()) : Session();
    }

    RawConn
    connectRaw()
    {
        Expected<RawConn> conn = RawConn::connect(
            "127.0.0.1", port_, std::chrono::milliseconds(30000));
        EXPECT_TRUE(conn.ok());
        return std::move(conn.value());
    }

    std::optional<RawFrame>
    readFrame(RawConn &conn)
    {
        Expected<std::string> header =
            conn.readExact(wire::kFrameHeaderBytes);
        if (!header.ok()) {
            ADD_FAILURE() << "frame header: "
                          << header.error().render();
            return std::nullopt;
        }
        RawFrame frame;
        if (!wire::decodeFrameHeader(header.value(), frame.header)) {
            ADD_FAILURE() << "undecodable frame header";
            return std::nullopt;
        }
        Expected<std::string> payload =
            conn.readExact(frame.header.length);
        if (!payload.ok()) {
            ADD_FAILURE() << "frame payload: "
                          << payload.error().render();
            return std::nullopt;
        }
        frame.payload = std::move(payload.value());
        return frame;
    }

    /** Preface + SETTINGS exchange by hand. @p tracing advertises
     *  trace-context propagation — both sides must for the request
     *  payloads to carry the span-context field. */
    std::optional<RawV2>
    handshake(bool tracing = false)
    {
        RawV2 v2;
        v2.conn = connectRaw();
        if (!v2.conn.sendRaw(std::string(wire::kPreface) + "\n")) {
            ADD_FAILURE() << "preface send failed";
            return std::nullopt;
        }
        std::optional<RawFrame> settings = readFrame(v2.conn);
        if (!settings)
            return std::nullopt;
        EXPECT_EQ(settings->header.type,
                  static_cast<std::uint8_t>(wire::FrameType::Settings));
        EXPECT_EQ(settings->header.stream, 0u);
        Expected<wire::Settings> decoded =
            wire::decodeSettings(settings->payload);
        if (!decoded.ok()) {
            ADD_FAILURE() << decoded.error().render();
            return std::nullopt;
        }
        v2.server = decoded.value();
        EXPECT_EQ(v2.server.protocolVersion, kProtocolVersionV2);
        EXPECT_TRUE(v2.server.tracing); // current servers advertise
        wire::Settings mine;
        mine.tracing = tracing;
        std::string out;
        wire::appendFrame(out, wire::FrameType::Settings, 0, 0,
                          wire::encodeSettings(mine));
        EXPECT_TRUE(v2.conn.sendRaw(out));
        return v2;
    }

    /** A request frame whose span-context field is @p ctx verbatim
     *  (length byte included) — the corruption tests' raw entry. */
    bool
    sendRequestFrameWithRawContext(RawV2 &v2, std::uint32_t stream,
                                   Method method,
                                   const JsonValue &params,
                                   const std::string &ctx)
    {
        std::string payload;
        payload.push_back(
            static_cast<char>(methodWireByte(method)));
        payload.push_back(static_cast<char>(kPriorityNormal));
        putVarint(payload, 0); // deadline
        payload += ctx;
        v2.sendDict.encode(params.render(), payload);
        std::string out;
        wire::appendFrame(out, wire::FrameType::Request,
                          wire::kFlagEndStream, stream, payload);
        return v2.conn.sendRaw(out);
    }

    bool
    sendRequestFrame(RawV2 &v2, std::uint32_t stream, Method method,
                     const JsonValue &params,
                     std::uint8_t priority = kPriorityNormal)
    {
        const std::string payload = wire::encodeRequestPayload(
            method, priority, 0, params.render(), v2.sendDict);
        std::string out;
        wire::appendFrame(out, wire::FrameType::Request,
                          wire::kFlagEndStream, stream, payload);
        return v2.conn.sendRaw(out);
    }

    /** Reassemble the response on @p stream (other frame types are
     *  skipped; a stray Response on another stream is a failure —
     *  these tests keep one stream in flight at a time so the mirror
     *  dictionary stays in lockstep). */
    std::optional<RawResponse>
    readResponse(RawV2 &v2, std::uint32_t stream)
    {
        std::string accum;
        RawResponse response;
        for (;;) {
            std::optional<RawFrame> frame = readFrame(v2.conn);
            if (!frame)
                return std::nullopt;
            if (frame->header.type !=
                static_cast<std::uint8_t>(wire::FrameType::Response))
                continue;
            if (frame->header.stream != stream) {
                ADD_FAILURE() << "response on unexpected stream "
                              << frame->header.stream;
                return std::nullopt;
            }
            ++response.frames;
            accum += frame->payload;
            response.isError = (frame->header.flags &
                                wire::kFlagError) != 0;
            if ((frame->header.flags & wire::kFlagEndStream) != 0)
                break;
            std::string credit;
            wire::appendFrame(
                credit, wire::FrameType::WindowUpdate, 0, stream,
                wire::encodeWindowUpdate(frame->payload.size()));
            EXPECT_TRUE(v2.conn.sendRaw(credit));
        }
        Expected<std::string> json = v2.recvDict.decode(accum);
        if (!json.ok()) {
            ADD_FAILURE() << "response dict: "
                          << json.error().render();
            return std::nullopt;
        }
        Expected<JsonValue> parsed = JsonValue::parse(json.value());
        if (!parsed.ok()) {
            ADD_FAILURE() << "response json: "
                          << parsed.error().render();
            return std::nullopt;
        }
        response.body = std::move(parsed.value());
        return response;
    }

    /** Read frames until GOAWAY; the connection must then be closed
     *  by the server (reads hit EOF). */
    void
    expectGoaway(RawConn &conn, const std::string &needle)
    {
        for (int hops = 0; hops < 8; ++hops) {
            std::optional<RawFrame> frame = readFrame(conn);
            if (!frame)
                return;
            if (frame->header.type !=
                static_cast<std::uint8_t>(wire::FrameType::Goaway))
                continue;
            EXPECT_EQ(frame->header.stream, 0u);
            Expected<wire::GoawayInfo> info =
                wire::decodeGoaway(frame->payload);
            ASSERT_TRUE(info.ok()) << info.error().render();
            EXPECT_NE(info.value().message.find(needle),
                      std::string::npos)
                << "goaway message: " << info.value().message;
            // Fatal means fatal: nothing more arrives.
            EXPECT_FALSE(conn.readExact(1).ok());
            return;
        }
        ADD_FAILURE() << "no goaway frame arrived";
    }

    AnalyzeRequest
    analyzeRequest(std::size_t top = 5) const
    {
        AnalyzeRequest request;
        request.corpus = corpusPath_;
        request.scenario = "BrowserTabCreate";
        request.top = top;
        return request;
    }

    void
    TearDown() override
    {
        if (server_ != nullptr && !server_->stopped()) {
            server_->requestStop();
            server_->wait();
        }
        if (server_ != nullptr) {
            EXPECT_EQ(server_->registry().stats().activeHandles, 0u);
        }
        server_.reset();
        scratch_.reset();
    }

    std::unique_ptr<ScratchDir> scratch_;
    std::string corpusPath_;
    std::unique_ptr<Server> server_;
    std::uint16_t port_ = 0;
};

// ------------------------------------------------------ interop matrix

TEST_F(Protocol2Test, InteropMatrixNegotiatesEveryCell)
{
    startServer();

    // Auto against a current server lands on v2.
    Session autoSession = connect();
    EXPECT_EQ(autoSession.protocolVersion(), kProtocolVersionV2);
    Expected<Response> health = autoSession.health();
    ASSERT_TRUE(health.ok()) << health.error().render();
    EXPECT_TRUE(health.value().ok);

    // Explicit v1 never attempts the upgrade and still works.
    SessionOptions v1Options;
    v1Options.prefer = ProtocolPreference::V1;
    Session v1Session = connect(v1Options);
    EXPECT_EQ(v1Session.protocolVersion(), kProtocolVersionV1);
    Expected<Response> v1Health = v1Session.health();
    ASSERT_TRUE(v1Health.ok()) << v1Health.error().render();
    EXPECT_TRUE(v1Health.value().ok);

    // Strict v2 succeeds against a v2 server.
    SessionOptions v2Options;
    v2Options.prefer = ProtocolPreference::V2;
    Session v2Session = connect(v2Options);
    EXPECT_EQ(v2Session.protocolVersion(), kProtocolVersionV2);

    EXPECT_GE(server_->stats().v2Connections, 2u);
}

TEST_F(Protocol2Test, AutoFallsBackToV1AgainstAnOldServer)
{
    ServerConfig config;
    config.enableProtocolV2 = false; // the interop matrix's old server
    startServer(config);

    Session session = connect();
    EXPECT_EQ(session.protocolVersion(), kProtocolVersionV1);
    Expected<Response> response = session.analyze(analyzeRequest());
    ASSERT_TRUE(response.ok()) << response.error().render();
    EXPECT_TRUE(response.value().ok);

    // Strict v2 against the same server must fail loudly, not
    // silently downgrade.
    SessionOptions strict;
    strict.prefer = ProtocolPreference::V2;
    Expected<Session> refused =
        Session::connect("127.0.0.1", port_, strict);
    EXPECT_FALSE(refused.ok());
    EXPECT_EQ(server_->stats().v2Connections, 0u);
}

TEST_F(Protocol2Test, ReportsAreByteIdenticalAcrossProtocols)
{
    startServer();
    SessionOptions v1Options;
    v1Options.prefer = ProtocolPreference::V1;
    Session v1 = connect(v1Options);
    Session v2 = connect();
    ASSERT_EQ(v2.protocolVersion(), kProtocolVersionV2);

    ImpactRequest impact;
    impact.corpus = corpusPath_;

    // Repeat the sequence: rep 2+ exercises the dictionary's warm
    // path (references instead of inserts) on real seeded-corpus
    // symbol strings, and every rep must still decode to the exact
    // v1 bytes.
    for (int rep = 0; rep < 3; ++rep) {
        Expected<Response> a1 = v1.analyze(analyzeRequest(20));
        Expected<Response> a2 = v2.analyze(analyzeRequest(20));
        ASSERT_TRUE(a1.ok() && a2.ok());
        ASSERT_TRUE(a1.value().ok && a2.value().ok);
        EXPECT_EQ(a1.value().result.render(),
                  a2.value().result.render());

        Expected<Response> i1 = v1.impact(impact);
        Expected<Response> i2 = v2.impact(impact);
        ASSERT_TRUE(i1.ok() && i2.ok());
        ASSERT_TRUE(i1.value().ok && i2.value().ok);
        EXPECT_EQ(i1.value().result.render(),
                  i2.value().result.render());
    }

    // Same answers, fewer bytes: the dictionary has to pay for its
    // complexity on exactly this symbol-heavy warm sequence.
    EXPECT_LT(v2.wireStats().bytesReceived,
              v1.wireStats().bytesReceived);
    EXPECT_GT(v2.wireStats().framesReceived, 0u);
}

// -------------------------------------------------- frame corruption

TEST_F(Protocol2Test, TruncatedFrameHeaderAtEofDrawsGoaway)
{
    startServer();
    std::optional<RawV2> v2 = handshake();
    ASSERT_TRUE(v2.has_value());

    // Three bytes of a header, then half-close: the server can never
    // complete the frame.
    ASSERT_TRUE(v2->conn.sendRaw(std::string("\x03\x00\x00", 3)));
    v2->conn.shutdownWrite();
    expectGoaway(v2->conn, "mid-frame");
    EXPECT_GE(server_->stats().protocolErrors, 1u);
}

TEST_F(Protocol2Test, InsaneFrameLengthDrawsGoaway)
{
    startServer();
    std::optional<RawV2> v2 = handshake();
    ASSERT_TRUE(v2.has_value());

    // A hand-built header claiming a 2 GiB payload: not skippable,
    // the stream itself is desynchronized.
    const std::uint32_t length = 1u << 31;
    std::string header;
    for (int i = 0; i < 4; ++i)
        header.push_back(
            static_cast<char>((length >> (8 * i)) & 0xff));
    header.push_back(
        static_cast<char>(wire::FrameType::Request)); // type
    header.push_back(static_cast<char>(wire::kFlagEndStream));
    header += std::string("\x01\x00\x00\x00", 4); // stream 1
    ASSERT_TRUE(v2->conn.sendRaw(header));
    expectGoaway(v2->conn, "sane limit");
}

TEST_F(Protocol2Test, BogusStreamIdsDrawGoaway)
{
    startServer();

    // Even stream id: reserved for the server, a client using it has
    // lost the plot.
    std::optional<RawV2> even = handshake();
    ASSERT_TRUE(even.has_value());
    ASSERT_TRUE(sendRequestFrame(*even, 2, Method::Health,
                                 JsonValue::makeObject()));
    expectGoaway(even->conn, "bogus request stream id");

    // Non-increasing id after a legitimate exchange.
    std::optional<RawV2> stale = handshake();
    ASSERT_TRUE(stale.has_value());
    ASSERT_TRUE(sendRequestFrame(*stale, 5, Method::Health,
                                 JsonValue::makeObject()));
    std::optional<RawResponse> ok = readResponse(*stale, 5);
    ASSERT_TRUE(ok.has_value());
    EXPECT_FALSE(ok->isError);
    ASSERT_TRUE(sendRequestFrame(*stale, 3, Method::Health,
                                 JsonValue::makeObject()));
    expectGoaway(stale->conn, "bogus request stream id");
}

TEST_F(Protocol2Test, DictionaryDesyncAnswersOnStreamThenGoaway)
{
    startServer();
    std::optional<RawV2> v2 = handshake();
    ASSERT_TRUE(v2.has_value());

    // A request whose params reference dictionary entry 200000 — far
    // past anything inserted. The server reports the offset on the
    // stream, then tears the connection down because its receive
    // table can no longer be trusted to match ours.
    std::string payload;
    payload.push_back(
        static_cast<char>(methodWireByte(Method::Analyze)));
    payload.push_back(static_cast<char>(kPriorityNormal));
    putVarint(payload, 0); // deadline
    payload.push_back('\x01');
    putVarint(payload, 200000);
    std::string frame;
    wire::appendFrame(frame, wire::FrameType::Request,
                      wire::kFlagEndStream, 1, payload);
    ASSERT_TRUE(v2->conn.sendRaw(frame));

    std::optional<RawResponse> response = readResponse(*v2, 1);
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(response->isError);
    const ErrorInfo error = parseErrorObject(response->body);
    EXPECT_EQ(error.code, ErrorCode::ProtocolError);
    EXPECT_GT(error.offset, 0u);
    expectGoaway(v2->conn, "undecodable");
    EXPECT_GE(server_->stats().protocolErrors, 1u);
}

TEST_F(Protocol2Test, OversizedRequestFrameIsSkippedRecoverably)
{
    ServerConfig config;
    config.maxLineBytes = 512;
    startServer(config);
    std::optional<RawV2> v2 = handshake();
    ASSERT_TRUE(v2.has_value());

    // Sanely framed but over the request limit. All digits — no
    // dictionary instructions — so neither side's table moves and the
    // connection stays usable after the skip.
    std::string payload;
    payload.push_back(
        static_cast<char>(methodWireByte(Method::Analyze)));
    payload.push_back(static_cast<char>(kPriorityNormal));
    putVarint(payload, 0);
    payload += "{\"n\":" + std::string(2000, '1') + "}";
    std::string frame;
    wire::appendFrame(frame, wire::FrameType::Request,
                      wire::kFlagEndStream, 1, payload);
    ASSERT_TRUE(v2->conn.sendRaw(frame));

    std::optional<RawResponse> rejected = readResponse(*v2, 1);
    ASSERT_TRUE(rejected.has_value());
    EXPECT_TRUE(rejected->isError);
    const ErrorInfo error = parseErrorObject(rejected->body);
    EXPECT_EQ(error.code, ErrorCode::ProtocolError);
    EXPECT_NE(error.message.find("exceeds"), std::string::npos);

    // Same connection, next stream: a well-formed request succeeds.
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpusPath_));
    ASSERT_TRUE(sendRequestFrame(*v2, 3, Method::Ingest, params));
    std::optional<RawResponse> accepted = readResponse(*v2, 3);
    ASSERT_TRUE(accepted.has_value());
    EXPECT_FALSE(accepted->isError);
    EXPECT_TRUE(accepted->body.isObject());
    EXPECT_GE(server_->stats().protocolErrors, 1u);
}

// --------------------------------------------- span-context corruption

TEST_F(Protocol2Test, EscapingSpanContextLengthIsRejectedRecoverably)
{
    startServer();
    std::optional<RawV2> v2 = handshake(/*tracing=*/true);
    ASSERT_TRUE(v2.has_value());

    // Length byte claiming 200 bytes of context — over the 64-byte
    // cap. The length cannot locate the params, so this request (and
    // only this request) is rejected; nothing touched either
    // dictionary, so the connection stays usable.
    std::string oversized;
    oversized.push_back(static_cast<char>(200));
    oversized += std::string(200, '\x00');
    {
        // Params appended raw (no dict instructions) so the mirror
        // table does not advance on a request the server never
        // dict-decodes.
        std::string payload;
        payload.push_back(
            static_cast<char>(methodWireByte(Method::Health)));
        payload.push_back(static_cast<char>(kPriorityNormal));
        putVarint(payload, 0);
        payload += oversized;
        std::string frame;
        wire::appendFrame(frame, wire::FrameType::Request,
                          wire::kFlagEndStream, 1, payload);
        ASSERT_TRUE(v2->conn.sendRaw(frame));
    }
    std::optional<RawResponse> rejected = readResponse(*v2, 1);
    ASSERT_TRUE(rejected.has_value());
    EXPECT_TRUE(rejected->isError);
    const ErrorInfo error = parseErrorObject(rejected->body);
    EXPECT_EQ(error.code, ErrorCode::ProtocolError);
    EXPECT_NE(error.message.find("span-context"), std::string::npos);

    // A length byte that outruns the frame itself takes the same
    // per-request path.
    {
        std::string payload;
        payload.push_back(
            static_cast<char>(methodWireByte(Method::Health)));
        payload.push_back(static_cast<char>(kPriorityNormal));
        putVarint(payload, 0);
        payload.push_back(static_cast<char>(50));
        payload += "ab"; // only 2 of the claimed 50 bytes exist
        std::string frame;
        wire::appendFrame(frame, wire::FrameType::Request,
                          wire::kFlagEndStream, 3, payload);
        ASSERT_TRUE(v2->conn.sendRaw(frame));
    }
    std::optional<RawResponse> truncated = readResponse(*v2, 3);
    ASSERT_TRUE(truncated.has_value());
    EXPECT_TRUE(truncated->isError);
    EXPECT_EQ(parseErrorObject(truncated->body).code,
              ErrorCode::ProtocolError);

    // Same connection, next stream: a request with an empty context
    // field succeeds — no GOAWAY was drawn.
    ASSERT_TRUE(sendRequestFrameWithRawContext(
        *v2, 5, Method::Health, JsonValue::makeObject(),
        std::string(1, '\x00')));
    std::optional<RawResponse> healthy = readResponse(*v2, 5);
    ASSERT_TRUE(healthy.has_value());
    EXPECT_FALSE(healthy->isError);
    EXPECT_GE(server_->stats().protocolErrors, 2u);
}

TEST_F(Protocol2Test, MalformedSpanContextContentIsDroppedSilently)
{
    startServer();
    std::optional<RawV2> v2 = handshake(/*tracing=*/true);
    ASSERT_TRUE(v2.has_value());

    // Content that cannot parse (an unterminated varint): the length
    // still locates the params, so the request proceeds without a
    // context instead of failing.
    std::string garbage;
    garbage.push_back(static_cast<char>(3));
    garbage += "\xff\xff\xff";
    ASSERT_TRUE(sendRequestFrameWithRawContext(
        *v2, 1, Method::Health, JsonValue::makeObject(), garbage));
    std::optional<RawResponse> first = readResponse(*v2, 1);
    ASSERT_TRUE(first.has_value());
    EXPECT_FALSE(first->isError);

    // A zero trace id means "no context" — also dropped, also fine.
    std::string zeroId;
    {
        std::string ctx;
        putVarint(ctx, 0); // trace id 0
        putVarint(ctx, 77);
        ctx.push_back('\x01');
        zeroId.push_back(static_cast<char>(ctx.size()));
        zeroId += ctx;
    }
    ASSERT_TRUE(sendRequestFrameWithRawContext(
        *v2, 3, Method::Health, JsonValue::makeObject(), zeroId));
    std::optional<RawResponse> second = readResponse(*v2, 3);
    ASSERT_TRUE(second.has_value());
    EXPECT_FALSE(second->isError);
    EXPECT_EQ(server_->stats().protocolErrors, 0u);
}

TEST_F(Protocol2Test, SamplingFlagFuzzAndTrailingBytesAreTolerated)
{
    ServerConfig config;
    startServer(config);
    Telemetry::setEnabled(true);
    Telemetry::reset();
    std::optional<RawV2> v2 = handshake(/*tracing=*/true);
    ASSERT_TRUE(v2.has_value());

    // Flag byte 0x7f (any nonzero means sampled) and trailing bytes
    // past the flag (a future revision's extension) must both be
    // tolerated, and the trace id must still reach the server's
    // request span.
    const std::uint64_t traceId = 0x5a5a5a5a5a5a5a5aull;
    std::string ctx;
    putVarint(ctx, traceId);
    putVarint(ctx, 0x1234);
    ctx.push_back('\x7f');
    ctx += "future-extension";
    std::string field;
    field.push_back(static_cast<char>(ctx.size()));
    field += ctx;

    JsonValue params = JsonValue::makeObject();
    params.set("ms", JsonValue(1));
    ASSERT_TRUE(sendRequestFrameWithRawContext(*v2, 1, Method::Sleep,
                                               params, field));
    std::optional<RawResponse> response = readResponse(*v2, 1);
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(response->isError);

    // The server runs in-process, so its spans are directly visible.
    // The request span commits only after the response is sent, so
    // poll briefly instead of racing the worker thread.
    bool found = false;
    const auto pollStart = steady_clock::now();
    while (!found && msSince(pollStart) < 2000) {
        for (const SpanSnapshot &span : Telemetry::snapshotSpans()) {
            if (span.name == "server.request" &&
                span.traceId == traceId) {
                EXPECT_EQ(span.parentSpanId, 0x1234u);
                found = true;
            }
        }
        if (!found)
            ::usleep(10'000);
    }
    EXPECT_TRUE(found) << "no server.request span carried the "
                          "propagated trace id";
    Telemetry::setEnabled(false);
    Telemetry::reset();
}

TEST_F(Protocol2Test, NoTracingPeerInteropsWithoutContextField)
{
    startServer();

    // Typed session that opted out: negotiation must land on "no
    // tracing" against a server that advertises it, and requests —
    // which then carry no span-context field — must work.
    SessionOptions quiet;
    quiet.tracing = false;
    Session session = connect(quiet);
    ASSERT_EQ(session.protocolVersion(), kProtocolVersionV2);
    EXPECT_FALSE(session.tracingNegotiated());
    Expected<Response> health = session.health();
    ASSERT_TRUE(health.ok()) << health.error().render();
    EXPECT_TRUE(health.value().ok);

    // The default session negotiates tracing against the same server.
    Session tracing = connect();
    EXPECT_TRUE(tracing.tracingNegotiated());
    Expected<Response> traced = tracing.health();
    ASSERT_TRUE(traced.ok()) << traced.error().render();
    EXPECT_TRUE(traced.value().ok);
    EXPECT_EQ(server_->stats().protocolErrors, 0u);
}

TEST_F(Protocol2Test, SessionCallOptionsPropagateTraceContext)
{
    startServer();
    Telemetry::setEnabled(true);
    Telemetry::reset();

    Session session = connect();
    ASSERT_TRUE(session.tracingNegotiated());
    CallOptions options;
    options.traceContext.traceId = 0xfeedfacecafef00dull;
    options.traceContext.parentSpanId = 0xbeef;
    options.traceContext.sampled = true;
    SleepRequest nap;
    nap.ms = 1;
    Expected<Response> response =
        session.call(Method::Sleep, nap.toParams(), options);
    ASSERT_TRUE(response.ok()) << response.error().render();
    EXPECT_TRUE(response.value().ok);

    // The propagated context must round-trip through the server's
    // span buffer — checked over the wire via `telemetry_pull`, the
    // same pull the coordinator's stitcher uses. The request span
    // commits only after the response is sent, so poll briefly.
    bool found = false;
    const auto pollStart = steady_clock::now();
    while (!found && msSince(pollStart) < 2000) {
        Expected<Response> pulled = session.call(
            Method::TelemetryPull, JsonValue::makeObject(), {});
        ASSERT_TRUE(pulled.ok()) << pulled.error().render();
        ASSERT_TRUE(pulled.value().ok);
        const NodeSpans node = parseNodeSpans(pulled.value().result);
        EXPECT_NE(node.node.find("worker"), std::string::npos);
        for (const SpanSnapshot &span : node.spans) {
            if (span.traceId == 0xfeedfacecafef00dull &&
                span.name == "server.request") {
                EXPECT_EQ(span.parentSpanId, 0xbeefu);
                EXPECT_NE(span.spanId, 0u);
                found = true;
            }
        }
        if (!found)
            ::usleep(10'000);
    }
    EXPECT_TRUE(found)
        << "telemetry_pull returned no span with the sent trace id";
    Telemetry::setEnabled(false);
    Telemetry::reset();
}

// ------------------------------------- flow control and multiplexing

TEST_F(Protocol2Test, TinyWindowsChunkResponsesWithoutChangingThem)
{
    startServer();
    Session roomy = connect();
    Expected<Response> expected = roomy.analyze(analyzeRequest(50));
    ASSERT_TRUE(expected.ok()) << expected.error().render();
    ASSERT_TRUE(expected.value().ok);

    // Small enough that even this corpus's modest analyze result must
    // span several frames and outrun the initial window.
    SessionOptions tiny;
    tiny.initialWindow = 128;
    tiny.maxFramePayload = 64;
    Session narrow = connect(tiny);
    ASSERT_EQ(narrow.protocolVersion(), kProtocolVersionV2);
    Expected<Response> got = narrow.analyze(analyzeRequest(50));
    ASSERT_TRUE(got.ok()) << got.error().render();
    ASSERT_TRUE(got.value().ok);

    // Byte-identical result, many more frames: the response was
    // chunked to the advertised payload limit and re-credited window
    // by window.
    EXPECT_EQ(got.value().result.render(),
              expected.value().result.render());
    EXPECT_GT(narrow.wireStats().framesReceived,
              roomy.wireStats().framesReceived);
    EXPECT_GT(narrow.wireStats().framesSent,
              roomy.wireStats().framesSent); // window updates
}

TEST_F(Protocol2Test, InteractiveRequestsOvertakeQueuedBulk)
{
    ServerConfig config;
    config.workers = 1; // force a queue so scheduling order shows
    startServer(config);
    Session session = connect();
    ASSERT_EQ(session.protocolVersion(), kProtocolVersionV2);

    SleepRequest blocker;
    blocker.ms = 100;
    Expected<std::uint64_t> blockerHandle =
        session.send(Method::Sleep, blocker.toParams(), {});
    ASSERT_TRUE(blockerHandle.ok());

    CallOptions bulk;
    bulk.priority = kPriorityBulk;
    SleepRequest slow;
    slow.ms = 400;
    std::vector<std::uint64_t> bulkHandles;
    for (int i = 0; i < 3; ++i) {
        Expected<std::uint64_t> handle =
            session.send(Method::Sleep, slow.toParams(), bulk);
        ASSERT_TRUE(handle.ok());
        bulkHandles.push_back(handle.value());
    }

    CallOptions interactive;
    interactive.priority = kPriorityInteractive;
    SleepRequest fast;
    fast.ms = 1;
    Expected<std::uint64_t> fastHandle =
        session.send(Method::Sleep, fast.toParams(), interactive);
    ASSERT_TRUE(fastHandle.ok());

    // The interactive request was queued *behind* three 400 ms bulk
    // requests; the priority scheduler must run it right after the
    // 100 ms blocker. FIFO would take >= 1.3 s.
    const auto start = steady_clock::now();
    Expected<Response> response = session.wait(fastHandle.value());
    const std::uint64_t elapsed = msSince(start);
    ASSERT_TRUE(response.ok()) << response.error().render();
    EXPECT_TRUE(response.value().ok);
    EXPECT_LT(elapsed, 900u);

    for (std::uint64_t handle : bulkHandles) {
        Expected<Response> drained = session.wait(handle);
        ASSERT_TRUE(drained.ok());
        EXPECT_TRUE(drained.value().ok);
    }
    Expected<Response> first = session.wait(blockerHandle.value());
    ASSERT_TRUE(first.ok());
    EXPECT_TRUE(first.value().ok);
}

TEST_F(Protocol2Test, PipelinedStatsIsNotBlockedBehindSlowWork)
{
    startServer();
    Session session = connect();
    ASSERT_EQ(session.protocolVersion(), kProtocolVersionV2);

    SleepRequest nap;
    nap.ms = 500;
    Expected<std::uint64_t> napHandle =
        session.send(Method::Sleep, nap.toParams(), {});
    ASSERT_TRUE(napHandle.ok());

    // stats answers on its own stream while the sleep is still
    // occupying a worker — no head-of-line blocking.
    const auto start = steady_clock::now();
    Expected<Response> stats = session.stats();
    const std::uint64_t elapsed = msSince(start);
    ASSERT_TRUE(stats.ok()) << stats.error().render();
    EXPECT_TRUE(stats.value().ok);
    EXPECT_LT(elapsed, 250u);

    Expected<Response> napped = session.wait(napHandle.value());
    ASSERT_TRUE(napped.ok()) << napped.error().render();
    EXPECT_TRUE(napped.value().ok);
    EXPECT_NE(napped.value().result.render().find("slept_ms"),
              std::string::npos);
}

} // namespace
} // namespace server
} // namespace tracelens
