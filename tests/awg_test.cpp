/**
 * @file
 * Unit tests for Aggregated Wait Graph construction (Algorithm 1).
 */

#include <gtest/gtest.h>

#include "src/awg/awg.h"
#include "src/trace/builder.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens
{
namespace
{

/** Build all wait graphs of a corpus. */
std::vector<WaitGraph>
graphsOf(const TraceCorpus &corpus)
{
    return WaitGraphBuilder(corpus).buildAll();
}

NameFilter
drivers()
{
    return NameFilter({"*.sys"});
}

TEST(Awg, WaitUnwaitPairBecomesWaitingNode)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId wstack = b.stack({"app!U", "fv.sys!Query"});
    const CallstackId ustack = b.stack({"app!W", "fs.sys!Release"});
    b.wait(1, 100, wstack);
    b.unwait(2, 600, 1, ustack);
    b.instance("S", 1, 0, 700);
    b.finish();

    const auto graphs = graphsOf(corpus);
    AwgBuilder builder(corpus, drivers());
    const AggregatedWaitGraph awg = builder.aggregate(graphs);

    ASSERT_EQ(awg.roots().size(), 1u);
    const auto &n = awg.node(awg.roots()[0]);
    EXPECT_EQ(n.key.status, AwgStatus::Waiting);
    EXPECT_EQ(corpus.symbols().frameName(n.key.primary),
              "fv.sys!Query");
    EXPECT_EQ(corpus.symbols().frameName(n.key.secondary),
              "fs.sys!Release");
    EXPECT_EQ(n.cost, 500);
    EXPECT_EQ(n.count, 1u);
}

TEST(Awg, IrrelevantRootPromotesChildren)
{
    // Root wait has no driver frames (and is unwaited from a non-driver
    // stack); its child driver wait must be promoted to an AWG root.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId app = b.stack({"app!U", "kernel!Wait"});
    const CallstackId drv = b.stack({"app!W", "fs.sys!Acquire"});
    b.wait(1, 100, app);
    b.wait(2, 150, drv);
    b.unwait(3, 500, 2, drv);
    b.unwait(2, 600, 1, app);
    b.instance("S", 1, 0, 700);
    b.finish();

    const auto graphs = graphsOf(corpus);
    AwgBuilder builder(corpus, drivers());
    const AggregatedWaitGraph awg = builder.aggregate(graphs);

    ASSERT_EQ(awg.roots().size(), 1u);
    const auto &n = awg.node(awg.roots()[0]);
    EXPECT_EQ(corpus.symbols().frameName(n.key.primary),
              "fs.sys!Acquire");
    EXPECT_EQ(n.cost, 350);
}

TEST(Awg, CommonPrefixAggregationSumsCostAndCount)
{
    // Two instances with the identical wait/unwait signature pair merge
    // into one AWG node with N=2 and summed cost.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId drv = b.stack({"app!U", "fv.sys!Query"});
    b.wait(1, 100, drv);
    b.unwait(9, 400, 1, drv); // cost 300
    b.wait(2, 100, drv);
    b.unwait(9, 600, 2, drv); // cost 500
    b.instance("S", 1, 0, 700);
    b.instance("S", 2, 0, 700);
    b.finish();

    const auto graphs = graphsOf(corpus);
    AwgBuilder builder(corpus, drivers());
    const AggregatedWaitGraph awg = builder.aggregate(graphs);

    ASSERT_EQ(awg.roots().size(), 1u);
    const auto &n = awg.node(awg.roots()[0]);
    EXPECT_EQ(n.count, 2u);
    EXPECT_EQ(n.cost, 800);
    EXPECT_EQ(n.maxCost, 500);
}

TEST(Awg, DivergentSuffixesSplitUnderSharedPrefix)
{
    // Both instances wait on fv.sys released from fv.sys, but the
    // nested behaviour differs: one has a nested fs.sys wait, the other
    // a nested se.sys running sample.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    const CallstackId fsw = b.stack({"app!W", "fs.sys!Acquire"});
    const CallstackId ser = b.stack({"app!W", "se.sys!Decrypt"});

    // Instance 1: wait(fv) <- worker waits on fs.
    b.wait(1, 100, fv);
    b.wait(2, 110, fsw);
    b.unwait(5, 300, 2, fsw);
    b.unwait(2, 400, 1, fv);
    // Instance 2: wait(fv) <- worker runs se.sys.
    b.wait(3, 100, fv);
    b.running(4, 150, 100, ser);
    b.unwait(4, 500, 3, fv);
    b.instance("S", 1, 0, 600);
    b.instance("S", 3, 0, 600);
    b.finish();

    const auto graphs = graphsOf(corpus);
    AwgBuilder builder(corpus, drivers());
    const AggregatedWaitGraph awg = builder.aggregate(graphs);

    ASSERT_EQ(awg.roots().size(), 1u);
    const auto &root = awg.node(awg.roots()[0]);
    EXPECT_EQ(root.count, 2u);
    ASSERT_EQ(root.children.size(), 2u);
    const auto &c0 = awg.node(root.children[0]);
    const auto &c1 = awg.node(root.children[1]);
    EXPECT_NE(c0.key.status, c1.key.status);
}

TEST(Awg, ReduceprunesWaitOnPureHardwareRoot)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId drv = b.stack({"app!U", "disk.sys!Read"});
    const CallstackId hw = b.stack({"DiskService"});
    // Driver wait served directly by hardware: non-optimizable.
    b.wait(1, 100, drv);
    b.hardware(9, 100, 400, hw);
    b.unwait(9, 500, 1, hw);
    // A second, propagated structure that must survive.
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    b.wait(2, 100, fv);
    b.running(8, 150, 100, fv);
    b.unwait(8, 700, 2, fv);
    b.instance("S", 1, 0, 800);
    b.instance("S", 2, 0, 800);
    b.finish();

    const auto graphs = graphsOf(corpus);
    AwgBuilder builder(corpus, drivers());
    const AggregatedWaitGraph awg = builder.aggregate(graphs);

    // Only the propagated structure remains.
    ASSERT_EQ(awg.roots().size(), 1u);
    EXPECT_EQ(corpus.symbols().frameName(
                  awg.node(awg.roots()[0]).key.primary),
              "fv.sys!Query");
    EXPECT_EQ(awg.reducedCost(), 400); // the pruned wait's duration
    EXPECT_EQ(awg.reducedNodes(), 2u);
    // Node storage was compacted.
    for (const auto &n : awg.nodes())
        EXPECT_NE(n.key.status, AwgStatus::Hardware);
}

TEST(Awg, ReductionCanBeDisabled)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId drv = b.stack({"app!U", "disk.sys!Read"});
    const CallstackId hw = b.stack({"DiskService"});
    b.wait(1, 100, drv);
    b.hardware(9, 100, 400, hw);
    b.unwait(9, 500, 1, hw);
    b.instance("S", 1, 0, 600);
    b.finish();

    const auto graphs = graphsOf(corpus);
    AwgOptions options;
    options.reduceNonOptimizable = false;
    AwgBuilder builder(corpus, drivers(), options);
    const AggregatedWaitGraph awg = builder.aggregate(graphs);

    ASSERT_EQ(awg.roots().size(), 1u);
    EXPECT_EQ(awg.reducedCost(), 0);
    const auto &root = awg.node(awg.roots()[0]);
    ASSERT_EQ(root.children.size(), 1u);
    EXPECT_EQ(awg.node(root.children[0]).key.status,
              AwgStatus::Hardware);
}

TEST(Awg, HardwareNodeCarriesDummySignature)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId drv = b.stack({"app!U", "fs.sys!Read"});
    const CallstackId hw = b.stack({"DiskService"});
    const CallstackId run = b.stack({"app!W", "se.sys!Decrypt"});
    b.wait(1, 100, drv);
    b.hardware(9, 100, 300, hw);
    b.running(9, 400, 50, run);
    b.unwait(9, 500, 1, run);
    b.instance("S", 1, 0, 600);
    b.finish();

    const auto graphs = graphsOf(corpus);
    AwgBuilder builder(corpus, drivers());
    const AggregatedWaitGraph awg = builder.aggregate(graphs);

    ASSERT_EQ(awg.roots().size(), 1u);
    const auto &root = awg.node(awg.roots()[0]);
    // Two children survive: hardware + running (the structure is not a
    // single-hardware-leaf pattern, so no reduction).
    ASSERT_EQ(root.children.size(), 2u);
    const auto &hwn = awg.node(root.children[0]);
    EXPECT_EQ(hwn.key.status, AwgStatus::Hardware);
    EXPECT_EQ(corpus.symbols().frameName(hwn.key.primary),
              "DiskService");
    EXPECT_EQ(hwn.cost, 300);
}

TEST(Awg, InnerIrrelevantEliminationTogglable)
{
    // A driver wait whose nested wait is kernel-only, below which is a
    // driver running node.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    const CallstackId kern = b.stack({"app!W", "kernel!Wait"});
    const CallstackId ser = b.stack({"sys!W", "se.sys!Decrypt"});
    b.wait(1, 100, fv);
    b.wait(2, 110, kern);
    b.running(3, 150, 80, ser);
    b.unwait(3, 400, 2, kern);
    b.unwait(2, 500, 1, fv);
    b.instance("S", 1, 0, 600);
    b.finish();

    const auto graphs = graphsOf(corpus);

    AwgBuilder eliminate(corpus, drivers());
    const AggregatedWaitGraph a1 = eliminate.aggregate(graphs);
    ASSERT_EQ(a1.roots().size(), 1u);
    const auto &root1 = a1.node(a1.roots()[0]);
    // Kernel-only wait collapsed: the running child is attached
    // directly under the fv.sys waiting node.
    ASSERT_EQ(root1.children.size(), 1u);
    EXPECT_EQ(a1.node(root1.children[0]).key.status, AwgStatus::Running);

    AwgOptions keep;
    keep.eliminateInnerIrrelevant = false;
    AwgBuilder keeper(corpus, drivers(), keep);
    const AggregatedWaitGraph a2 = keeper.aggregate(graphs);
    const auto &root2 = a2.node(a2.roots()[0]);
    ASSERT_EQ(root2.children.size(), 1u);
    // The kernel wait survives as a waiting node with <other> sigs.
    const auto &mid = a2.node(root2.children[0]);
    EXPECT_EQ(mid.key.status, AwgStatus::Waiting);
    EXPECT_EQ(mid.key.primary, kNoFrame);
}

TEST(Awg, EmptyInputYieldsEmptyGraph)
{
    TraceCorpus corpus;
    AwgBuilder builder(corpus, drivers());
    const AggregatedWaitGraph awg = builder.aggregate({});
    EXPECT_TRUE(awg.empty());
    EXPECT_EQ(awg.totalRootCost(), 0);
}

TEST(Awg, RenderTextShowsSignatures)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId drv = b.stack({"app!U", "fv.sys!Query"});
    b.wait(1, 100, drv);
    b.running(2, 150, 100, drv);
    b.unwait(2, 600, 1, drv);
    b.instance("S", 1, 0, 700);
    b.finish();

    const auto graphs = graphsOf(corpus);
    AwgBuilder builder(corpus, drivers());
    const AggregatedWaitGraph awg = builder.aggregate(graphs);

    const std::string text = awg.renderText(corpus.symbols());
    EXPECT_NE(text.find("fv.sys!Query"), std::string::npos);
    EXPECT_NE(text.find("waiting"), std::string::npos);
    EXPECT_NE(text.find("running"), std::string::npos);

    const std::string dot = awg.renderDot(corpus.symbols());
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Awg, SourceGraphCountTracked)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId drv = b.stack({"app!U", "fv.sys!Query"});
    b.running(1, 0, 10, drv);
    b.running(2, 0, 10, drv);
    b.instance("S", 1, 0, 100);
    b.instance("S", 2, 0, 100);
    b.finish();

    const auto graphs = graphsOf(corpus);
    AwgBuilder builder(corpus, drivers());
    EXPECT_EQ(builder.aggregate(graphs).sourceGraphs(), 2u);
}

} // namespace
} // namespace tracelens
