/**
 * @file
 * Unit tests for Wait Graph construction on hand-built streams with
 * known shapes (pairing, duration restoration, recursive expansion,
 * truncation, and limit handling).
 */

#include <span>

#include <gtest/gtest.h>

#include "src/trace/builder.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens
{
namespace
{

/** Find the first node of the given type among a node list. */
std::uint32_t
findChildOfType(const WaitGraph &graph,
                std::span<const std::uint32_t> candidates,
                EventType type)
{
    for (std::uint32_t c : candidates) {
        if (graph.node(c).event.type == type)
            return c;
    }
    return kInvalidIndex;
}

TEST(WaitGraph, SingleWaitRestoredAndExpanded)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId wait_stack =
        b.stack({"app.exe!main", "fv.sys!QueryFileTable"});
    const CallstackId worker_stack =
        b.stack({"app.exe!Worker", "fv.sys!QueryFileTable"});

    // Thread 1 waits at t=100; thread 2 runs and unwaits at t=600.
    b.wait(1, 100, wait_stack);
    b.running(2, 150, 200, worker_stack);
    b.unwait(2, 600, 1, worker_stack);
    b.running(1, 600, 100, wait_stack);
    b.instance("S", 1, 100, 700);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(corpus.instances()[0]);

    ASSERT_EQ(graph.roots().size(), 2u);
    const WaitGraph::Node &wait = graph.node(graph.roots()[0]);
    EXPECT_EQ(wait.event.type, EventType::Wait);
    EXPECT_EQ(wait.event.cost, 500); // restored from unwait timestamp
    EXPECT_FALSE(wait.truncated);

    // Children: thread 2's running event; the unwait is folded into
    // the wait node as its signalling stack.
    ASSERT_EQ(graph.children(wait).size(), 1u);
    EXPECT_EQ(graph.node(graph.children(wait)[0]).event.type,
              EventType::Running);
    EXPECT_TRUE(wait.paired());
    EXPECT_NE(wait.unwaitStack, kNoCallstack);

    // Second root: the post-wait running event.
    EXPECT_EQ(graph.node(graph.roots()[1]).event.type,
              EventType::Running);
    EXPECT_EQ(graph.topLevelDuration(), 600);
}

TEST(WaitGraph, ChildrenExcludeEventsOutsideWindow)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});

    b.running(2, 50, 10, st);   // before the wait: excluded
    b.wait(1, 100, st);
    b.running(2, 200, 10, st);  // inside: included
    b.unwait(2, 300, 1, st);
    b.running(2, 400, 10, st);  // after the unwait: excluded
    b.instance("S", 1, 100, 500);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(corpus.instances()[0]);

    ASSERT_EQ(graph.roots().size(), 1u);
    const auto &wait = graph.node(graph.roots()[0]);
    ASSERT_EQ(graph.children(wait).size(), 1u); // running@200 only
    EXPECT_EQ(graph.node(graph.children(wait)[0]).event.timestamp, 200);
}

TEST(WaitGraph, NestedPropagationChain)
{
    // A waits on B, B waits on C, C performs a hardware service and
    // computes, then unwaits B, which unwaits A — the miniature of the
    // paper's Figure 1 chain.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId sa = b.stack({"app!U", "fv.sys!QueryFileTable"});
    const CallstackId sb = b.stack({"app!W", "fs.sys!AcquireMDU"});
    const CallstackId sc = b.stack({"kernel!Worker", "se.sys!ReadDecrypt"});
    const CallstackId disk = b.stack({"DiskService"});

    b.wait(1, 100, sa);           // A waits (until 1000)
    b.wait(2, 150, sb);           // B waits (until 900)
    b.hardware(3, 200, 600, disk);// C's disk service
    b.running(3, 800, 100, sc);   // C decrypts
    b.unwait(3, 900, 2, sc);      // C releases B
    b.unwait(2, 1000, 1, sb);     // B releases A
    b.running(1, 1000, 50, sa);
    b.instance("S", 1, 100, 1100);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(corpus.instances()[0]);

    ASSERT_EQ(graph.roots().size(), 2u);
    const auto &wait_a = graph.node(graph.roots()[0]);
    EXPECT_EQ(wait_a.event.cost, 900); // 1000 - 100

    // A's children are B's events in [100, 1000]: B's wait (the
    // unwait is folded into the wait node).
    const std::uint32_t wait_b_id =
        findChildOfType(graph, graph.children(wait_a), EventType::Wait);
    ASSERT_NE(wait_b_id, kInvalidIndex);
    const auto &wait_b = graph.node(wait_b_id);
    EXPECT_EQ(wait_b.event.cost, 750); // 900 - 150
    EXPECT_TRUE(wait_b.paired());

    // B's children are C's events: hardware and the decrypt run.
    ASSERT_EQ(graph.children(wait_b).size(), 2u);
    EXPECT_EQ(graph.node(graph.children(wait_b)[0]).event.type,
              EventType::HardwareService);
    EXPECT_EQ(graph.node(graph.children(wait_b)[1]).event.type,
              EventType::Running);
}

TEST(WaitGraph, UnpairedWaitTruncatesToStreamEnd)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.wait(1, 100, st);
    b.running(2, 100, 900, st);
    b.instance("S", 1, 50, 1000);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(corpus.instances()[0]);
    ASSERT_EQ(graph.roots().size(), 1u);
    const auto &wait = graph.node(graph.roots()[0]);
    EXPECT_TRUE(wait.truncated);
    EXPECT_EQ(wait.event.cost, 900); // stream end 1000 - 100
    EXPECT_TRUE(graph.children(wait).empty());
}

TEST(WaitGraph, FifoPairingMatchesWaitsInOrder)
{
    // Thread 1 waits twice; two unwaits target it. FIFO: first wait
    // pairs with first unwait.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.wait(1, 100, st);
    b.unwait(2, 200, 1, st);
    b.wait(1, 300, st);
    b.unwait(3, 450, 1, st);
    b.instance("S", 1, 0, 500);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(corpus.instances()[0]);
    ASSERT_EQ(graph.roots().size(), 2u);
    EXPECT_EQ(graph.node(graph.roots()[0]).event.cost, 100);
    EXPECT_EQ(graph.node(graph.roots()[1]).event.cost, 150);
}

TEST(WaitGraph, InstanceWindowSelectsRoots)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.running(1, 0, 10, st);
    b.running(1, 100, 10, st);
    b.running(1, 200, 10, st);
    b.instance("S", 1, 50, 150);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(corpus.instances()[0]);
    ASSERT_EQ(graph.roots().size(), 1u);
    EXPECT_EQ(graph.node(graph.roots()[0]).event.timestamp, 100);
}

TEST(WaitGraph, MissingInitiatingThreadYieldsEmptyGraph)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.running(1, 0, 10, st);
    b.instance("S", 99, 0, 100);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(corpus.instances()[0]);
    EXPECT_TRUE(graph.empty());
    EXPECT_EQ(graph.topLevelDuration(), 0);
}

TEST(WaitGraph, DepthLimitTruncates)
{
    // Build a 5-deep chain but limit depth to 2.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    // Chain: 1 waits on 2 waits on 3 waits on 4 waits on 5.
    for (ThreadId t = 1; t <= 4; ++t)
        b.wait(t, 100 + t, st);
    b.running(5, 200, 10, st);
    for (ThreadId t = 5; t >= 2; --t)
        b.unwait(t, 1000 + (5 - t), t - 1, st);
    b.instance("S", 1, 0, 2000);
    b.finish();

    WaitGraphOptions options;
    options.maxDepth = 2;
    WaitGraphBuilder builder(corpus, options);
    const WaitGraph graph = builder.build(corpus.instances()[0]);

    // Depth 0: wait(1); depth 1: wait(2); depth 2: wait(3) truncated.
    ASSERT_FALSE(graph.roots().empty());
    const auto &w1 = graph.node(graph.roots()[0]);
    const auto w2_id = findChildOfType(graph, graph.children(w1),
                                       EventType::Wait);
    ASSERT_NE(w2_id, kInvalidIndex);
    const auto w3_id = findChildOfType(graph, graph.children(w2_id),
                                       EventType::Wait);
    ASSERT_NE(w3_id, kInvalidIndex);
    EXPECT_TRUE(graph.node(w3_id).truncated);
    EXPECT_TRUE(graph.children(w3_id).empty());
    // Cost is still restored even when expansion is truncated.
    EXPECT_GT(graph.node(w3_id).event.cost, 0);
}

TEST(WaitGraph, BuildAllCoversEveryInstance)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.running(1, 0, 10, st);
    b.running(2, 0, 10, st);
    b.instance("S", 1, 0, 100);
    b.instance("T", 2, 0, 100);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    ASSERT_EQ(graphs.size(), 2u);
    EXPECT_EQ(graphs[0].instance().tid, 1u);
    EXPECT_EQ(graphs[1].instance().tid, 2u);
}

TEST(WaitGraph, SharedWaitAppearsInTwoInstanceGraphsWithSameRef)
{
    // Two scenario instances on different threads both blocked by the
    // same worker: the worker's wait event appears (as a child) in both
    // graphs with the same EventRef — the overlap that drives
    // D_waitdist.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});

    b.wait(1, 100, st);  // instance 1 root wait
    b.wait(2, 110, st);  // instance 2 root wait
    b.wait(3, 120, st);  // the shared worker wait
    b.unwait(4, 500, 3, st);
    b.unwait(3, 600, 1, st);
    b.unwait(3, 610, 2, st);
    b.instance("S", 1, 0, 700);
    b.instance("T", 2, 0, 700);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    ASSERT_EQ(graphs.size(), 2u);

    auto sharedWaitRef = [&](const WaitGraph &g) -> EventRef {
        const auto &root = g.node(g.roots()[0]);
        const auto id = findChildOfType(g, g.children(root),
                                        EventType::Wait);
        EXPECT_NE(id, kInvalidIndex);
        return g.node(id).ref;
    };
    EXPECT_EQ(sharedWaitRef(graphs[0]), sharedWaitRef(graphs[1]));
}

TEST(WaitGraph, ContainmentOnlySeversLockQueueChains)
{
    // A lock-queue shape: B's wait started before A's but resolved
    // inside A's window. Overlap semantics connect it; containment
    // semantics do not.
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.wait(2, 50, st);           // B waits first
    b.wait(1, 100, st);          // A waits second
    b.unwait(9, 500, 2, st);     // B resolves inside A's window
    b.unwait(2, 600, 1, st);     // B readies A
    b.instance("S", 1, 0, 700);
    b.finish();

    WaitGraphBuilder overlap(corpus);
    const WaitGraph with_overlap = overlap.build(corpus.instances()[0]);
    ASSERT_EQ(with_overlap.roots().size(), 1u);
    EXPECT_FALSE(
        with_overlap.children(with_overlap.roots()[0]).empty());

    WaitGraphOptions options;
    options.containmentOnly = true;
    WaitGraphBuilder contain(corpus, options);
    const WaitGraph without = contain.build(corpus.instances()[0]);
    ASSERT_EQ(without.roots().size(), 1u);
    EXPECT_TRUE(without.children(without.roots()[0]).empty());
}

TEST(WaitGraph, UnclippedCostsExceedParentWindows)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"a.sys!F"});
    b.wait(2, 0, st);            // B's long wait [0, 900]
    b.wait(1, 800, st);          // A's short wait [800, 1000]
    b.unwait(9, 900, 2, st);
    b.unwait(2, 1000, 1, st);
    b.instance("S", 1, 700, 1100);
    b.finish();

    // Clipped (default): B's wait contributes only its overlap.
    WaitGraphBuilder clipped(corpus);
    const WaitGraph g1 = clipped.build(corpus.instances()[0]);
    ASSERT_EQ(g1.roots().size(), 1u);
    const auto &root1 = g1.node(g1.roots()[0]);
    ASSERT_EQ(g1.children(root1).size(), 1u);
    EXPECT_EQ(g1.node(g1.children(root1)[0]).event.cost, 100); // [800,900]
    EXPECT_LE(g1.node(g1.children(root1)[0]).event.cost,
              root1.event.cost);

    WaitGraphOptions options;
    options.clipToWindows = false;
    WaitGraphBuilder unclipped(corpus, options);
    const WaitGraph g2 = unclipped.build(corpus.instances()[0]);
    const auto &root2 = g2.node(g2.roots()[0]);
    ASSERT_EQ(g2.children(root2).size(), 1u);
    EXPECT_EQ(g2.node(g2.children(root2)[0]).event.cost, 900); // full wait
    EXPECT_GT(g2.node(g2.children(root2)[0]).event.cost,
              root2.event.cost);
}

} // namespace
} // namespace tracelens
