/**
 * @file
 * Telemetry-pipeline integration tests: a traced analysis run records
 * a span for every pipeline stage; a warm artifact-cache run records
 * the disk-hit outcome in its stage spans; and span recording never
 * perturbs analysis results (reports stay byte-identical with
 * telemetry on and off).
 */

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/analyzer.h"
#include "src/core/report.h"
#include "src/trace/source.h"
#include "src/util/telemetry.h"
#include "src/workload/generator.h"
#include "src/workload/scenarios.h"

namespace tracelens
{
namespace
{

namespace fs = std::filesystem;

/**
 * Self-cleaning temp directory for the disk artifact cache; the path
 * embeds the process id so concurrent ctest binaries never collide.
 */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(fs::temp_directory_path() /
                ("tracelens_telemetry_test_" +
                 std::to_string(::getpid()) + "_" + name))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

CorpusSpec
smallSpec()
{
    CorpusSpec spec;
    spec.machines = 12;
    spec.seed = 991;
    return spec;
}

std::vector<ScenarioThresholds>
catalogThresholds(const TraceCorpus &corpus)
{
    std::vector<ScenarioThresholds> scenarios;
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.selected &&
            corpus.findScenario(spec.name) != UINT32_MAX)
            scenarios.push_back({spec.name, spec.tFast, spec.tSlow});
    }
    return scenarios;
}

/** Run the full scenario pipeline and return the text report. */
std::string
runPipeline(const TraceCorpus &corpus, const std::string &cacheDir)
{
    EagerSource source(corpus);
    AnalyzerConfig config;
    config.artifactCacheDir = cacheDir;
    Analyzer analyzer(source, config);
    analyzer.analyzeScenarios(catalogThresholds(corpus));
    return buildReport(analyzer, catalogThresholds(corpus));
}

struct TelemetryPipelineTest : ::testing::Test
{
    void SetUp() override
    {
        Telemetry::setEnabled(false);
        Telemetry::reset();
    }
    void TearDown() override
    {
        Telemetry::setEnabled(false);
        Telemetry::reset();
    }
};

TEST_F(TelemetryPipelineTest, TraceCoversEveryPipelineStage)
{
    const TraceCorpus corpus = generateCorpus(smallSpec());

    Telemetry::setEnabled(true);
    runPipeline(corpus, "");
    Telemetry::setEnabled(false);

    const std::string trace = Telemetry::renderChromeTrace();
    // One span name per artifact stage plus the analysis-layer spans
    // around them.
    for (const char *name :
         {"stage.wait-graphs", "stage.classes", "stage.impact",
          "stage.awg", "stage.mining", "analyzer.ingest-shard",
          "analyzer.graphs", "analyzer.scenario",
          "waitgraph.build-range", "impact.analyze", "awg.aggregate",
          "mining.mine", "report.build"}) {
        EXPECT_NE(trace.find(std::string("\"name\": \"") + name +
                             "\""),
                  std::string::npos)
            << "span '" << name << "' missing from trace";
    }
    // Cold memory-only run: every stage span reports a miss first.
    EXPECT_NE(trace.find("\"outcome\": \"miss\""), std::string::npos);
}

TEST_F(TelemetryPipelineTest, WarmCacheRunRecordsDiskHitSpans)
{
    const TraceCorpus corpus = generateCorpus(smallSpec());
    ScratchDir cache("warm");

    // Cold run populates the disk cache; telemetry off to prove the
    // cache write needs no recording.
    runPipeline(corpus, cache.str());

    // Warm run (a fresh Analyzer, as a new process would be) with
    // tracing on: the wait-graph stage restores from disk and stamps
    // the disk-hit outcome into its span.
    Telemetry::reset();
    Telemetry::setEnabled(true);
    runPipeline(corpus, cache.str());
    Telemetry::setEnabled(false);

    const std::string trace = Telemetry::renderChromeTrace();
    EXPECT_NE(trace.find("\"name\": \"stage.wait-graphs\""),
              std::string::npos);
    EXPECT_NE(trace.find("\"outcome\": \"disk-hit\""),
              std::string::npos);
    // Artifact keys ride along as span args.
    EXPECT_NE(trace.find("\"key\": \""), std::string::npos);
}

TEST_F(TelemetryPipelineTest, ReportsAreIdenticalWithTelemetryOnAndOff)
{
    const TraceCorpus corpus = generateCorpus(smallSpec());

    const std::string off_report = runPipeline(corpus, "");

    Telemetry::setEnabled(true);
    const std::string on_report = runPipeline(corpus, "");
    Telemetry::setEnabled(false);

    EXPECT_EQ(off_report, on_report);
    EXPECT_GT(Telemetry::spanCount(), 0u);
}

TEST_F(TelemetryPipelineTest, PipelineStatsMatchGlobalRegistryMerge)
{
    const TraceCorpus corpus = generateCorpus(smallSpec());

    // A private registry per store keeps pipelineStats() correct per
    // analyzer; destruction folds the counters into the global
    // registry. Compare the before/after delta of one global counter
    // with the per-analyzer snapshot.
    MetricsRegistry &global = MetricsRegistry::global();
    const Counter *before_counter =
        global.findCounter("pipeline.wait-graphs.misses");
    const std::uint64_t before =
        before_counter == nullptr ? 0 : before_counter->value();

    std::uint64_t misses = 0;
    {
        EagerSource source(corpus);
        Analyzer analyzer(source);
        analyzer.analyzeScenarios(catalogThresholds(corpus));
        misses = analyzer.pipelineStats().of(Stage::WaitGraphs).misses;
        EXPECT_GT(misses, 0u);
    }

    const Counter *after_counter =
        global.findCounter("pipeline.wait-graphs.misses");
    ASSERT_NE(after_counter, nullptr);
    EXPECT_EQ(after_counter->value() - before, misses);
}

} // namespace
} // namespace tracelens
