/**
 * @file
 * Tests for the StackMine-style costly-pattern baseline and the
 * parallel wait-graph construction path.
 */

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "src/baseline/stackmine.h"
#include "src/trace/builder.h"
#include "src/trace/serialize.h"
#include "src/waitgraph/waitgraph.h"
#include "src/workload/generator.h"
#include "src/workload/motivating.h"

namespace tracelens
{
namespace
{

TEST(StackMine, AggregatesWaitsBySuffix)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId deep =
        b.stack({"app!main", "app!open", "fv.sys!Query",
                 "kernel!Acquire"});
    const CallstackId deep2 =
        b.stack({"app!other", "app!load", "fv.sys!Query",
                 "kernel!Acquire"});
    // Same top-3 suffix (kernel!Acquire <- fv.sys!Query <- app!open /
    // app!load differ at depth 3 — different patterns at depth 3, same
    // at depth 2).
    b.wait(1, 0, deep);
    b.unwait(9, 100, 1, deep);
    b.wait(2, 0, deep2);
    b.unwait(9, 300, 2, deep2);
    b.finish();

    StackMineAnalyzer depth2(corpus, 2);
    const auto merged = depth2.mine();
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].cost, 400);
    EXPECT_EQ(merged[0].waits, 2u);
    EXPECT_EQ(merged[0].maxCost, 300);

    StackMineAnalyzer depth3(corpus, 3);
    EXPECT_EQ(depth3.mine().size(), 2u);
}

TEST(StackMine, RanksByTotalCost)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId cheap = b.stack({"a!x", "net.sys!Send"});
    const CallstackId costly = b.stack({"a!y", "fs.sys!Read"});
    b.wait(1, 0, cheap);
    b.unwait(9, 10, 1, cheap);
    b.wait(2, 0, costly);
    b.unwait(9, 500, 2, costly);
    b.finish();

    StackMineAnalyzer analyzer(corpus);
    const auto patterns = analyzer.mine();
    ASSERT_EQ(patterns.size(), 2u);
    EXPECT_EQ(patterns[0].cost, 500);
    EXPECT_NE(patterns[0].render(corpus.symbols()).find("fs.sys!Read"),
              std::string::npos);
}

TEST(StackMine, SeesHotspotsButNotTheChainOnFigure1)
{
    TraceCorpus corpus;
    buildMotivatingExample(corpus);
    StackMineAnalyzer analyzer(corpus);
    const auto patterns = analyzer.mine();
    ASSERT_GE(patterns.size(), 3u);

    // Every pattern is a single-thread stack suffix; none of them can
    // contain frames from two different drivers of the chain (each
    // wait stack belongs to one blocking site).
    const SymbolTable &sym = corpus.symbols();
    for (const CostlyStackPattern &p : patterns) {
        bool fv = false, se = false;
        for (FrameId f : p.suffix) {
            const std::string &component = sym.componentName(f);
            fv = fv || component == "fv.sys";
            se = se || component == "se.sys";
        }
        EXPECT_FALSE(fv && se) << p.render(sym);
    }
    EXPECT_NE(analyzer.renderTop(3).find("Cost"), std::string::npos);
}

TEST(StackMine, EmptyCorpus)
{
    TraceCorpus corpus;
    StackMineAnalyzer analyzer(corpus);
    EXPECT_TRUE(analyzer.mine().empty());
}

TEST(WaitGraphParallel, MatchesSerialExactly)
{
    CorpusSpec spec;
    spec.machines = 8;
    spec.seed = 44;
    const TraceCorpus corpus = generateCorpus(spec);

    WaitGraphBuilder serial_builder(corpus);
    const auto serial = serial_builder.buildAll();

    for (unsigned threads : {2u, 4u, 8u}) {
        WaitGraphBuilder parallel_builder(corpus);
        const auto parallel =
            parallel_builder.buildAllParallel(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            ASSERT_EQ(parallel[i].size(), serial[i].size()) << i;
            ASSERT_EQ(parallel[i].roots(), serial[i].roots()) << i;
            for (std::size_t n = 0; n < serial[i].size(); ++n) {
                const auto &a =
                    serial[i].node(static_cast<std::uint32_t>(n));
                const auto &b =
                    parallel[i].node(static_cast<std::uint32_t>(n));
                ASSERT_EQ(a.ref, b.ref);
                ASSERT_EQ(a.event.cost, b.event.cost);
                const auto ac = serial[i].children(a);
                const auto bc = parallel[i].children(b);
                ASSERT_TRUE(std::equal(ac.begin(), ac.end(),
                                       bc.begin(), bc.end()));
            }
        }
    }
}

TEST(WaitGraphParallel, SingleThreadFallsBackToSerial)
{
    CorpusSpec spec;
    spec.machines = 2;
    spec.seed = 45;
    const TraceCorpus corpus = generateCorpus(spec);
    WaitGraphBuilder builder(corpus);
    const auto a = builder.buildAll();
    const auto b = builder.buildAllParallel(1);
    ASSERT_EQ(a.size(), b.size());
}

} // namespace
} // namespace tracelens
