/**
 * @file
 * Tests for the Analyzer facade: classification, per-scenario
 * pipeline, and end-to-end behaviour on generated corpora.
 */

#include <gtest/gtest.h>

#include "src/core/analyzer.h"
#include "src/trace/builder.h"
#include "src/workload/generator.h"
#include "src/workload/motivating.h"

namespace tracelens
{
namespace
{

TEST(Analyzer, ClassifySplitsByThresholds)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId st = b.stack({"app!X"});
    b.running(1, 0, 10, st);
    b.instance("S", 1, 0, fromMs(100));   // fast (< 300)
    b.instance("S", 1, 0, fromMs(400));   // middle
    b.instance("S", 1, 0, fromMs(700));   // slow (> 500)
    b.instance("T", 1, 0, fromMs(700));   // other scenario
    b.finish();

    EagerSource analyzer_source(corpus);

    Analyzer analyzer(analyzer_source);
    const auto classes = analyzer.classify(corpus.findScenario("S"),
                                           fromMs(300), fromMs(500));
    EXPECT_EQ(classes.fast.size(), 1u);
    EXPECT_EQ(classes.middle.size(), 1u);
    EXPECT_EQ(classes.slow.size(), 1u);
}

TEST(Analyzer, MotivatingExampleEndToEnd)
{
    TraceCorpus corpus;
    buildMotivatingExample(corpus);

    // Add a fast BrowserTabCreate instance so there is a fast class.
    {
        SimKernel sim(corpus, "fast-machine");
        const auto scn = sim.scenario("BrowserTabCreate");
        sim.spawnThread({actPush(sim.frame("browser.exe!TabCreate")),
                         actBeginInstance(scn),
                         actCompute(fromMs(40)), actEndInstance(),
                         actPop()});
        sim.run();
    }

    EagerSource analyzer_source(corpus);

    Analyzer analyzer(analyzer_source);
    const ScenarioAnalysis analysis = analyzer.analyzeScenario(
        "BrowserTabCreate", fromMs(300), fromMs(500));

    EXPECT_EQ(analysis.classes.fast.size(), 1u);
    EXPECT_EQ(analysis.classes.slow.size(), 1u);
    ASSERT_FALSE(analysis.mining.patterns.empty());

    // The top pattern must be the paper's Signature Set Tuple: fv/fs
    // waits fed by the se.sys + DiskService running set.
    const SymbolTable &sym = corpus.symbols();
    const std::string top =
        analysis.mining.patterns[0].tuple.render(sym);
    EXPECT_NE(top.find("fv.sys!QueryFileTable"), std::string::npos);
    EXPECT_NE(top.find("fs.sys!AcquireMDU"), std::string::npos);
    EXPECT_NE(top.find("se.sys!ReadDecrypt"), std::string::npos);
    EXPECT_NE(top.find("DiskService"), std::string::npos);

    // That pattern is high impact (one execution beyond T_slow).
    EXPECT_TRUE(analysis.mining.patterns[0].highImpact(fromMs(500)));
    EXPECT_GT(analysis.coverage.itc(), 0.0);
    EXPECT_GE(analysis.coverage.ttc(), analysis.coverage.itc());
}

TEST(Analyzer, GeneratedCorpusPipelineProducesSaneMetrics)
{
    CorpusSpec spec;
    spec.machines = 12;
    spec.seed = 7;
    const TraceCorpus corpus = generateCorpus(spec);

    EagerSource analyzer_source(corpus);

    Analyzer analyzer(analyzer_source);
    const ImpactResult impact = analyzer.impactAll();

    EXPECT_GT(impact.instances, 0u);
    EXPECT_GT(impact.dScn, 0);
    EXPECT_GE(impact.dWait, impact.dWaitDist);
    EXPECT_GE(impact.iaOpt(), 0.0);
    EXPECT_LE(impact.iaWait(), 1.0);
    EXPECT_GT(impact.iaWait(), 0.0);

    // Per-scenario metrics partition the corpus totals.
    const auto per = analyzer.impactPerScenario();
    DurationNs scn_sum = 0;
    std::size_t inst_sum = 0;
    for (const auto &[id, result] : per) {
        scn_sum += result.dScn;
        inst_sum += result.instances;
    }
    EXPECT_EQ(scn_sum, impact.dScn);
    EXPECT_EQ(inst_sum, impact.instances);
}

TEST(Analyzer, ScenarioAnalysisOnGeneratedCorpus)
{
    CorpusSpec spec;
    spec.machines = 10;
    spec.seed = 99;
    spec.onlyScenarios = {"BrowserTabCreate"};
    const TraceCorpus corpus = generateCorpus(spec);

    EagerSource analyzer_source(corpus);

    Analyzer analyzer(analyzer_source);
    const ScenarioSpec &scn = scenarioByName("BrowserTabCreate");
    const ScenarioAnalysis analysis =
        analyzer.analyzeScenario("BrowserTabCreate", scn.tFast,
                                 scn.tSlow);

    EXPECT_GT(analysis.classes.fast.size() +
                  analysis.classes.middle.size() +
                  analysis.classes.slow.size(),
              0u);
    EXPECT_GE(analysis.driverCostShare(), 0.0);
    EXPECT_LE(analysis.nonOptimizableShare(), 1.0);
    EXPECT_LE(analysis.coverage.itc(), analysis.coverage.ttc());
}

TEST(Analyzer, UnknownScenarioIsFatal)
{
    TraceCorpus corpus;
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);
    EXPECT_DEATH(
        { analyzer.analyzeScenario("Nope", fromMs(1), fromMs(2)); },
        "not in corpus");
}

} // namespace
} // namespace tracelens
