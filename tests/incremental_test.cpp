/**
 * @file
 * Tests for the incremental, artifact-cached analysis pipeline:
 * appending shards must rebuild only the new shard's artifacts and
 * still produce byte-identical reports, and the optional disk cache
 * must warm-start fresh analyzers (while never trusting corrupt
 * files).
 */

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/analyzer.h"
#include "src/core/report.h"
#include "src/trace/merge.h"
#include "src/trace/source.h"
#include "src/workload/generator.h"
#include "src/workload/scenarios.h"

namespace tracelens
{
namespace
{

namespace fs = std::filesystem;

/**
 * Self-cleaning temp directory for disk-cache tests. The path embeds
 * the process id: this file builds into more than one test binary,
 * and ctest -j runs those binaries concurrently, so a fixed name
 * would let two processes stomp each other's cache fixtures.
 */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(fs::temp_directory_path() /
                ("tracelens_incremental_test_" +
                 std::to_string(::getpid()) + "_" + name))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

CorpusSpec
smallSpec()
{
    CorpusSpec spec;
    spec.machines = 12;
    spec.seed = 4242;
    return spec;
}

std::vector<ScenarioThresholds>
catalogThresholds(const TraceCorpus &corpus)
{
    std::vector<ScenarioThresholds> scenarios;
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.selected &&
            corpus.findScenario(spec.name) != UINT32_MAX)
            scenarios.push_back({spec.name, spec.tFast, spec.tSlow});
    }
    return scenarios;
}

/** The full analysis report — the byte-identity probe. */
std::string
reportOf(const Analyzer &analyzer)
{
    return buildReport(analyzer, catalogThresholds(analyzer.corpus()));
}

/** Merge of parts[0..count) in order, as the analyzer would absorb. */
TraceCorpus
mergedPrefix(const std::vector<TraceCorpus> &parts, std::size_t count)
{
    TraceCorpus merged;
    for (std::size_t i = 0; i < count; ++i)
        appendCorpus(merged, parts[i]);
    return merged;
}

TEST(Incremental, AppendRebuildsOnlyTheNewShard)
{
    const TraceCorpus corpus = generateCorpus(smallSpec());
    const std::vector<TraceCorpus> parts = splitCorpus(corpus, 4);
    ASSERT_EQ(parts.size(), 4u);

    for (const unsigned threads : {1u, 3u}) {
        AnalyzerConfig config;
        config.threads = threads;

        // Three shards in, full report out: one wait-graph bundle
        // built per shard, nothing served from cache yet.
        EagerSource first(parts[0]);
        Analyzer analyzer(first, config);
        analyzer.addStreams(parts[1]);
        analyzer.addStreams(parts[2]);
        ASSERT_EQ(analyzer.shardCount(), 3u);
        const std::string r1 = reportOf(analyzer);
        {
            const PipelineStats stats = analyzer.pipelineStats();
            EXPECT_EQ(stats.of(Stage::WaitGraphs).misses, 3u);
            EXPECT_EQ(stats.of(Stage::WaitGraphs).hits, 0u);
        }

        // The cold equivalent of the three-shard state.
        const TraceCorpus merged3 = mergedPrefix(parts, 3);
        EagerSource cold3_source(merged3);
        Analyzer cold3(cold3_source, config);
        EXPECT_EQ(reportOf(cold3), r1);

        // Appending the fourth shard invalidates only the suffix:
        // the three prefix bundles are re-served from the store, one
        // new bundle is built.
        analyzer.addStreams(parts[3]);
        const std::string r2 = reportOf(analyzer);
        {
            const PipelineStats stats = analyzer.pipelineStats();
            EXPECT_EQ(stats.of(Stage::WaitGraphs).misses, 4u);
            EXPECT_GE(stats.of(Stage::WaitGraphs).hits, 3u);
        }

        // Byte-identical to a cold full analysis of all four parts.
        const TraceCorpus merged4 = mergedPrefix(parts, 4);
        EagerSource cold4_source(merged4);
        Analyzer cold4(cold4_source, config);
        EXPECT_EQ(reportOf(cold4), r2);
    }
}

TEST(Incremental, SerialAndParallelReportsAreIdentical)
{
    const TraceCorpus corpus = generateCorpus(smallSpec());
    EagerSource serial_source(corpus), parallel_source(corpus);

    AnalyzerConfig serial_config;
    serial_config.threads = 1;
    Analyzer serial(serial_source, serial_config);

    AnalyzerConfig parallel_config;
    parallel_config.threads = 4;
    Analyzer parallel(parallel_source, parallel_config);

    EXPECT_EQ(reportOf(serial), reportOf(parallel));
}

TEST(Incremental, RepeatedQueriesHitTheMemoizedStore)
{
    const TraceCorpus corpus = generateCorpus(smallSpec());
    EagerSource source(corpus);
    Analyzer analyzer(source);

    const ImpactResult first = analyzer.impactAll();
    const ImpactResult second = analyzer.impactAll();
    EXPECT_EQ(first.dWait, second.dWait);
    EXPECT_EQ(first.dWaitDist, second.dWaitDist);

    const PipelineStats stats = analyzer.pipelineStats();
    EXPECT_EQ(stats.of(Stage::Impact).misses, 1u);
    EXPECT_GE(stats.of(Stage::Impact).hits, 1u);
}

TEST(Incremental, DiskCacheWarmStartsAFreshAnalyzer)
{
    const ScratchDir dir("warm");
    const TraceCorpus corpus = generateCorpus(smallSpec());

    AnalyzerConfig config;
    config.threads = 1;
    config.artifactCacheDir = dir.str();

    std::string cold_report;
    {
        EagerSource source(corpus);
        Analyzer cold(source, config);
        cold_report = reportOf(cold);
        const PipelineStats stats = cold.pipelineStats();
        EXPECT_EQ(stats.of(Stage::WaitGraphs).misses, 1u);
        EXPECT_EQ(stats.of(Stage::WaitGraphs).diskHits, 0u);
        EXPECT_EQ(stats.of(Stage::WaitGraphs).diskWrites, 1u);
        EXPECT_GT(stats.of(Stage::Awg).diskWrites, 0u);
    }
    ASSERT_FALSE(fs::is_empty(dir.path()));

    // A fresh analyzer — different process in real life, and a
    // different thread count on purpose: artifact keys must not
    // depend on parallelism.
    AnalyzerConfig warm_config = config;
    warm_config.threads = 4;
    EagerSource source(corpus);
    Analyzer warm(source, warm_config);
    EXPECT_EQ(reportOf(warm), cold_report);
    const PipelineStats stats = warm.pipelineStats();
    EXPECT_EQ(stats.of(Stage::WaitGraphs).misses, 0u);
    EXPECT_EQ(stats.of(Stage::WaitGraphs).diskHits, 1u);
    EXPECT_GT(stats.of(Stage::Awg).diskHits, 0u);
    EXPECT_EQ(stats.of(Stage::Awg).misses, 0u);
}

TEST(Incremental, CorruptCacheFilesAreRebuiltNotTrusted)
{
    const ScratchDir dir("corrupt");
    const TraceCorpus corpus = generateCorpus(smallSpec());

    AnalyzerConfig config;
    config.threads = 1;
    config.artifactCacheDir = dir.str();

    std::string cold_report;
    {
        EagerSource source(corpus);
        Analyzer cold(source, config);
        cold_report = reportOf(cold);
    }

    // Damage every cached artifact: truncate half of them, scramble
    // payload bytes in the rest. Neither must ever be deserialized.
    std::size_t corrupted = 0;
    for (const auto &entry : fs::directory_iterator(dir.path())) {
        const auto size = fs::file_size(entry.path());
        if (corrupted % 2 == 0) {
            fs::resize_file(entry.path(), size / 2);
        } else {
            std::fstream f(entry.path(),
                           std::ios::in | std::ios::out |
                               std::ios::binary);
            f.seekp(static_cast<std::streamoff>(size / 2));
            f.write("\xde\xad\xbe\xef", 4);
        }
        ++corrupted;
    }
    ASSERT_GT(corrupted, 0u);

    EagerSource source(corpus);
    Analyzer rebuilt(source, config);
    EXPECT_EQ(reportOf(rebuilt), cold_report);
    const PipelineStats stats = rebuilt.pipelineStats();
    EXPECT_EQ(stats.of(Stage::WaitGraphs).diskHits, 0u);
    EXPECT_EQ(stats.of(Stage::WaitGraphs).misses, 1u);
    EXPECT_EQ(stats.of(Stage::Awg).diskHits, 0u);
}

TEST(Incremental, CacheDirIsSharedAcrossDistinctConfigs)
{
    // Different analysis options fingerprint to different keys, so
    // one directory serves both without cross-contamination.
    const ScratchDir dir("configs");
    const TraceCorpus corpus = generateCorpus(smallSpec());

    AnalyzerConfig a;
    a.threads = 1;
    a.artifactCacheDir = dir.str();
    AnalyzerConfig b = a;
    b.waitGraph.maxDepth = 3; // different graphs, different keys

    EagerSource source_a(corpus), source_b(corpus);
    Analyzer ana_a(source_a, a), ana_b(source_b, b);
    (void)ana_a.impactAll();
    (void)ana_b.impactAll();
    EXPECT_EQ(ana_a.pipelineStats().of(Stage::WaitGraphs).misses, 1u);
    EXPECT_EQ(ana_b.pipelineStats().of(Stage::WaitGraphs).misses, 1u);

    // Re-running either configuration now warm-starts from disk.
    EagerSource source_a2(corpus);
    Analyzer again(source_a2, a);
    (void)again.impactAll();
    EXPECT_EQ(again.pipelineStats().of(Stage::WaitGraphs).diskHits, 1u);
}

TEST(Incremental, TornWritesAndTempLitterDegradeToCacheMiss)
{
    // An interrupted writer can leave a zero-byte artifact, a
    // header-only prefix, or abandoned ".tmp.<pid>.<n>" files in the
    // cache directory. All three must read as cache misses (never a
    // crash or a wrong artifact), and the rebuilt run must repair the
    // cache in place.
    const ScratchDir dir("torn");
    const TraceCorpus corpus = generateCorpus(smallSpec());

    AnalyzerConfig config;
    config.threads = 1;
    config.artifactCacheDir = dir.str();

    std::string cold_report;
    {
        EagerSource source(corpus);
        Analyzer cold(source, config);
        cold_report = reportOf(cold);
    }

    std::size_t torn = 0;
    for (const auto &entry : fs::directory_iterator(dir.path())) {
        if (torn % 2 == 0) {
            fs::resize_file(entry.path(), 0); // rename of empty tmp
        } else {
            fs::resize_file(entry.path(), 16); // mid-header tear
        }
        // Abandoned unique temp files from a killed writer.
        std::ofstream litter(entry.path().string() + ".tmp.99999." +
                             std::to_string(torn));
        litter << "partial";
        ++torn;
    }
    ASSERT_GT(torn, 0u);

    {
        EagerSource source(corpus);
        Analyzer rebuilt(source, config);
        EXPECT_EQ(reportOf(rebuilt), cold_report);
        const PipelineStats stats = rebuilt.pipelineStats();
        EXPECT_EQ(stats.of(Stage::WaitGraphs).diskHits, 0u);
        EXPECT_EQ(stats.of(Stage::Awg).diskHits, 0u);
    }

    // The rebuild repaired the artifacts: a third analyzer disk-hits.
    EagerSource source(corpus);
    Analyzer warm(source, config);
    EXPECT_EQ(reportOf(warm), cold_report);
    EXPECT_GT(warm.pipelineStats().of(Stage::WaitGraphs).diskHits, 0u);
}

TEST(Incremental, ConcurrentWritersShareOneCacheDirSafely)
{
    // Several analyzers over the same corpus and cache directory,
    // all storing the same artifacts at once. Unique temp names make
    // the concurrent renames last-writer-wins over identical content;
    // a shared temp name would let one writer rename another's
    // half-written file into place. After the storm every cached file
    // must be valid: a fresh analyzer warm-starts entirely from disk.
    const ScratchDir dir("racers");
    const TraceCorpus corpus = generateCorpus(smallSpec());

    AnalyzerConfig config;
    config.threads = 1;
    config.artifactCacheDir = dir.str();

    std::string cold_report;
    {
        EagerSource probe(corpus);
        Analyzer cold(probe, AnalyzerConfig{.threads = 1});
        cold_report = reportOf(cold);
    }

    constexpr int kWriters = 6;
    std::vector<std::string> reports(kWriters);
    {
        std::vector<std::thread> writers;
        writers.reserve(kWriters);
        for (int i = 0; i < kWriters; ++i) {
            writers.emplace_back([&, i] {
                EagerSource source(corpus);
                Analyzer analyzer(source, config);
                reports[static_cast<std::size_t>(i)] =
                    reportOf(analyzer);
            });
        }
        for (std::thread &t : writers)
            t.join();
    }
    for (const std::string &report : reports)
        EXPECT_EQ(report, cold_report);

    // No temp litter left behind, and every artifact loads cleanly.
    for (const auto &entry : fs::directory_iterator(dir.path())) {
        EXPECT_EQ(entry.path().string().find(".tmp."),
                  std::string::npos)
            << "leftover temp file: " << entry.path();
    }
    EagerSource source(corpus);
    Analyzer warm(source, config);
    EXPECT_EQ(reportOf(warm), cold_report);
    const PipelineStats stats = warm.pipelineStats();
    EXPECT_GT(stats.of(Stage::WaitGraphs).diskHits, 0u);
    EXPECT_EQ(stats.of(Stage::WaitGraphs).misses, 0u);
}

} // namespace
} // namespace tracelens
