/**
 * @file
 * Tests for per-component impact attribution, per-instance breakdowns,
 * and the consolidated report builder.
 */

#include <gtest/gtest.h>

#include "src/core/report.h"
#include "src/impact/breakdown.h"
#include "src/impact/impact.h"
#include "src/trace/builder.h"
#include "src/waitgraph/waitgraph.h"
#include "src/workload/generator.h"

namespace tracelens
{
namespace
{

NameFilter
drivers()
{
    return NameFilter({"*.sys"});
}

TEST(ComponentImpact, AttributesWaitsToSignatureComponent)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId fv = b.stack({"app!U", "fv.sys!Query"});
    const CallstackId net = b.stack({"app!U", "net.sys!Send"});
    b.wait(1, 0, fv);
    b.unwait(9, 300, 1, fv);
    b.wait(1, 400, net);
    b.unwait(9, 1000, 1, net);
    b.instance("S", 1, 0, 1100);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    const auto components = impactByComponent(corpus, graphs,
                                              drivers());
    ASSERT_EQ(components.size(), 2u);
    // Sorted by total descending: net (600) before fv (300).
    EXPECT_EQ(components[0].component, "net.sys");
    EXPECT_EQ(components[0].wait, 600);
    EXPECT_EQ(components[0].waitEvents, 1u);
    EXPECT_EQ(components[1].component, "fv.sys");
    EXPECT_EQ(components[1].wait, 300);
}

TEST(ComponentImpact, RunningAttribution)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId se = b.stack({"w!T", "se.sys!Decrypt"});
    b.running(1, 0, 500, se);
    b.instance("S", 1, 0, 600);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();
    const auto components = impactByComponent(corpus, graphs,
                                              drivers());
    ASSERT_EQ(components.size(), 1u);
    EXPECT_EQ(components[0].component, "se.sys");
    EXPECT_EQ(components[0].run, 500);
    EXPECT_EQ(components[0].wait, 0);
}

TEST(InstanceBreakdown, SplitsDurationIntoCategories)
{
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId app = b.stack({"app!U", "app!Compute"});
    const CallstackId drv = b.stack({"app!U", "fs.sys!Read"});
    const CallstackId kern = b.stack({"app!U", "kernel!Wait"});

    b.running(1, 0, 100, app);   // running 100
    b.wait(1, 100, drv);         // component wait 400
    b.unwait(9, 500, 1, drv);
    b.wait(1, 600, kern);        // other wait 300 (no nested drivers)
    b.unwait(9, 900, 1, kern);
    // 100 ns of unattributed gap at the end.
    b.instance("S", 1, 0, 1000);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(corpus.instances()[0]);
    const InstanceBreakdown breakdown =
        explainInstance(corpus, graph, drivers());

    EXPECT_EQ(breakdown.total, 1000);
    EXPECT_EQ(breakdown.running, 100);
    EXPECT_EQ(breakdown.componentWait, 400);
    EXPECT_EQ(breakdown.otherWait, 300);
    EXPECT_EQ(breakdown.unattributed, 200);
    ASSERT_EQ(breakdown.byComponent.size(), 1u);
    EXPECT_EQ(breakdown.byComponent[0].component, "fs.sys");
    EXPECT_NE(breakdown.render().find("fs.sys"), std::string::npos);
}

TEST(InstanceBreakdown, NestedComponentWaitUnderOtherWait)
{
    // An app-level wait whose readying thread waited inside a driver:
    // the nested driver wait counts as component wait and is carved
    // out of "other wait".
    TraceCorpus corpus;
    StreamBuilder b(corpus, "s");
    const CallstackId kern = b.stack({"app!U", "kernel!WaitForWorker"});
    const CallstackId drv = b.stack({"w!T", "fs.sys!Read"});
    b.wait(1, 0, kern);         // app-level wait [0, 1000]
    b.wait(2, 100, drv);        // nested driver wait [100, 900]
    b.unwait(9, 900, 2, drv);
    b.unwait(2, 1000, 1, drv);
    b.instance("S", 1, 0, 1000);
    b.finish();

    WaitGraphBuilder builder(corpus);
    const WaitGraph graph = builder.build(corpus.instances()[0]);
    const InstanceBreakdown breakdown =
        explainInstance(corpus, graph, drivers());

    EXPECT_EQ(breakdown.componentWait, 800);
    EXPECT_EQ(breakdown.otherWait, 200); // 1000 - nested 800
    EXPECT_EQ(breakdown.total, 1000);
}

TEST(InstanceBreakdown, CategoriesNeverExceedTotalOnGenerated)
{
    CorpusSpec spec;
    spec.machines = 5;
    spec.seed = 31;
    const TraceCorpus corpus = generateCorpus(spec);
    WaitGraphBuilder builder(corpus);
    for (const ScenarioInstance &instance : corpus.instances()) {
        const WaitGraph graph = builder.build(instance);
        const InstanceBreakdown breakdown =
            explainInstance(corpus, graph, drivers());
        EXPECT_GE(breakdown.running, 0);
        EXPECT_GE(breakdown.componentWait, 0);
        EXPECT_GE(breakdown.otherWait, 0);
        EXPECT_GE(breakdown.unattributed, 0);
    }
}

TEST(ComponentImpact, ComponentWaitsSumToAggregateDwait)
{
    // The per-component attribution uses the same top-level BFS rule
    // as ImpactAnalysis, so the component waits partition D_wait.
    CorpusSpec spec;
    spec.machines = 8;
    spec.seed = 71;
    const TraceCorpus corpus = generateCorpus(spec);
    WaitGraphBuilder builder(corpus);
    const auto graphs = builder.buildAll();

    ImpactAnalysis impact(corpus, drivers());
    const ImpactResult total = impact.analyze(graphs);

    DurationNs component_sum = 0;
    for (const ComponentImpact &c :
         impactByComponent(corpus, graphs, drivers()))
        component_sum += c.wait;
    EXPECT_EQ(component_sum, total.dWait);
}

TEST(Report, ContainsAllSections)
{
    CorpusSpec spec;
    spec.machines = 6;
    spec.seed = 13;
    const TraceCorpus corpus = generateCorpus(spec);
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);

    const std::vector<ScenarioThresholds> scenarios = {
        {"BrowserTabCreate", fromMs(300), fromMs(500)},
        {"NotInCorpus", fromMs(1), fromMs(2)},
    };
    const std::string report =
        buildReport(analyzer, scenarios, ReportOptions{});

    EXPECT_NE(report.find("TraceLens report"), std::string::npos);
    EXPECT_NE(report.find("impact analysis"), std::string::npos);
    EXPECT_NE(report.find("impact by component"), std::string::npos);
    EXPECT_NE(report.find("scenario BrowserTabCreate"),
              std::string::npos);
    EXPECT_NE(report.find("not present in this corpus"),
              std::string::npos);
}

TEST(Report, KnowledgeFilterToggle)
{
    CorpusSpec spec;
    spec.machines = 8;
    spec.seed = 21;
    spec.diskProtectionFraction = 1.0; // every machine has dp.sys
    const TraceCorpus corpus = generateCorpus(spec);
    EagerSource analyzer_source(corpus);
    Analyzer analyzer(analyzer_source);

    const std::vector<ScenarioThresholds> scenarios = {
        {"BrowserTabCreate", fromMs(300), fromMs(500)},
    };
    ReportOptions with_filter;
    with_filter.applyKnowledgeFilter = true;
    ReportOptions without_filter;
    without_filter.applyKnowledgeFilter = false;

    const std::string filtered =
        buildReport(analyzer, scenarios, with_filter);
    const std::string unfiltered =
        buildReport(analyzer, scenarios, without_filter);
    // The unfiltered report never mentions suppression.
    EXPECT_EQ(unfiltered.find("suppressed as by-design"),
              std::string::npos);
    // Both are well-formed.
    EXPECT_NE(filtered.find("TraceLens report"), std::string::npos);
}

} // namespace
} // namespace tracelens
