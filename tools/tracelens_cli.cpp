/**
 * @file
 * tracelens — command-line front end for the TraceLens pipeline.
 *
 * Subcommands:
 *   generate   --out PATH [--machines N] [--seed S] [--scenario NAME]
 *              [--shards N]
 *              Synthesize a corpus; write one corpus file, or with
 *              --shards > 1 a directory of shard files. Fleet knobs
 *              (--encrypted-fraction F, --hdd-fraction F,
 *              --stressed-fraction F) tilt the machine mix; --drip DIR
 *              --interval-ms N feeds shards into a spool one by one by
 *              the rename-into-place convention (live-ingestion demo).
 *   ingest     PATH [--mmap] [--cache-bytes N]
 *              Streaming ingestion summary (per-scenario instance
 *              counts/durations) plus throughput and cache stats —
 *              on the mmap path without materializing symbol tables.
 *   validate   PATH
 *              Structural validation report (shard by shard).
 *   impact     PATH [--components GLOB]...
 *              Corpus-wide + per-scenario impact analysis.
 *   analyze    PATH --scenario NAME [--tfast MS] [--tslow MS]
 *              [--top N] [--no-knowledge-filter]
 *              Causality analysis with ranked patterns.
 *   dump       PATH [--stream N] [--max N]
 *              Human-readable event dump of one stream.
 *   export-csv PATH --events OUT --instances OUT
 *   import-csv --events IN --instances IN --out FILE
 *   serve      --listen HOST:PORT [...]
 *              Long-running analysis daemon (docs/SERVER.md): keeps
 *              corpora and artifacts warm, answers concurrent clients
 *              over protocol v2 (multiplexed binary frames) or v1
 *              (newline-delimited JSON), negotiated per connection.
 *   query      METHOD --connect HOST:PORT [--params JSON]
 *              One request against a running daemon; prints the
 *              result JSON (--field KEY prints just that field).
 *              --protocol auto|v1|v2 picks the wire revision
 *              (default auto).
 *   watch      DIR [--scenario NAME]... [--window-ms N] [...]
 *              Continuous mode without a daemon (docs/FLEET.md):
 *              poll DIR for renamed-into-place shards, bucket them
 *              into rolling windows, and print regression alerts as
 *              JSON lines as the sentinel emits them.
 *   version    Build info plus format/protocol revisions (--version).
 *
 * Every PATH that names a corpus accepts either a single .tlc file or
 * a directory of shards, and takes --mmap (zero-copy mmap ingestion)
 * and --cache-bytes N (shard-cache budget); corrupt shards inside a
 * directory are reported and skipped, never fatal. Analysis commands
 * additionally take --artifact-cache DIR (persist wait graphs and
 * AWGs across runs) and --pipeline-stats (print per-stage cache
 * counters and build times).
 *
 * Self-telemetry flags, valid for every subcommand (docs/TELEMETRY.md):
 *   --trace-out FILE    Record pipeline spans and write them as Chrome
 *                       trace_event JSON (load in Perfetto).
 *   --metrics-out FILE  Write the process-wide metrics registry
 *                       (counters/gauges/histograms) as JSON.
 *   --log-level LEVEL   debug|info|warn|error|off (default info).
 */

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/analyzer.h"
#include "src/core/htmlreport.h"
#include "src/fleet/fleet.h"
#include "src/fleet/service.h"
#include "src/core/report.h"
#include "src/impact/thresholds.h"
#include "src/mining/diff.h"
#include "src/mining/knowledge.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/trace/csv.h"
#include "src/trace/serialize.h"
#include "src/trace/source.h"
#include "src/trace/validate.h"
#include "src/util/logging.h"
#include "src/util/table.h"
#include "src/util/telemetry.h"
#include "src/workload/generator.h"
#include "src/workload/scenarios.h"

namespace
{

using namespace tracelens;

/** Minimal flag parser: positional args plus --name value pairs. */
class Args
{
  public:
    Args(int argc, char **argv, int start)
    {
        for (int i = start; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                const std::string name = arg.substr(2);
                if (i + 1 < argc &&
                    std::string(argv[i + 1]).rfind("--", 0) != 0) {
                    flags_[name].push_back(argv[++i]);
                } else {
                    flags_[name].push_back(""); // boolean flag
                }
            } else {
                positional_.push_back(arg);
            }
        }
    }

    std::optional<std::string>
    flag(const std::string &name) const
    {
        auto it = flags_.find(name);
        if (it == flags_.end() || it->second.empty())
            return std::nullopt;
        return it->second.front();
    }

    std::vector<std::string>
    flagAll(const std::string &name) const
    {
        auto it = flags_.find(name);
        return it == flags_.end() ? std::vector<std::string>{}
                                  : it->second;
    }

    bool has(const std::string &name) const
    {
        return flags_.count(name) > 0;
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::vector<std::string>> flags_;
    std::vector<std::string> positional_;
};

int
usage()
{
    std::cerr
        << "usage:\n"
           "  tracelens generate --out PATH [--machines N] [--seed S]"
           " [--scenario NAME] [--shards N] [--compress]\n"
           "      [--encrypted-fraction F] [--hdd-fraction F]"
           " [--stressed-fraction F]\n"
           "      [--drip DIR --interval-ms N]   (spool feed via"
           " rename-into-place)\n"
           "  tracelens ingest PATH\n"
           "  tracelens validate PATH\n"
           "  tracelens impact PATH [--components GLOB]..."
           " [--threads N]\n"
           "  tracelens analyze PATH --scenario NAME [--tfast MS]"
           " [--tslow MS] [--top N] [--no-knowledge-filter]"
           " [--threads N]\n"
           "  tracelens thresholds PATH [--scenario NAME]\n"
           "  tracelens report PATH [--top N] [--html OUT]"
           " [--no-knowledge-filter] [--threads N]\n"
           "  tracelens diff BEFORE AFTER --scenario NAME"
           " [--tfast MS] [--tslow MS] [--threads N]\n"
           "  tracelens dump PATH [--stream N] [--max N]\n"
           "  tracelens export-csv PATH --events OUT --instances OUT\n"
           "  tracelens import-csv --events IN --instances IN --out "
           "FILE\n"
           "  tracelens serve --listen HOST:PORT [--workers N]"
           " [--max-inflight N]\n"
           "      [--default-deadline-ms N] [--max-line-bytes N]"
           " [--analysis-threads N]\n"
           "      [--max-sessions N] [--idle-timeout-s N]"
           " [--artifact-cache DIR]\n"
           "      [--port-file FILE] [--disable-protocol-v2]\n"
           "      [--coordinator --cluster-workers HOST:PORT,...]"
           " [--shard-deadline-ms N]\n"
           "      [--metrics-listen HOST:PORT]"
           " [--metrics-port-file FILE]\n"
           "      [--slow-request-ms N] [--self-trace-corpus DIR]\n"
           "      [--flight-recorder N]"
           " (see docs/SERVER.md, docs/TELEMETRY.md)\n"
           "      [--watch DIR] [--window-ms N] [--max-windows N]"
           " [--poll-ms N]\n"
           "      [--baseline-windows N] [--watch-scenario NAME]..."
           " [--alerts-out FILE]\n"
           "      (continuous mode, docs/FLEET.md)\n"
           "  tracelens query METHOD --connect HOST:PORT"
           " [--params JSON]\n"
           "      [--deadline-ms N] [--timeout-ms N]"
           " [--protocol auto|v1|v2] [--wire-stats]\n"
           "      [--no-trace] [--field KEY] [--params-file FILE]\n"
           "  tracelens watch DIR [--scenario NAME]..."
           " [--window-ms N] [--max-windows N]\n"
           "      [--poll-ms N] [--baseline-windows N]"
           " [--alerts-out FILE] [--max-ticks N]\n"
           "      (continuous mode without a daemon, docs/FLEET.md)\n"
           "  tracelens cluster-status --connect HOST:PORT"
           " [--timeout-ms N] [--metrics]\n"
           "  tracelens cluster-trace --connect HOST:PORT --out FILE"
           " [--timeout-ms N]\n"
           "  tracelens version   (also --version)\n"
           "\nPATH is a .tlc corpus file or a directory of shards; "
           "corpus-reading\ncommands accept --mmap (zero-copy "
           "ingestion) and --cache-bytes N\n(shard-cache budget, "
           "suffixes k/m/g).\n--threads 0 (default) uses every "
           "hardware thread; 1 runs serially.\nAnalysis commands also "
           "accept --artifact-cache DIR (persist wait\ngraphs/AWGs "
           "across runs) and --pipeline-stats (per-stage cache\n"
           "counters and build times).\nEvery command accepts "
           "--trace-out FILE (self-telemetry spans as\nChrome "
           "trace_event JSON, Perfetto-loadable), --metrics-out FILE\n"
           "(counters/gauges/histograms as JSON) and --log-level "
           "LEVEL\n(debug|info|warn|error|off; default info).\n"
           "Analysis results are "
           "identical for every thread count and for every\n"
           "ingestion path.\n";
    return 2;
}

/** Daemon/client version; format revisions print alongside it. */
constexpr const char *kTracelensVersion = "0.6.0";

/**
 * Parse an unsigned flag value in [0, @p max]; fatal (nonzero exit)
 * on anything else — no silent std::stoul truncation or throwing.
 */
std::uint64_t
parseUnsignedFlag(const char *flag, const std::string &value,
                  std::uint64_t max)
{
    std::uint64_t parsed = 0;
    const auto [ptr, ec] = std::from_chars(
        value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc() || ptr != value.data() + value.size() ||
        parsed > max) {
        TL_FATAL(flag, " expects an integer in [0, ", max, "], got '",
                 value, "'");
    }
    return parsed;
}

/** Parse a finite non-negative double flag value; fatal otherwise. */
double
parseDoubleFlag(const char *flag, const std::string &value)
{
    double parsed = 0.0;
    const auto [ptr, ec] = std::from_chars(
        value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc() || ptr != value.data() + value.size() ||
        !(parsed >= 0.0) || parsed > 1e12) {
        TL_FATAL(flag, " expects a non-negative number, got '", value,
                 "'");
    }
    return parsed;
}

/** Parse a fraction flag in [0, 1]; fatal otherwise. */
double
parseFraction(const char *flag, const std::string &value)
{
    const double parsed = parseDoubleFlag(flag, value);
    if (parsed > 1.0)
        TL_FATAL(flag, " expects a fraction in [0, 1], got '", value,
                 "'");
    return parsed;
}

/** Shared --mmap / --cache-bytes ingestion flags. */
SourceOptions
sourceOptionsFlag(const Args &args)
{
    SourceOptions options;
    options.useMmap = args.has("mmap");
    if (auto v = args.flag("cache-bytes")) {
        std::size_t multiplier = 1;
        std::string digits = *v;
        if (!digits.empty()) {
            switch (digits.back()) {
              case 'k': case 'K': multiplier = 1ull << 10; break;
              case 'm': case 'M': multiplier = 1ull << 20; break;
              case 'g': case 'G': multiplier = 1ull << 30; break;
              default: break;
            }
            if (multiplier != 1)
                digits.pop_back();
        }
        std::size_t value = 0;
        const auto [ptr, ec] = std::from_chars(
            digits.data(), digits.data() + digits.size(), value);
        if (ec != std::errc() || ptr != digits.data() + digits.size()) {
            TL_FATAL("--cache-bytes expects BYTES[k|m|g], got '",
                     std::string(*v), "'");
        }
        options.cacheBytes = value * multiplier;
    }
    return options;
}

/** Open PATH as a TraceSource or die with the located error. */
std::unique_ptr<TraceSource>
openSourceOrDie(const std::string &path, const Args &args)
{
    Expected<std::unique_ptr<TraceSource>> source =
        openSource(path, sourceOptionsFlag(args));
    if (!source)
        TL_FATAL(source.error().render());
    return std::move(source.value());
}

/**
 * Materialize the merged corpus. Corrupt shards are skipped with a
 * warning; a source with no usable shard at all is fatal (the
 * single-file case keeps its fail-loudly behavior).
 */
const TraceCorpus &
loadCorpus(TraceSource &source)
{
    const TraceCorpus &corpus = source.corpus();
    const IngestStats &stats = source.stats();
    if (stats.shards > 0 && stats.loadedShards == 0) {
        TL_FATAL(stats.errors.empty()
                     ? "no usable shards in source"
                     : stats.errors.front().render());
    }
    return corpus;
}

/** Shared --threads flag: 0 = all hardware threads (the default). */
unsigned
threadsFlag(const Args &args)
{
    const auto v = args.flag("threads");
    if (!v)
        return 0;
    unsigned threads = 0;
    const auto [ptr, ec] =
        std::from_chars(v->data(), v->data() + v->size(), threads);
    if (ec != std::errc() || ptr != v->data() + v->size() ||
        threads > 1024) {
        TL_FATAL("--threads expects an integer in [0, 1024], got '",
                 std::string(*v), "'");
    }
    return threads;
}

/** Shared analyzer flags: --threads plus --artifact-cache DIR. */
AnalyzerConfig
analyzerConfigFlag(const Args &args)
{
    AnalyzerConfig config;
    config.threads = threadsFlag(args);
    if (auto dir = args.flag("artifact-cache")) {
        if (dir->empty())
            TL_FATAL("--artifact-cache expects a directory path");
        config.artifactCacheDir = *dir;
    }
    return config;
}

/**
 * Post-ingestion check for analyzer commands: the analyzer ingests
 * shard by shard, skipping corrupt ones; a source with no usable
 * shard at all is fatal (the single-file case keeps its fail-loudly
 * behavior).
 */
void
requireUsable(const TraceSource &source)
{
    const IngestStats &stats = source.stats();
    if (stats.shards > 0 && stats.loadedShards == 0) {
        TL_FATAL(stats.errors.empty()
                     ? "no usable shards in source"
                     : stats.errors.front().render());
    }
}

/** Print the per-stage artifact counters under --pipeline-stats. */
void
maybePrintPipelineStats(const Args &args, const Analyzer &analyzer)
{
    if (args.has("pipeline-stats"))
        std::cout << analyzer.pipelineStats().render();
}

int
cmdGenerate(const Args &args)
{
    const auto out = args.flag("out");
    const auto drip = args.flag("drip");
    if (!out && !drip)
        return usage();
    CorpusSpec spec;
    if (auto v = args.flag("machines")) {
        spec.machines = static_cast<std::uint32_t>(
            parseUnsignedFlag("--machines", *v, 10'000'000));
    }
    if (auto v = args.flag("seed"))
        spec.seed = parseUnsignedFlag("--seed", *v, UINT64_MAX);
    for (const std::string &name : args.flagAll("scenario"))
        spec.onlyScenarios.push_back(name);
    if (auto v = args.flag("encrypted-fraction")) {
        spec.encryptedFraction =
            parseFraction("--encrypted-fraction", *v);
    }
    if (auto v = args.flag("hdd-fraction"))
        spec.hddFraction = parseFraction("--hdd-fraction", *v);
    if (auto v = args.flag("stressed-fraction")) {
        spec.stressedFraction =
            parseFraction("--stressed-fraction", *v);
    }

    std::size_t shards = 1;
    if (auto v = args.flag("shards"))
        shards = parseUnsignedFlag("--shards", *v, 100'000);
    CorpusWriteOptions write;
    write.compressEvents = args.has("compress");

    if (drip) {
        // Live-ingestion feed: land each shard by the same
        // rename-into-place convention on-host writers use
        // (docs/TRACE_FORMAT.md), pacing by --interval-ms so a
        // watcher sees a realistic arrival stream.
        if (drip->empty())
            TL_FATAL("--drip expects a directory path");
        std::uint64_t intervalMs = 0;
        if (auto v = args.flag("interval-ms")) {
            intervalMs =
                parseUnsignedFlag("--interval-ms", *v, 3'600'000);
        }
        const std::vector<TraceCorpus> parts =
            generateShardedCorpus(spec, std::max<std::size_t>(shards, 1));
        namespace fs = std::filesystem;
        std::error_code ec;
        fs::create_directories(*drip, ec);
        for (std::size_t i = 0; i < parts.size(); ++i) {
            std::ostringstream name;
            name << "shard-" << std::setfill('0') << std::setw(4) << i
                 << ".tlc";
            const fs::path staged =
                fs::path(*drip) / ("." + name.str() + ".tmp");
            const fs::path finished = fs::path(*drip) / name.str();
            writeCorpusFile(parts[i], staged.string(), write);
            fs::rename(staged, finished, ec);
            if (ec) {
                TL_FATAL("cannot rename ", staged.string(),
                         " into place: ", ec.message());
            }
            TL_LOG(Info, "drip: ", finished.string(), " (", i + 1, "/",
                   parts.size(), ")");
            if (intervalMs != 0 && i + 1 < parts.size()) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(intervalMs));
            }
        }
        return 0;
    }

    const TraceCorpus corpus = generateCorpus(spec);
    if (shards > 1) {
        const auto paths =
            writeShardedCorpusDir(corpus, *out, shards, write);
        TL_LOG(Info, "wrote ", corpus.streamCount(), " streams / ",
               corpus.instances().size(), " instances / ",
               corpus.totalEvents(), " events to ", paths.size(),
               " shards under ", *out);
        return 0;
    }
    writeCorpusFile(corpus, *out, write);
    TL_LOG(Info, "wrote ", corpus.streamCount(), " streams / ",
           corpus.instances().size(), " instances / ",
           corpus.totalEvents(), " events to ", *out);
    return 0;
}

int
cmdIngest(const Args &args)
{
    if (args.positional().empty())
        return usage();
    const auto start = std::chrono::steady_clock::now();
    const std::unique_ptr<TraceSource> source =
        openSourceOrDie(args.positional()[0], args);

    // Per-scenario instance tallies straight from shard summaries: on
    // the mmap path this touches only instance records and scenario
    // names — frames, stacks, and events stay unmaterialized.
    std::map<std::string, std::pair<std::size_t, DurationNs>> scenarios;
    std::uint64_t events = 0;
    std::size_t instances = 0;
    for (std::size_t i = 0; i < source->shardCount(); ++i) {
        Expected<ShardSummary> summary = source->summarize(i);
        if (!summary)
            continue; // recorded in stats
        events += summary.value().events;
        instances += summary.value().instances.size();
        for (const ScenarioInstance &inst : summary.value().instances) {
            auto &[count, total] =
                scenarios[summary.value().scenarios[inst.scenario]];
            ++count;
            total += inst.duration();
        }
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();

    const IngestStats &stats = source->stats();
    std::cout << "source:   " << source->describe() << "\n"
              << stats.render();
    TextTable table({"Scenario", "Instances", "MeanMs"});
    for (const auto &[name, entry] : scenarios) {
        table.addRow({name, std::to_string(entry.first),
                      TextTable::num(toMs(entry.second) /
                                         static_cast<double>(
                                             entry.first),
                                     2)});
    }
    std::cout << table.render();
    const double mb = static_cast<double>(stats.ingestBytes) /
                      (1024.0 * 1024.0);
    std::cout << instances << " instances / " << events << " events; "
              << TextTable::num(mb, 1) << " MiB in "
              << TextTable::num(ms, 1) << " ms ("
              << TextTable::num(ms > 0.0 ? mb / (ms / 1000.0) : 0.0, 1)
              << " MiB/s)\n";
    return stats.skippedShards == 0 ? 0 : 1;
}

int
cmdValidate(const Args &args)
{
    if (args.positional().empty())
        return usage();
    const std::unique_ptr<TraceSource> source =
        openSourceOrDie(args.positional()[0], args);
    const ValidationReport report = validateSource(*source);
    std::cout << report.render() << "\n";
    return report.strayUnwaits == 0 && report.selfUnwaits == 0 &&
                   report.skippedShards == 0
               ? 0
               : 1;
}

int
cmdImpact(const Args &args)
{
    if (args.positional().empty())
        return usage();
    const std::unique_ptr<TraceSource> source =
        openSourceOrDie(args.positional()[0], args);

    AnalyzerConfig config = analyzerConfigFlag(args);
    const auto globs = args.flagAll("components");
    if (!globs.empty())
        config.components = globs;
    Analyzer analyzer(*source, config);
    requireUsable(*source);
    const TraceCorpus &corpus = analyzer.corpus();

    std::cout << "components:";
    for (const auto &g : analyzer.components().patterns())
        std::cout << " " << g;
    std::cout << "\nall scenarios: " << analyzer.impactAll().render()
              << "\n";
    for (const auto &[scenario, impact] :
         analyzer.impactPerScenario()) {
        std::cout << "  " << corpus.scenarioName(scenario) << ": "
                  << impact.render() << "\n";
    }
    maybePrintPipelineStats(args, analyzer);
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    const auto scenario = args.flag("scenario");
    if (args.positional().empty() || !scenario)
        return usage();
    const std::unique_ptr<TraceSource> source =
        openSourceOrDie(args.positional()[0], args);

    // Thresholds default to the catalog's when the scenario is known.
    DurationNs t_fast = 0, t_slow = 0;
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.name == *scenario) {
            t_fast = spec.tFast;
            t_slow = spec.tSlow;
        }
    }
    if (auto v = args.flag("tfast"))
        t_fast = fromMs(parseDoubleFlag("--tfast", *v));
    if (auto v = args.flag("tslow"))
        t_slow = fromMs(parseDoubleFlag("--tslow", *v));
    if (t_fast <= 0 || t_slow <= t_fast) {
        TL_LOG(Error, "need --tfast/--tslow for unknown scenarios");
        return 2;
    }

    Analyzer analyzer(*source, analyzerConfigFlag(args));
    requireUsable(*source);
    const TraceCorpus &corpus = analyzer.corpus();
    const ScenarioAnalysis analysis =
        analyzer.analyzeScenario(*scenario, t_fast, t_slow);

    std::cout << *scenario << ": " << analysis.classes.fast.size()
              << " fast / " << analysis.classes.middle.size()
              << " middle / " << analysis.classes.slow.size()
              << " slow\n";
    std::cout << "slow impact: " << analysis.slowImpact.render()
              << "\n";
    std::cout << "coverage: " << analysis.coverage.render() << "\n";
    std::cout << "mining: " << analysis.mining.stats.render() << "\n\n";

    std::vector<ContrastPattern> patterns = analysis.mining.patterns;
    if (!args.has("no-knowledge-filter")) {
        const auto filtered = KnowledgeBase::defaults().apply(
            analysis.mining, corpus.symbols());
        if (!filtered.suppressed.empty()) {
            std::cout << filtered.suppressed.size()
                      << " pattern(s) suppressed as by-design "
                         "behaviour (--no-knowledge-filter to keep)\n\n";
        }
        patterns = filtered.kept;
    }

    std::size_t top = 5;
    if (auto v = args.flag("top"))
        top = parseUnsignedFlag("--top", *v, 10'000);
    for (std::size_t i = 0; i < std::min(top, patterns.size()); ++i) {
        const ContrastPattern &p = patterns[i];
        std::cout << "#" << i + 1 << " impact="
                  << toMs(static_cast<DurationNs>(p.impact()))
                  << "ms N=" << p.count
                  << (p.highImpact(t_slow) ? " [high-impact]" : "")
                  << "\n"
                  << p.tuple.render(corpus.symbols()) << "\n";
    }
    maybePrintPipelineStats(args, analyzer);
    return 0;
}

int
cmdThresholds(const Args &args)
{
    if (args.positional().empty())
        return usage();
    const std::unique_ptr<TraceSource> source =
        openSourceOrDie(args.positional()[0], args);
    const TraceCorpus &corpus = loadCorpus(*source);
    if (auto name = args.flag("scenario")) {
        std::cout << *name << ": "
                  << suggestThresholds(corpus, *name).render() << "\n";
        return 0;
    }
    for (std::uint32_t id = 0; id < corpus.scenarioCount(); ++id) {
        std::cout << corpus.scenarioName(id) << ": "
                  << suggestThresholds(corpus, id).render() << "\n";
    }
    return 0;
}

int
cmdReport(const Args &args)
{
    if (args.positional().empty())
        return usage();
    const std::unique_ptr<TraceSource> source =
        openSourceOrDie(args.positional()[0], args);
    Analyzer analyzer(*source, analyzerConfigFlag(args));
    requireUsable(*source);
    const TraceCorpus &corpus = analyzer.corpus();

    std::vector<ScenarioThresholds> scenarios;
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.selected &&
            corpus.findScenario(spec.name) != UINT32_MAX) {
            scenarios.push_back({spec.name, spec.tFast, spec.tSlow});
        }
    }
    ReportOptions options;
    if (auto v = args.flag("top")) {
        options.topPatterns = static_cast<std::size_t>(
            parseUnsignedFlag("--top", *v, 10'000));
    }
    options.applyKnowledgeFilter = !args.has("no-knowledge-filter");
    if (auto html = args.flag("html")) {
        writeHtmlReportFile(analyzer, scenarios, *html, options);
        TL_LOG(Info, "wrote ", *html);
        maybePrintPipelineStats(args, analyzer);
        return 0;
    }
    std::cout << buildReport(analyzer, scenarios, options);
    maybePrintPipelineStats(args, analyzer);
    return 0;
}

int
cmdDiff(const Args &args)
{
    const auto scenario = args.flag("scenario");
    if (args.positional().size() < 2 || !scenario)
        return usage();
    const std::unique_ptr<TraceSource> source_before =
        openSourceOrDie(args.positional()[0], args);
    const std::unique_ptr<TraceSource> source_after =
        openSourceOrDie(args.positional()[1], args);

    DurationNs t_fast = 0, t_slow = 0;
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.name == *scenario) {
            t_fast = spec.tFast;
            t_slow = spec.tSlow;
        }
    }
    if (auto v = args.flag("tfast"))
        t_fast = fromMs(parseDoubleFlag("--tfast", *v));
    if (auto v = args.flag("tslow"))
        t_slow = fromMs(parseDoubleFlag("--tslow", *v));
    if (t_fast <= 0 || t_slow <= t_fast) {
        TL_LOG(Error, "need --tfast/--tslow for unknown scenarios");
        return 2;
    }

    const AnalyzerConfig config = analyzerConfigFlag(args);
    Analyzer ana_before(*source_before, config);
    requireUsable(*source_before);
    Analyzer ana_after(*source_after, config);
    requireUsable(*source_after);
    const TraceCorpus &before = ana_before.corpus();
    const TraceCorpus &after = ana_after.corpus();
    const ScenarioAnalysis rb =
        ana_before.analyzeScenario(*scenario, t_fast, t_slow);
    const ScenarioAnalysis ra =
        ana_after.analyzeScenario(*scenario, t_fast, t_slow);

    const MiningDiff diff = diffMiningResults(
        rb.mining, before.symbols(), ra.mining, after.symbols());
    std::cout << diff.render(after.symbols());
    return 0;
}

int
cmdDump(const Args &args)
{
    if (args.positional().empty())
        return usage();
    const std::unique_ptr<TraceSource> source =
        openSourceOrDie(args.positional()[0], args);
    const TraceCorpus &corpus = loadCorpus(*source);
    std::uint32_t stream = 0;
    std::size_t max_events = 100;
    if (auto v = args.flag("stream")) {
        stream = static_cast<std::uint32_t>(
            parseUnsignedFlag("--stream", *v, UINT32_MAX));
    }
    if (auto v = args.flag("max"))
        max_events = parseUnsignedFlag("--max", *v, 100'000'000);
    if (stream >= corpus.streamCount()) {
        TL_LOG(Error, "stream ", stream, " out of range (corpus has ",
               corpus.streamCount(), ")");
        return 1;
    }
    std::cout << dumpStream(corpus, stream, max_events);
    return 0;
}

int
cmdExportCsv(const Args &args)
{
    const auto events = args.flag("events");
    const auto instances = args.flag("instances");
    if (args.positional().empty() || !events || !instances)
        return usage();
    const std::unique_ptr<TraceSource> source =
        openSourceOrDie(args.positional()[0], args);
    const TraceCorpus &corpus = loadCorpus(*source);
    writeCorpusCsvFiles(corpus, *events, *instances);
    TL_LOG(Info, "exported to ", *events, " + ", *instances);
    return 0;
}

int
cmdImportCsv(const Args &args)
{
    const auto events = args.flag("events");
    const auto instances = args.flag("instances");
    const auto out = args.flag("out");
    if (!events || !instances || !out)
        return usage();
    const TraceCorpus corpus =
        readCorpusCsvFiles(*events, *instances);
    writeCorpusFile(corpus, *out);
    TL_LOG(Info, "imported ", corpus.totalEvents(), " events into ",
           *out);
    return 0;
}

int
cmdVersion()
{
    std::cout << "tracelens " << kTracelensVersion << "\n"
              << "  trace format:    TLC1 v" << traceFormatVersion()
              << "\n"
              << "  artifact cache:  TLA1 v" << artifactCacheVersion()
              << "\n"
              << "  server protocol: v" << server::kProtocolVersion
              << " (speaks";
    for (std::uint32_t revision : server::supportedProtocolVersions())
        std::cout << " v" << revision;
    std::cout << ")\n"
              << "  partial encoding: TLP1 v"
              << partialEncodingRevision()
              << " (cluster scatter/gather)\n"
              << "  fleet:           v" << fleetRevision()
              << " (continuous mode: windows, sentinel, alerts)\n"
              << "  build:           "
#if defined(__clang__)
              << "clang " << __clang_major__ << "." << __clang_minor__
#elif defined(__GNUC__)
              << "gcc " << __GNUC__ << "." << __GNUC_MINOR__
#else
              << "unknown compiler"
#endif
#ifdef NDEBUG
              << ", release"
#else
              << ", debug"
#endif
              << ", c++" << (__cplusplus / 100 % 100) << "\n";
    return 0;
}

/** The serving daemon a SIGTERM/SIGINT handler must reach. */
server::Server *g_server = nullptr;

void
handleStopSignal(int)
{
    // requestStop() only writes one byte to the wake pipe, so it is
    // safe here.
    if (g_server != nullptr)
        g_server->requestStop();
}

int
cmdServe(const Args &args)
{
    const auto listen = args.flag("listen");
    if (!listen || listen->empty())
        return usage();
    Expected<std::pair<std::string, std::uint16_t>> address =
        server::parseHostPort(*listen);
    if (!address)
        TL_FATAL("--listen: ", address.error().reason);

    server::ServerConfig config;
    config.host = address.value().first;
    config.port = address.value().second;
    if (auto v = args.flag("workers")) {
        config.workers = static_cast<unsigned>(
            parseUnsignedFlag("--workers", *v, 1024));
    }
    if (auto v = args.flag("max-inflight")) {
        config.maxInflight = parseUnsignedFlag(
            "--max-inflight", *v, 1'000'000);
        if (config.maxInflight == 0)
            TL_FATAL("--max-inflight must be at least 1");
    }
    if (auto v = args.flag("default-deadline-ms")) {
        config.defaultDeadlineMs = parseUnsignedFlag(
            "--default-deadline-ms", *v, 86'400'000);
    }
    if (auto v = args.flag("max-line-bytes")) {
        config.maxLineBytes = parseUnsignedFlag(
            "--max-line-bytes", *v, 1ull << 30);
        if (config.maxLineBytes < 64)
            TL_FATAL("--max-line-bytes must be at least 64");
    }
    if (auto v = args.flag("analysis-threads")) {
        config.registry.analysisThreads = static_cast<unsigned>(
            parseUnsignedFlag("--analysis-threads", *v, 1024));
    }
    if (auto v = args.flag("max-sessions")) {
        config.registry.maxSessions =
            parseUnsignedFlag("--max-sessions", *v, 100'000);
        if (config.registry.maxSessions == 0)
            TL_FATAL("--max-sessions must be at least 1");
    }
    if (auto v = args.flag("idle-timeout-s")) {
        config.registry.idleTimeout = std::chrono::seconds(
            parseUnsignedFlag("--idle-timeout-s", *v, 86'400));
    }
    if (auto dir = args.flag("artifact-cache")) {
        if (dir->empty())
            TL_FATAL("--artifact-cache expects a directory path");
        config.registry.artifactCacheDir = *dir;
    }
    config.registry.source = sourceOptionsFlag(args);
    config.enableTestMethods = args.has("enable-test-methods");
    config.coordinator = args.has("coordinator");
    if (auto v = args.flag("cluster-workers")) {
        // Comma-separated host:port list; validated by start().
        std::string_view rest = *v;
        while (!rest.empty()) {
            const std::size_t comma = rest.find(',');
            const std::string_view item = rest.substr(0, comma);
            if (!item.empty())
                config.workerAddrs.emplace_back(item);
            if (comma == std::string_view::npos)
                break;
            rest.remove_prefix(comma + 1);
        }
        if (config.workerAddrs.empty())
            TL_FATAL("--cluster-workers expects host:port,...");
        if (!config.coordinator)
            TL_FATAL("--cluster-workers requires --coordinator");
    }
    if (auto v = args.flag("shard-deadline-ms")) {
        config.shardDeadlineMs = parseUnsignedFlag(
            "--shard-deadline-ms", *v, 86'400'000);
        if (config.shardDeadlineMs == 0)
            TL_FATAL("--shard-deadline-ms must be at least 1");
    }
    if (auto v = args.flag("metrics-listen")) {
        if (v->empty())
            TL_FATAL("--metrics-listen expects HOST:PORT");
        config.metricsListen = *v;
    }
    if (auto v = args.flag("slow-request-ms")) {
        config.slowRequestMs = parseUnsignedFlag(
            "--slow-request-ms", *v, 86'400'000);
    }
    if (auto dir = args.flag("self-trace-corpus")) {
        if (dir->empty())
            TL_FATAL("--self-trace-corpus expects a directory path");
        config.selfTraceCorpusDir = *dir;
    }
    if (auto v = args.flag("flight-recorder")) {
        config.flightRecorderCapacity = static_cast<std::size_t>(
            parseUnsignedFlag("--flight-recorder", *v, 1'000'000));
        if (config.flightRecorderCapacity == 0)
            TL_FATAL("--flight-recorder must be at least 1");
    }
    if (auto dir = args.flag("watch")) {
        if (dir->empty())
            TL_FATAL("--watch expects a directory path");
        config.fleetWatchDir = *dir;
    }
    if (auto v = args.flag("window-ms")) {
        config.fleetWindowMs =
            parseUnsignedFlag("--window-ms", *v, 86'400'000);
        if (config.fleetWindowMs == 0)
            TL_FATAL("--window-ms must be at least 1");
    }
    if (auto v = args.flag("max-windows")) {
        config.fleetMaxWindows = parseUnsignedFlag(
            "--max-windows", *v, 100'000);
        if (config.fleetMaxWindows == 0)
            TL_FATAL("--max-windows must be at least 1");
    }
    if (auto v = args.flag("poll-ms")) {
        config.fleetPollMs =
            parseUnsignedFlag("--poll-ms", *v, 3'600'000);
        if (config.fleetPollMs == 0)
            TL_FATAL("--poll-ms must be at least 1");
    }
    if (auto v = args.flag("baseline-windows")) {
        config.fleetBaselineWindows = parseUnsignedFlag(
            "--baseline-windows", *v, 100'000);
    }
    for (const std::string &name : args.flagAll("watch-scenario"))
        config.fleetScenarios.push_back(name);
    if (auto v = args.flag("alerts-out")) {
        if (v->empty())
            TL_FATAL("--alerts-out expects a file path");
        config.fleetAlertsPath = *v;
    }
    if (config.fleetWatchDir.empty() &&
        (args.has("window-ms") || args.has("max-windows") ||
         args.has("poll-ms") || args.has("baseline-windows") ||
         args.has("watch-scenario") || args.has("alerts-out"))) {
        TL_FATAL("continuous-mode flags require --watch DIR");
    }
    // Ops escape hatch: behave like a pre-v2 daemon (clients fall
    // back to JSON lines), e.g. to bisect a protocol regression.
    config.enableProtocolV2 = !args.has("disable-protocol-v2");

    server::Server daemon(config);
    Expected<std::uint16_t> port = daemon.start();
    if (!port)
        TL_FATAL(port.error().render());

    // Advertise the bound port (ephemeral with --listen HOST:0) for
    // scripts that need to find the daemon (scripts/smoke_server.sh).
    if (auto portFile = args.flag("port-file")) {
        if (portFile->empty())
            TL_FATAL("--port-file expects a file path");
        std::ofstream out(*portFile, std::ios::trunc);
        out << port.value() << "\n";
        if (!out)
            TL_FATAL("cannot write --port-file ", *portFile);
    }
    // Same dance for the metrics endpoint (--metrics-listen HOST:0).
    if (auto portFile = args.flag("metrics-port-file")) {
        if (portFile->empty())
            TL_FATAL("--metrics-port-file expects a file path");
        std::ofstream out(*portFile, std::ios::trunc);
        out << daemon.metricsPort() << "\n";
        if (!out)
            TL_FATAL("cannot write --metrics-port-file ", *portFile);
    }

    g_server = &daemon;
    std::signal(SIGTERM, handleStopSignal);
    std::signal(SIGINT, handleStopSignal);
    daemon.wait();
    g_server = nullptr;

    const server::ServerStats stats = daemon.stats();
    TL_LOG(Info, "serve: exiting after ", stats.requests,
           " requests (", stats.ok, " ok, ", stats.errors, " errors, ",
           stats.rejected, " rejected)");
    return 0;
}

int
cmdQuery(const Args &args)
{
    const auto connect = args.flag("connect");
    if (!connect || connect->empty() || args.positional().empty())
        return usage();
    Expected<std::pair<std::string, std::uint16_t>> address =
        server::parseHostPort(*connect);
    if (!address)
        TL_FATAL("--connect: ", address.error().reason);

    JsonValue params = JsonValue::makeObject();
    std::string paramsText;
    if (auto file = args.flag("params-file")) {
        // Large payloads (ingest_push shards) overflow a single argv
        // string; read the object from a file instead.
        std::ifstream in(*file, std::ios::binary);
        if (!in)
            TL_FATAL("cannot read --params-file ", *file);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        paramsText = buffer.str();
    } else if (auto text = args.flag("params")) {
        paramsText = *text;
    }
    if (!paramsText.empty()) {
        Expected<JsonValue> parsed = JsonValue::parse(paramsText);
        if (!parsed)
            TL_FATAL("--params: ", parsed.error().reason);
        if (!parsed.value().isObject())
            TL_FATAL("--params must be a JSON object");
        params = std::move(parsed.value());
    }
    const std::optional<server::Method> method =
        server::parseMethod(args.positional()[0]);
    if (!method)
        TL_FATAL("unknown method '", args.positional()[0], "'");

    server::CallOptions call;
    if (auto v = args.flag("deadline-ms")) {
        call.deadlineMs =
            parseUnsignedFlag("--deadline-ms", *v, 86'400'000);
    }
    server::SessionOptions options;
    options.ioTimeout = std::chrono::milliseconds(120'000);
    if (auto v = args.flag("timeout-ms")) {
        options.ioTimeout = std::chrono::milliseconds(
            parseUnsignedFlag("--timeout-ms", *v, 86'400'000));
    }
    if (auto v = args.flag("protocol")) {
        if (*v == "v1")
            options.prefer = server::ProtocolPreference::V1;
        else if (*v == "v2")
            options.prefer = server::ProtocolPreference::V2;
        else if (*v != "auto")
            TL_FATAL("--protocol expects auto|v1|v2, got '", *v, "'");
    }

    Expected<server::Session> session = server::Session::connect(
        address.value().first, address.value().second, options);
    if (!session)
        TL_FATAL(session.error().render());
    // Root a fresh distributed trace at the CLI when the server
    // negotiated tracing, so a coordinator query stitches end to end
    // under one id (--no-trace opts out; v1 silently skips).
    if (!args.has("no-trace") && session.value().tracingNegotiated()) {
        call.traceContext.traceId = Telemetry::newTraceId();
        call.traceContext.parentSpanId = 0;
        call.traceContext.sampled = true;
        TL_LOG(Debug, "query: trace id ",
               hexId(call.traceContext.traceId));
    }
    Expected<server::Response> response =
        session.value().call(*method, params, call);
    if (!response)
        TL_FATAL(response.error().render());
    if (args.has("wire-stats")) {
        // stderr, not TL_LOG(Info): the query result owns stdout so
        // the output stays pipeable with --wire-stats on.
        const server::WireStats wire = session.value().wireStats();
        std::cerr << "query: protocol v"
                  << session.value().protocolVersion() << ", "
                  << wire.bytesSent << " bytes out / "
                  << wire.bytesReceived << " bytes in ("
                  << wire.framesSent << "/" << wire.framesReceived
                  << " frames)\n";
    }
    if (!response.value().ok) {
        TL_LOG(Error, "server error [",
               server::errorCodeName(response.value().error.code),
               "]: ", response.value().error.message);
        return 1;
    }
    if (auto field = args.flag("field")) {
        // Print one top-level field (rendered JSON). Scripts diff
        // e.g. window_summary's "summary" against a batch analyze
        // without fishing through the envelope (scripts/smoke_fleet.sh).
        const JsonValue *value =
            response.value().result.find(*field);
        if (value == nullptr)
            TL_FATAL("result has no field '", *field, "'");
        std::cout << value->render() << "\n";
        return 0;
    }
    std::cout << response.value().result.render() << "\n";
    return 0;
}

int
cmdClusterStatus(const Args &args)
{
    // Sugar over `query cluster_status`: probe the coordinator and
    // print a human-readable worker roster.
    const auto connect = args.flag("connect");
    if (!connect || connect->empty())
        return usage();
    Expected<std::pair<std::string, std::uint16_t>> address =
        server::parseHostPort(*connect);
    if (!address)
        TL_FATAL("--connect: ", address.error().reason);

    server::SessionOptions options;
    options.ioTimeout = std::chrono::milliseconds(30'000);
    if (auto v = args.flag("timeout-ms")) {
        options.ioTimeout = std::chrono::milliseconds(
            parseUnsignedFlag("--timeout-ms", *v, 86'400'000));
    }
    Expected<server::Session> session = server::Session::connect(
        address.value().first, address.value().second, options);
    if (!session)
        TL_FATAL(session.error().render());
    JsonValue params = JsonValue::makeObject();
    if (args.has("metrics"))
        params.set("metrics", JsonValue(true));
    Expected<server::Response> response = session.value().call(
        server::Method::ClusterStatus, params);
    if (!response)
        TL_FATAL(response.error().render());
    if (!response.value().ok) {
        TL_LOG(Error, "server error [",
               server::errorCodeName(response.value().error.code),
               "]: ", response.value().error.message);
        return 1;
    }

    const JsonValue &result = response.value().result;
    std::cout << "coordinator " << *connect;
    if (const JsonValue *revision = result.find("partial_encoding");
        revision != nullptr && revision->isNumber()) {
        std::cout << " (partial encoding v"
                  << static_cast<std::uint64_t>(revision->asNumber())
                  << ")";
    }
    std::cout << "\n";
    // One row per worker; columns absent from old workers (no
    // liveness extras in their health result) render as "-".
    const auto cell = [](const JsonValue &entry, const char *key,
                         int decimals) -> std::string {
        const JsonValue *value = entry.find(key);
        if (value == nullptr || !value->isNumber())
            return "-";
        std::ostringstream text;
        text << std::fixed << std::setprecision(decimals)
             << value->asNumber();
        return text.str();
    };
    std::cout << "  " << std::left << std::setw(22) << "worker"
              << std::setw(13) << "status" << std::setw(10)
              << "uptime_s" << std::setw(10) << "inflight"
              << std::setw(10) << "sessions" << std::setw(9)
              << "partial" << "\n";
    bool healthy = true;
    if (const JsonValue *workers = result.find("workers");
        workers != nullptr && workers->isArray()) {
        for (const JsonValue &entry : workers->asArray()) {
            const JsonValue *addr = entry.find("address");
            const JsonValue *status = entry.find("status");
            const JsonValue *compatible = entry.find("compatible");
            const std::string state =
                status != nullptr && status->isString()
                    ? status->asString()
                    : "unknown";
            std::cout << "  " << std::left << std::setw(22)
                      << (addr != nullptr && addr->isString()
                              ? addr->asString()
                              : "?")
                      << std::setw(13) << state << std::setw(10)
                      << cell(entry, "uptime_s", 1) << std::setw(10)
                      << cell(entry, "inflight", 0) << std::setw(10)
                      << cell(entry, "sessions", 0) << std::setw(9)
                      << cell(entry, "partial_encoding", 0);
            if (compatible != nullptr && compatible->isBool() &&
                !compatible->asBool()) {
                std::cout << " (INCOMPATIBLE partial encoding)";
                healthy = false;
            }
            if (state != "ok")
                healthy = false;
            std::cout << "\n";
        }
    }
    std::cout << result.render() << "\n";
    return healthy ? 0 : 1;
}

int
cmdClusterTrace(const Args &args)
{
    // Ask the coordinator for a stitched cross-node Chrome trace
    // (its spans + every worker's, one pid per node) and write it to
    // --out, ready for Perfetto / chrome://tracing.
    const auto connect = args.flag("connect");
    const auto out = args.flag("out");
    if (!connect || connect->empty() || !out || out->empty())
        return usage();
    Expected<std::pair<std::string, std::uint16_t>> address =
        server::parseHostPort(*connect);
    if (!address)
        TL_FATAL("--connect: ", address.error().reason);

    server::SessionOptions options;
    options.ioTimeout = std::chrono::milliseconds(30'000);
    if (auto v = args.flag("timeout-ms")) {
        options.ioTimeout = std::chrono::milliseconds(
            parseUnsignedFlag("--timeout-ms", *v, 86'400'000));
    }
    Expected<server::Session> session = server::Session::connect(
        address.value().first, address.value().second, options);
    if (!session)
        TL_FATAL(session.error().render());
    Expected<server::Response> response = session.value().call(
        server::Method::ClusterTrace, JsonValue::makeObject());
    if (!response)
        TL_FATAL(response.error().render());
    if (!response.value().ok) {
        TL_LOG(Error, "server error [",
               server::errorCodeName(response.value().error.code),
               "]: ", response.value().error.message);
        return 1;
    }
    const JsonValue *trace = response.value().result.find("trace");
    if (trace == nullptr || !trace->isString())
        TL_FATAL("cluster_trace result carries no trace document");
    std::ofstream file(*out, std::ios::trunc);
    file << trace->asString();
    if (!file)
        TL_FATAL("cannot write --out ", *out);
    const JsonValue *nodes = response.value().result.find("nodes");
    const JsonValue *spans = response.value().result.find("spans");
    std::cout << "wrote " << *out << " ("
              << (nodes != nullptr && nodes->isNumber()
                      ? static_cast<std::uint64_t>(nodes->asNumber())
                      : 0)
              << " nodes, "
              << (spans != nullptr && spans->isNumber()
                      ? static_cast<std::uint64_t>(spans->asNumber())
                      : 0)
              << " spans)\n";
    return 0;
}

/** Ctrl-C flag for `tracelens watch`. */
std::atomic<bool> g_watchStop{false};

void
handleWatchSignal(int)
{
    g_watchStop.store(true, std::memory_order_release);
}

int
cmdWatch(const Args &args)
{
    if (args.positional().empty())
        return usage();
    FleetConfig config;
    config.dir = args.positional()[0];
    if (auto v = args.flag("window-ms")) {
        config.windowMs =
            parseUnsignedFlag("--window-ms", *v, 86'400'000);
        if (config.windowMs == 0)
            TL_FATAL("--window-ms must be at least 1");
    }
    if (auto v = args.flag("max-windows")) {
        config.maxWindows = parseUnsignedFlag(
            "--max-windows", *v, 100'000);
        if (config.maxWindows == 0)
            TL_FATAL("--max-windows must be at least 1");
    }
    if (auto v = args.flag("poll-ms")) {
        config.pollMs = parseUnsignedFlag("--poll-ms", *v, 3'600'000);
        if (config.pollMs == 0)
            TL_FATAL("--poll-ms must be at least 1");
    }
    if (auto v = args.flag("baseline-windows")) {
        config.sentinel.baselineWindows = parseUnsignedFlag(
            "--baseline-windows", *v, 100'000);
    }
    if (auto v = args.flag("alerts-out")) {
        if (v->empty())
            TL_FATAL("--alerts-out expects a file path");
        config.alertsPath = *v;
    }
    config.analyzer = analyzerConfigFlag(args);
    const std::vector<std::string> watched = args.flagAll("scenario");
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (!watched.empty() &&
            std::find(watched.begin(), watched.end(), spec.name) ==
                watched.end())
            continue;
        config.sentinel.scenarios.push_back(
            {spec.name, spec.tFast, spec.tSlow});
    }
    std::uint64_t maxTicks = 0;
    if (auto v = args.flag("max-ticks"))
        maxTicks = parseUnsignedFlag("--max-ticks", *v, UINT64_MAX);

    // The loop below is the poll thread: drive ticks inline instead
    // of start()ing the background one, so --max-ticks is exact and
    // alerts print as soon as the emitting poll returns.
    FleetService fleet(config);
    std::signal(SIGINT, handleWatchSignal);
    std::signal(SIGTERM, handleWatchSignal);
    TL_LOG(Info, "watch: ", config.dir, " every ", config.pollMs,
           " ms (window ", config.windowMs, " ms, ring ",
           config.maxWindows, ", ", config.sentinel.scenarios.size(),
           " scenario(s))");

    std::uint64_t printed = 0;
    std::uint64_t ticks = 0;
    while (!g_watchStop.load(std::memory_order_acquire)) {
        fleet.pollOnce();
        for (const Alert &alert : fleet.alerts().since(printed)) {
            std::cout << alertJson(alert).render() << "\n"
                      << std::flush;
            printed = alert.seq;
        }
        ++ticks;
        if (maxTicks != 0 && ticks >= maxTicks)
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config.pollMs));
    }
    std::cout << fleet.status().render() << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    const Args args(argc, argv, 2);

    if (auto v = args.flag("log-level")) {
        LogLevel level = LogLevel::Info;
        if (!parseLogLevel(*v, level)) {
            TL_FATAL("--log-level expects debug|info|warn|error|off, "
                     "got '",
                     *v, "'");
        }
        setLogLevel(level);
    }
    const auto trace_out = args.flag("trace-out");
    const auto metrics_out = args.flag("metrics-out");
    if (trace_out && trace_out->empty())
        TL_FATAL("--trace-out expects a file path");
    if (metrics_out && metrics_out->empty())
        TL_FATAL("--metrics-out expects a file path");
    if (trace_out)
        Telemetry::setEnabled(true);

    auto dispatch = [&]() -> int {
        if (command == "generate")
            return cmdGenerate(args);
        if (command == "ingest")
            return cmdIngest(args);
        if (command == "validate")
            return cmdValidate(args);
        if (command == "impact")
            return cmdImpact(args);
        if (command == "analyze")
            return cmdAnalyze(args);
        if (command == "thresholds")
            return cmdThresholds(args);
        if (command == "report")
            return cmdReport(args);
        if (command == "diff")
            return cmdDiff(args);
        if (command == "dump")
            return cmdDump(args);
        if (command == "export-csv")
            return cmdExportCsv(args);
        if (command == "import-csv")
            return cmdImportCsv(args);
        if (command == "serve")
            return cmdServe(args);
        if (command == "query")
            return cmdQuery(args);
        if (command == "cluster-status")
            return cmdClusterStatus(args);
        if (command == "cluster-trace")
            return cmdClusterTrace(args);
        if (command == "watch")
            return cmdWatch(args);
        if (command == "version" || command == "--version" ||
            command == "-V")
            return cmdVersion();
        return usage();
    };

    int rc = 0;
    {
        // The root span: everything the subcommand does nests under
        // it in the exported trace. Scoped so it closes before the
        // trace file is written.
        Span span("cli", "cli");
        if (span.active())
            span.arg("cmd", command);
        rc = dispatch();
    }

    if (trace_out)
        Telemetry::writeChromeTrace(*trace_out);
    if (metrics_out)
        Telemetry::writeMetricsJson(*metrics_out);
    return rc;
}
