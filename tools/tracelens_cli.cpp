/**
 * @file
 * tracelens — command-line front end for the TraceLens pipeline.
 *
 * Subcommands:
 *   generate   --out FILE [--machines N] [--seed S] [--scenario NAME]
 *              Synthesize a corpus and write the binary corpus file.
 *   validate   FILE
 *              Structural validation report.
 *   impact     FILE [--components GLOB]...
 *              Corpus-wide + per-scenario impact analysis.
 *   analyze    FILE --scenario NAME [--tfast MS] [--tslow MS]
 *              [--top N] [--no-knowledge-filter]
 *              Causality analysis with ranked patterns.
 *   dump       FILE [--stream N] [--max N]
 *              Human-readable event dump of one stream.
 *   export-csv FILE --events OUT --instances OUT
 *   import-csv --events IN --instances IN --out FILE
 */

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/analyzer.h"
#include "src/core/htmlreport.h"
#include "src/core/report.h"
#include "src/impact/thresholds.h"
#include "src/mining/diff.h"
#include "src/mining/knowledge.h"
#include "src/trace/csv.h"
#include "src/trace/serialize.h"
#include "src/trace/validate.h"
#include "src/util/logging.h"
#include "src/util/table.h"
#include "src/workload/generator.h"
#include "src/workload/scenarios.h"

namespace
{

using namespace tracelens;

/** Minimal flag parser: positional args plus --name value pairs. */
class Args
{
  public:
    Args(int argc, char **argv, int start)
    {
        for (int i = start; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                const std::string name = arg.substr(2);
                if (i + 1 < argc &&
                    std::string(argv[i + 1]).rfind("--", 0) != 0) {
                    flags_[name].push_back(argv[++i]);
                } else {
                    flags_[name].push_back(""); // boolean flag
                }
            } else {
                positional_.push_back(arg);
            }
        }
    }

    std::optional<std::string>
    flag(const std::string &name) const
    {
        auto it = flags_.find(name);
        if (it == flags_.end() || it->second.empty())
            return std::nullopt;
        return it->second.front();
    }

    std::vector<std::string>
    flagAll(const std::string &name) const
    {
        auto it = flags_.find(name);
        return it == flags_.end() ? std::vector<std::string>{}
                                  : it->second;
    }

    bool has(const std::string &name) const
    {
        return flags_.count(name) > 0;
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::vector<std::string>> flags_;
    std::vector<std::string> positional_;
};

int
usage()
{
    std::cerr
        << "usage:\n"
           "  tracelens generate --out FILE [--machines N] [--seed S]"
           " [--scenario NAME]\n"
           "  tracelens validate FILE\n"
           "  tracelens impact FILE [--components GLOB]..."
           " [--threads N]\n"
           "  tracelens analyze FILE --scenario NAME [--tfast MS]"
           " [--tslow MS] [--top N] [--no-knowledge-filter]"
           " [--threads N]\n"
           "  tracelens thresholds FILE [--scenario NAME]\n"
           "  tracelens report FILE [--top N] [--html OUT]"
           " [--no-knowledge-filter] [--threads N]\n"
           "  tracelens diff BEFORE AFTER --scenario NAME"
           " [--tfast MS] [--tslow MS] [--threads N]\n"
           "  tracelens dump FILE [--stream N] [--max N]\n"
           "  tracelens export-csv FILE --events OUT --instances OUT\n"
           "  tracelens import-csv --events IN --instances IN --out "
           "FILE\n"
           "\n--threads 0 (default) uses every hardware thread; 1 "
           "runs serially.\nAnalysis results are identical for every "
           "thread count.\n";
    return 2;
}

/** Shared --threads flag: 0 = all hardware threads (the default). */
unsigned
threadsFlag(const Args &args)
{
    const auto v = args.flag("threads");
    if (!v)
        return 0;
    unsigned threads = 0;
    const auto [ptr, ec] =
        std::from_chars(v->data(), v->data() + v->size(), threads);
    if (ec != std::errc() || ptr != v->data() + v->size() ||
        threads > 1024) {
        TL_FATAL("--threads expects an integer in [0, 1024], got '",
                 std::string(*v), "'");
    }
    return threads;
}

int
cmdGenerate(const Args &args)
{
    const auto out = args.flag("out");
    if (!out)
        return usage();
    CorpusSpec spec;
    if (auto v = args.flag("machines"))
        spec.machines = static_cast<std::uint32_t>(std::stoul(*v));
    if (auto v = args.flag("seed"))
        spec.seed = std::stoull(*v);
    for (const std::string &name : args.flagAll("scenario"))
        spec.onlyScenarios.push_back(name);

    const TraceCorpus corpus = generateCorpus(spec);
    writeCorpusFile(corpus, *out);
    std::cout << "wrote " << corpus.streamCount() << " streams / "
              << corpus.instances().size() << " instances / "
              << corpus.totalEvents() << " events to " << *out << "\n";
    return 0;
}

int
cmdValidate(const Args &args)
{
    if (args.positional().empty())
        return usage();
    const TraceCorpus corpus = readCorpusFile(args.positional()[0]);
    const ValidationReport report = validateCorpus(corpus);
    std::cout << report.render() << "\n";
    return report.strayUnwaits == 0 && report.selfUnwaits == 0 ? 0 : 1;
}

int
cmdImpact(const Args &args)
{
    if (args.positional().empty())
        return usage();
    const TraceCorpus corpus = readCorpusFile(args.positional()[0]);

    AnalyzerConfig config;
    config.threads = threadsFlag(args);
    const auto globs = args.flagAll("components");
    if (!globs.empty())
        config.components = globs;
    Analyzer analyzer(corpus, config);

    std::cout << "components:";
    for (const auto &g : analyzer.components().patterns())
        std::cout << " " << g;
    std::cout << "\nall scenarios: " << analyzer.impactAll().render()
              << "\n";
    for (const auto &[scenario, impact] :
         analyzer.impactPerScenario()) {
        std::cout << "  " << corpus.scenarioName(scenario) << ": "
                  << impact.render() << "\n";
    }
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    const auto scenario = args.flag("scenario");
    if (args.positional().empty() || !scenario)
        return usage();
    const TraceCorpus corpus = readCorpusFile(args.positional()[0]);

    // Thresholds default to the catalog's when the scenario is known.
    DurationNs t_fast = 0, t_slow = 0;
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.name == *scenario) {
            t_fast = spec.tFast;
            t_slow = spec.tSlow;
        }
    }
    if (auto v = args.flag("tfast"))
        t_fast = fromMs(std::stod(*v));
    if (auto v = args.flag("tslow"))
        t_slow = fromMs(std::stod(*v));
    if (t_fast <= 0 || t_slow <= t_fast) {
        std::cerr << "need --tfast/--tslow for unknown scenarios\n";
        return 2;
    }

    AnalyzerConfig config;
    config.threads = threadsFlag(args);
    Analyzer analyzer(corpus, config);
    const ScenarioAnalysis analysis =
        analyzer.analyzeScenario(*scenario, t_fast, t_slow);

    std::cout << *scenario << ": " << analysis.classes.fast.size()
              << " fast / " << analysis.classes.middle.size()
              << " middle / " << analysis.classes.slow.size()
              << " slow\n";
    std::cout << "slow impact: " << analysis.slowImpact.render()
              << "\n";
    std::cout << "coverage: " << analysis.coverage.render() << "\n";
    std::cout << "mining: " << analysis.mining.stats.render() << "\n\n";

    std::vector<ContrastPattern> patterns = analysis.mining.patterns;
    if (!args.has("no-knowledge-filter")) {
        const auto filtered = KnowledgeBase::defaults().apply(
            analysis.mining, corpus.symbols());
        if (!filtered.suppressed.empty()) {
            std::cout << filtered.suppressed.size()
                      << " pattern(s) suppressed as by-design "
                         "behaviour (--no-knowledge-filter to keep)\n\n";
        }
        patterns = filtered.kept;
    }

    std::size_t top = 5;
    if (auto v = args.flag("top"))
        top = std::stoul(*v);
    for (std::size_t i = 0; i < std::min(top, patterns.size()); ++i) {
        const ContrastPattern &p = patterns[i];
        std::cout << "#" << i + 1 << " impact="
                  << toMs(static_cast<DurationNs>(p.impact()))
                  << "ms N=" << p.count
                  << (p.highImpact(t_slow) ? " [high-impact]" : "")
                  << "\n"
                  << p.tuple.render(corpus.symbols()) << "\n";
    }
    return 0;
}

int
cmdThresholds(const Args &args)
{
    if (args.positional().empty())
        return usage();
    const TraceCorpus corpus = readCorpusFile(args.positional()[0]);
    if (auto name = args.flag("scenario")) {
        std::cout << *name << ": "
                  << suggestThresholds(corpus, *name).render() << "\n";
        return 0;
    }
    for (std::uint32_t id = 0; id < corpus.scenarioCount(); ++id) {
        std::cout << corpus.scenarioName(id) << ": "
                  << suggestThresholds(corpus, id).render() << "\n";
    }
    return 0;
}

int
cmdReport(const Args &args)
{
    if (args.positional().empty())
        return usage();
    const TraceCorpus corpus = readCorpusFile(args.positional()[0]);
    AnalyzerConfig config;
    config.threads = threadsFlag(args);
    Analyzer analyzer(corpus, config);

    std::vector<ScenarioThresholds> scenarios;
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.selected &&
            corpus.findScenario(spec.name) != UINT32_MAX) {
            scenarios.push_back({spec.name, spec.tFast, spec.tSlow});
        }
    }
    ReportOptions options;
    if (auto v = args.flag("top"))
        options.topPatterns = std::stoul(*v);
    options.applyKnowledgeFilter = !args.has("no-knowledge-filter");
    if (auto html = args.flag("html")) {
        writeHtmlReportFile(analyzer, scenarios, *html, options);
        std::cout << "wrote " << *html << "\n";
        return 0;
    }
    std::cout << buildReport(analyzer, scenarios, options);
    return 0;
}

int
cmdDiff(const Args &args)
{
    const auto scenario = args.flag("scenario");
    if (args.positional().size() < 2 || !scenario)
        return usage();
    const TraceCorpus before = readCorpusFile(args.positional()[0]);
    const TraceCorpus after = readCorpusFile(args.positional()[1]);

    DurationNs t_fast = 0, t_slow = 0;
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.name == *scenario) {
            t_fast = spec.tFast;
            t_slow = spec.tSlow;
        }
    }
    if (auto v = args.flag("tfast"))
        t_fast = fromMs(std::stod(*v));
    if (auto v = args.flag("tslow"))
        t_slow = fromMs(std::stod(*v));
    if (t_fast <= 0 || t_slow <= t_fast) {
        std::cerr << "need --tfast/--tslow for unknown scenarios\n";
        return 2;
    }

    AnalyzerConfig config;
    config.threads = threadsFlag(args);
    Analyzer ana_before(before, config);
    Analyzer ana_after(after, config);
    const ScenarioAnalysis rb =
        ana_before.analyzeScenario(*scenario, t_fast, t_slow);
    const ScenarioAnalysis ra =
        ana_after.analyzeScenario(*scenario, t_fast, t_slow);

    const MiningDiff diff = diffMiningResults(
        rb.mining, before.symbols(), ra.mining, after.symbols());
    std::cout << diff.render(after.symbols());
    return 0;
}

int
cmdDump(const Args &args)
{
    if (args.positional().empty())
        return usage();
    const TraceCorpus corpus = readCorpusFile(args.positional()[0]);
    std::uint32_t stream = 0;
    std::size_t max_events = 100;
    if (auto v = args.flag("stream"))
        stream = static_cast<std::uint32_t>(std::stoul(*v));
    if (auto v = args.flag("max"))
        max_events = std::stoul(*v);
    if (stream >= corpus.streamCount()) {
        std::cerr << "stream " << stream << " out of range (corpus has "
                  << corpus.streamCount() << ")\n";
        return 1;
    }
    std::cout << dumpStream(corpus, stream, max_events);
    return 0;
}

int
cmdExportCsv(const Args &args)
{
    const auto events = args.flag("events");
    const auto instances = args.flag("instances");
    if (args.positional().empty() || !events || !instances)
        return usage();
    const TraceCorpus corpus = readCorpusFile(args.positional()[0]);
    writeCorpusCsvFiles(corpus, *events, *instances);
    std::cout << "exported to " << *events << " + " << *instances
              << "\n";
    return 0;
}

int
cmdImportCsv(const Args &args)
{
    const auto events = args.flag("events");
    const auto instances = args.flag("instances");
    const auto out = args.flag("out");
    if (!events || !instances || !out)
        return usage();
    const TraceCorpus corpus =
        readCorpusCsvFiles(*events, *instances);
    writeCorpusFile(corpus, *out);
    std::cout << "imported " << corpus.totalEvents() << " events into "
              << *out << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    const Args args(argc, argv, 2);

    if (command == "generate")
        return cmdGenerate(args);
    if (command == "validate")
        return cmdValidate(args);
    if (command == "impact")
        return cmdImpact(args);
    if (command == "analyze")
        return cmdAnalyze(args);
    if (command == "thresholds")
        return cmdThresholds(args);
    if (command == "report")
        return cmdReport(args);
    if (command == "diff")
        return cmdDiff(args);
    if (command == "dump")
        return cmdDump(args);
    if (command == "export-csv")
        return cmdExportCsv(args);
    if (command == "import-csv")
        return cmdImportCsv(args);
    return usage();
}
